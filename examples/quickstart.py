#!/usr/bin/env python3
"""Quickstart: stand up a Waffle datastore and watch what the server sees.

Creates a small deployment (N=1,000 objects), issues reads and writes
through the buffered client, then contrasts the plaintext request stream
with the adversary-observable server trace: rotating storage ids, batches
of exactly B reads and B writes, and bounded α.

Run:  python examples/quickstart.py
"""

from repro import WaffleClient, WaffleConfig, WaffleDatastore
from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.crypto.keys import KeyChain


def main() -> None:
    # 1. The dataset: 1,000 equal-sized objects.
    items = {f"user{i:08d}": b"profile-data-%04d" % i for i in range(1000)}

    # 2. Paper-default parameters scaled to N=1,000 (B, R=40%B, f_D=20%B,
    #    C=2%N, D balancing the two alpha ratios).
    config = WaffleConfig.paper_defaults(n=1000, seed=7)
    print(f"config: B={config.b} R={config.r} f_D={config.f_d} "
          f"C={config.c} D={config.d}")
    print(f"bounds: alpha<={config.alpha_bound()} (Theorem 7.1), "
          f"beta>={config.beta_bound()} (Theorem 7.2), "
          f"bandwidth overhead {config.bandwidth_overhead():.2f}x")

    # 3. Bring up the datastore (in-process Redis-like server + proxy),
    #    with the adversary's recorder and id provenance enabled.
    store = WaffleDatastore(config, items, keychain=KeyChain.from_seed(42),
                            log_ids=True)
    client = WaffleClient(store)

    # 4. Ordinary key-value usage.
    print("\nget:", client.get_now("user00000042"))
    client.put_now("user00000042", b"updated!")
    print("get after put:", client.get_now("user00000042"))

    # Buffered mode: requests batch up to R before hitting the server.
    handles = [client.get(f"user{i:08d}") for i in range(100)]
    client.flush()
    print(f"fetched {sum(1 for h in handles if h.done)} buffered reads")

    # Inserts and deletes swap dummy objects for real ones (§6.2).
    store.insert("newcomer0001", b"hello")
    store.delete("user00000099")
    store.execute_batch([])  # the next round applies both
    print("inserted key readable:", client.get_now("newcomer0001"))

    # 5. What did the adversary see?
    records = store.recorder.records
    verify_storage_invariants(records)  # write-once/read-once ids
    report = full_report(records, store.proxy.id_log)
    print(f"\nadversary view: {len(records)} accesses over "
          f"{store.proxy.totals.rounds} rounds")
    print(f"observed max alpha = {report.max_alpha} "
          f"(implementation bound {config.alpha_bound_effective()})")
    print(f"observed min beta  = {report.min_beta} "
          f"(bound {config.beta_bound()})")
    sample = [r.storage_id[:12] for r in records[-6:]]
    print("last observed storage ids (never repeat):", sample)


if __name__ == "__main__":
    main()
