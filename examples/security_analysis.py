#!/usr/bin/env python3
"""Security analysis: measure α/β uniformity the way §8.3.1 does.

Runs the medium-security preset under a skewed and a uniform input
distribution, verifies the Theorem 7.1/7.2 bounds on every server
access, and renders the adversary-observable α histograms whose
similarity across input distributions is the obliviousness argument
(Figure 4).

Run:  python examples/security_analysis.py
"""

from repro.analysis.histograms import (
    alpha_histogram,
    histogram_difference,
    render_histogram,
)
from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.bench.harness import run_waffle
from repro.core.config import SecurityLevel, WaffleConfig
from repro.sim.costmodel import CostModel
from repro.workloads.ycsb import YcsbWorkload


def analyse(uniform: bool, n: int = 2**13, rounds: int = 400):
    config = WaffleConfig.security_preset(SecurityLevel.MEDIUM, n=n, seed=3)
    workload = YcsbWorkload(n, read_proportion=1.0, uniform=uniform,
                            theta=0.99, value_size=256, seed=4)
    items = dict(workload.initial_records())
    trace = workload.trace(config.r * rounds)
    _, datastore = run_waffle(config, items, trace, CostModel(),
                              record=True, log_ids=True)
    records = datastore.recorder.records
    verify_storage_invariants(records)
    report = full_report(records, datastore.proxy.id_log)
    return config, report


def main() -> None:
    histograms = {}
    for uniform in (False, True):
        name = "uniform" if uniform else "skewed (Zipf 0.99)"
        config, report = analyse(uniform)
        histograms[uniform] = alpha_histogram(report.alphas)
        print(f"\n=== input distribution: {name} ===")
        print(f"theoretical alpha (Thm 7.1) : {config.alpha_bound()}")
        print(f"implementation alpha bound  : {config.alpha_bound_effective()}"
              "  (the dummy reshuffle doubles the dummy term; see DESIGN.md)")
        print(f"observed max alpha          : {report.max_alpha}")
        print(f"theoretical beta (Thm 7.2)  : {config.beta_bound()}")
        print(f"observed min beta           : {report.min_beta}")
        ok = report.satisfies(config.alpha_bound_effective(),
                              config.beta_bound())
        print(f"alpha,beta-uniform          : {ok}")
        print("alpha histogram (top buckets):")
        print(render_histogram(histograms[uniform], max_rows=8))

    comparison = histogram_difference(histograms[False], histograms[True])
    print("\n=== obliviousness (Figure 4 argument) ===")
    print(f"requests whose alpha differs across the two input "
          f"distributions: {comparison.differing_fraction:.2%} "
          "(paper: ~1% for medium security)")
    print("similar histograms for extreme input distributions mean the "
          "adversary cannot tell them apart.")


if __name__ == "__main__":
    main()
