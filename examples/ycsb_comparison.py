#!/usr/bin/env python3
"""YCSB shoot-out: Waffle vs the insecure baseline, Pancake and TaoStore.

A reduced-scale rerun of the paper's Figure 2a/2b: same workloads
(YCSB A and C at Zipf 0.99), same batch shapes, simulated-time
throughput/latency.  Expect the paper's ordering — insecure ≈ 6x Waffle,
Waffle ≈ 1.5x Pancake, Waffle ≈ 100x TaoStore.

Run:  python examples/ycsb_comparison.py            (~1 min)
      python examples/ycsb_comparison.py --quick    (~15 s)
"""

import sys

from repro.bench.experiments import fig2ab_baselines
from repro.bench.reporting import format_table


def main() -> None:
    quick = "--quick" in sys.argv
    n = 2**12 if quick else 2**14
    rounds = 40 if quick else 120
    print(f"running YCSB A and C against all four systems (N={n})...")
    rows = fig2ab_baselines(n=n, rounds=rounds)
    print()
    print(format_table(rows, title="Figure 2a/2b (scaled rerun)"))

    by = {(row["workload"], row["system"]): row for row in rows}
    for workload in ("YCSB-A", "YCSB-C"):
        waffle = by[(workload, "waffle")]["throughput_ops"]
        insecure = by[(workload, "insecure")]["throughput_ops"]
        pancake = by[(workload, "pancake")]["throughput_ops"]
        taostore = by[(workload, "taostore")]["throughput_ops"]
        print(f"\n{workload}:")
        print(f"  cost of privacy  (insecure/waffle): {insecure / waffle:5.2f}x"
              "   paper: 5.8-6.04x")
        print(f"  vs Pancake        (waffle/pancake): {waffle / pancake:5.2f}x"
              "   paper: 1.455-1.577x")
        print(f"  vs TaoStore      (waffle/taostore): {waffle / taostore:5.0f}x"
              "   paper: 102x")


if __name__ == "__main__":
    main()
