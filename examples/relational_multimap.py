#!/usr/bin/env python3
"""Relational data over Waffle: the multi-map extension (§8.3.2).

The paper motivates multi-maps as the stepping stone to relational
data: a row with several attributes is a key with several values, and
fetching a row issues *correlated* sub-queries — exactly the access
pattern Waffle tolerates and Pancake does not.

This example stores a small "employees" table (each row = 4 attribute
values), runs point lookups and attribute updates through the oblivious
store, and shows that the adversary-visible trace keeps its guarantees
despite the perfectly correlated per-row sub-queries.

Run:  python examples/relational_multimap.py
"""

from repro import MultiMapWaffle, WaffleConfig
from repro.analysis.uniformity import measure_alpha, verify_storage_invariants


ROWS = {
    f"emp{i:04d}": (
        b"name-%04d" % i,                       # name
        b"dept-%d" % (i % 5),                   # department
        b"%d" % (40_000 + 137 * i),             # salary
        b"2021-0%d-01" % (1 + i % 9),           # hire date
    )
    for i in range(200)
}
COLUMNS = ("name", "department", "salary", "hire_date")


def main() -> None:
    slots = len(COLUMNS)
    config = WaffleConfig(
        n=len(ROWS) * slots, b=40, r=16, f_d=8, d=300,
        c=round(0.05 * len(ROWS) * slots), value_size=64, seed=13,
    )
    table = MultiMapWaffle(config, ROWS, slots=slots)
    datastore = table.datastore

    # Point lookup: one row = `slots` correlated sub-queries, one round.
    row = table.get("emp0042")
    print("emp0042:", dict(zip(COLUMNS, row)))

    # Attribute update: patch one column.
    table.put_slot("emp0042", COLUMNS.index("salary"), b"99999")
    print("after raise:", dict(zip(COLUMNS, table.get("emp0042"))))

    # A scan-ish workload: read every row in one department.
    dept_rows = [key for key, values in ROWS.items()
                 if values[1] == b"dept-3"]
    salaries = []
    for key in dept_rows:
        salaries.append(int(table.get(key)[COLUMNS.index("salary")]))
    print(f"dept-3: {len(dept_rows)} rows, "
          f"mean salary {sum(salaries) / len(salaries):,.0f}")

    # The guarantees hold despite fully correlated sub-queries.
    records = datastore.recorder.records
    verify_storage_invariants(records)
    report = measure_alpha(records)
    print(f"\nadversary saw {len(records)} accesses over "
          f"{datastore.proxy.totals.rounds} rounds; "
          f"max alpha {report.max_alpha} "
          f"(bound {config.alpha_bound_effective()}); "
          "every storage id read at most once.")


if __name__ == "__main__":
    main()
