#!/usr/bin/env python3
"""Correlated queries: the attack Pancake falls to and Waffle resists.

Rebuilds the §8.3.2 experiment end to end:

1. generate a clickstream-style correlated workload (the synthetic
   stand-in for IHOP's Wikipedia Clickstream trace);
2. run it through Pancake (static storage ids) and Waffle (rotating
   ids), recording the adversary's view of both;
3. mount the known-query co-occurrence attack on each trace;
4. compare Waffle's α histograms for correlated vs independent inputs
   (Figure 5).

Run:  python examples/correlated_queries.py
"""

from repro.bench.experiments import attack_correlated, fig5_correlated


def main() -> None:
    print("mounting the known-query co-occurrence attack "
          "(IHOP-style, 50% known queries)...")
    outcome = attack_correlated(n=40, requests=40_000, seed=5)
    print(f"\n  chance baseline          : {outcome['chance']:.3f}")
    print(f"  Pancake  (static ids)    : {outcome['pancake_accuracy']:.3f}"
          f"  over {outcome['pancake_targets']} unknown ids"
          f"  -> {outcome['pancake_accuracy'] / outcome['chance']:.1f}x chance")
    print(f"  Waffle   (rotating ids)  : {outcome['waffle_accuracy']:.3f}"
          f"  over {outcome['waffle_targets']} unknown ids"
          f"  -> {outcome['waffle_accuracy'] / outcome['chance']:.1f}x chance")
    print("\nPancake's replicas keep the same storage id forever, so "
          "correlated keys co-occur observably; every Waffle id is read "
          "at most once, so the co-occurrence signal never forms.")

    print("\nFigure 5: Waffle's alpha histograms, correlated vs "
          "independent inputs (N=500, B=100, f_D=20%, C=2%, D=200)...")
    rows = fig5_correlated(n=500, requests=30_000)
    for row in rows:
        print(f"  R={row['r_pct']}% of B: {row['differing_fraction']:.2%} "
              f"of requests differ in alpha "
              f"(paper: ~0.8% at R=20%, ~3% at R=40%); "
              f"throughput {row['throughput_ops']:,.0f} ops/s")
    print("lower R -> more fake queries on real objects -> histograms "
          "converge: the knob that buys obliviousness for correlated "
          "workloads.")


if __name__ == "__main__":
    main()
