#!/usr/bin/env python3
"""Parameter tuning: walking the security/performance frontier (§8.4).

Implements the paper's recommended methodology:

1. grid/random search over (R, f_D) maximizing the security score β/α
   — how the Table 2 "high security" preset was found;
2. the Figure 6 sweep: theoretical α vs measured throughput across the
   (R, f_D) grid, so an operator can pick their operating point;
3. a dry-run security analysis on a sample workload (the paper notes
   this needs only keys, not values, so it runs on a laptop before the
   database is offloaded).

Run:  python examples/parameter_tuning.py
"""

import random
from dataclasses import replace

from repro.bench.experiments import default_config, fig6_tradeoff
from repro.bench.reporting import format_table
from repro.core.config import WaffleConfig


def grid_search(n: int) -> WaffleConfig:
    """Exhaustive grid over (B, R, f_D, C) maximizing beta/alpha."""
    best, best_score = None, -1.0
    for b_frac in (0.05, 0.1, 0.2):
        for r_frac in (0.01, 0.05, 0.2, 0.4):
            for fd_frac in (0.1, 0.2, 0.4):
                for c_frac in (0.02, 0.5, 0.99):
                    b = max(4, round(b_frac * n))
                    r = max(1, round(r_frac * b))
                    f_d = max(1, round(fd_frac * b))
                    c = round(c_frac * n)
                    if r + f_d >= b or c + b - f_d > n:
                        continue
                    d = WaffleConfig._balanced_dummies(n, b, r, f_d)
                    config = WaffleConfig(n=n, b=b, r=r, f_d=max(1, f_d),
                                          d=max(1, d), c=c)
                    if config.security_score() > best_score:
                        best, best_score = config, config.security_score()
    return best


def random_search(n: int, tries: int = 300, seed: int = 1) -> WaffleConfig:
    """Random search over the same space (the paper's alternative)."""
    rng = random.Random(seed)
    best, best_score = None, -1.0
    for _ in range(tries):
        b = rng.randint(4, max(5, n // 4))
        r = rng.randint(1, max(1, b - 2))
        f_d = rng.randint(1, max(1, b - r - 1))
        c = rng.randint(0, n)
        if r + f_d >= b or c + b - f_d > n:
            continue
        d = WaffleConfig._balanced_dummies(n, b, r, f_d)
        try:
            config = WaffleConfig(n=n, b=b, r=r, f_d=f_d, d=max(1, d), c=c)
        except Exception:
            continue
        if config.security_score() > best_score:
            best, best_score = config, config.security_score()
    return best


def main() -> None:
    n = 4096
    print("=== step 1: parameter search maximizing beta/alpha ===")
    for name, finder in (("grid search", grid_search),
                         ("random search", random_search)):
        config = finder(n)
        print(f"{name:>14}: B={config.b} R={config.r} f_D={config.f_d} "
              f"C={config.c} -> alpha={config.alpha_bound()} "
              f"beta={config.beta_bound()} "
              f"score={config.security_score():.3f}")
    print("(like the paper's Table 2 'high security' row: large cache, "
          "tiny R — secure but slow)")

    print("\n=== step 2: the Figure 6 frontier ===")
    rows = fig6_tradeoff(n=n, rounds=25)
    print(format_table(rows, title="theoretical alpha vs throughput "
                                   "(sorted most to least secure)"))

    print("\n=== step 3: what the defaults give ===")
    config = default_config(n)
    print(f"defaults (R=40%B, f_D=20%B): alpha={config.alpha_bound()}, "
          f"beta={config.beta_bound()}, "
          f"bandwidth overhead={config.bandwidth_overhead():.2f}x")
    print("An operator starts here, measures observed alpha on a sample "
          "workload (examples/security_analysis.py), and walks the "
          "frontier until the desired balance.")


if __name__ == "__main__":
    main()
