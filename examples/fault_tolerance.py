#!/usr/bin/env python3
"""Fault tolerance: the highly-available proxy surviving crashes.

The paper assumes the stateful proxy is "highly available (which can be
ensured with techniques such as a primary-secondary replication)" (§3.1)
and lists fault tolerance as future work (§10).  This example runs that
machinery: a primary proxy ships a state snapshot to a standby at every
batch boundary, we "crash" it twice mid-workload, fail over, and verify
afterwards that nothing observable changed — responses stayed
linearizable, no storage id was ever reused, and the α/β bounds held
across both incarnations.

Run:  python examples/fault_tolerance.py
"""

import random

from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import pad_value, unpad_value
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.ha import HighlyAvailableProxy, capture_proxy
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation


def main() -> None:
    n = 400
    config = WaffleConfig(n=n, b=32, r=12, f_d=6, d=120, c=50,
                          value_size=128, seed=3)
    items = {f"user{i:08d}": b"original-%d" % i for i in range(n)}

    recorder = RecordingStore(RedisSim(write_once=True))
    primary = WaffleProxy(config, store=recorder,
                          keychain=KeyChain.from_seed(4), log_ids=True)
    primary.initialize({k: pad_value(v, config.value_size)
                        for k, v in items.items()})
    ha = HighlyAvailableProxy(primary, checkpoint_interval=1)
    print(f"deployment up: N={n}, B={config.b}, standby snapshot "
          f"{len(capture_proxy(primary)):,} bytes")

    reference = dict(items)
    rng = random.Random(5)

    def run_batches(count: int) -> None:
        for _ in range(count):
            batch, expected = [], []
            for _ in range(config.r):
                key = f"user{rng.randrange(n):08d}"
                if rng.random() < 0.4:
                    value = b"write-%06d" % rng.randrange(10**6)
                    batch.append(ClientRequest(
                        op=Operation.WRITE, key=key,
                        value=pad_value(value, config.value_size)))
                    reference[key] = value
                    expected.append(value)
                else:
                    batch.append(ClientRequest(op=Operation.READ, key=key))
                    expected.append(reference[key])
            responses = ha.handle_batch(batch)
            got = [unpad_value(r.value) for r in responses]
            assert got == expected, "linearizability violated!"

    run_batches(30)
    print(f"30 batches served by primary (ts={ha.proxy.ts})")

    print("\n*** primary crashes — promoting standby ***")
    ha.fail_over()
    run_batches(30)
    print(f"30 more batches served by the promoted standby "
          f"(ts={ha.proxy.ts})")

    print("\n*** second crash — promoting again ***")
    ha.fail_over()
    run_batches(30)
    print(f"30 more batches after the second failover (ts={ha.proxy.ts})")

    # Nothing observable changed across incarnations:
    verify_storage_invariants(recorder.records)
    report = full_report(recorder.records, ha.proxy.id_log)
    print("\npost-mortem over the full (3-incarnation) trace:")
    print(f"  every storage id written once / read once : OK")
    print(f"  max alpha {report.max_alpha} <= bound "
          f"{config.alpha_bound_effective()} : "
          f"{report.max_alpha <= config.alpha_bound_effective()}")
    print(f"  min beta {report.min_beta} >= bound {config.beta_bound()} : "
          f"{report.min_beta >= config.beta_bound()}")
    print(f"  failovers survived: {ha.failovers}, snapshots shipped: "
          f"{ha.snapshots_shipped}")


if __name__ == "__main__":
    main()
