#!/usr/bin/env python3
"""Networked deployment: the paper's topology over real sockets.

The paper runs three machines — client, proxy, storage server.  This
example stands up the storage server on a real TCP socket (in a thread,
standing in for the remote machine), points a Waffle proxy at it through
the wire protocol, and shows that the *server-side* adversary — the one
the threat model cares about — records exactly the same kind of
write-once/read-once id stream as the in-process runs.

Run:  python examples/networked_deployment.py
"""

import random

from repro.analysis.uniformity import (
    infer_rounds,
    measure_alpha,
    verify_storage_invariants,
)
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.net import RemoteStore, StorageServer
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation


def main() -> None:
    n = 300
    config = WaffleConfig(n=n, b=24, r=10, f_d=4, d=100, c=40,
                          value_size=128, seed=7)
    items = {f"user{i:08d}": b"payload-%d" % i for i in range(n)}

    # The "storage machine": RedisSim + the adversary's recorder, behind
    # a TCP server.  The recorder sits server-side, where a curious
    # operator would.
    server_view = RecordingStore(RedisSim(write_once=True))
    with StorageServer(server_view) as server:
        host, port = server.address
        print(f"storage server listening on {host}:{port}")

        # The "proxy machine": a Waffle proxy whose backend is a socket.
        with RemoteStore(server.address) as remote:
            datastore = WaffleDatastore(config, items, store=remote,
                                        record=False,
                                        keychain=KeyChain.from_seed(8))
            print(f"proxy initialized over TCP; server holds "
                  f"{len(remote)} encrypted objects")

            rng = random.Random(9)
            reference = dict(items)
            for _ in range(25):
                batch, expected = [], []
                for _ in range(config.r):
                    key = f"user{rng.randrange(n):08d}"
                    if rng.random() < 0.3:
                        value = b"net-write-%d" % rng.randrange(10**6)
                        batch.append(ClientRequest(op=Operation.WRITE,
                                                   key=key, value=value))
                        reference[key] = value
                        expected.append(value)
                    else:
                        batch.append(ClientRequest(op=Operation.READ,
                                                   key=key))
                        expected.append(reference[key])
                responses = datastore.execute_batch(batch)
                assert [r.value for r in responses] == expected
            print(f"25 batches ({25 * config.r} requests) served over "
                  "the wire, all linearizable")

    # What did the server-side adversary capture?  Over the wire there
    # are no round markers, but the read/delete/write burst structure
    # gives the rounds away — infer them as the adversary would.
    trace = infer_rounds(server_view.records)
    verify_storage_invariants(trace)
    report = measure_alpha(trace)
    reads = sum(1 for r in server_view.records if r.op == "read")
    writes = sum(1 for r in server_view.records if r.op == "write")
    print("\nserver-side adversary's view:")
    print(f"  {len(server_view.records)} accesses "
          f"({reads} reads, {writes} writes)")
    print(f"  every id written once, read once, deleted: OK")
    print(f"  observed max alpha: {report.max_alpha} "
          f"(bound {config.alpha_bound_effective()})")
    print("identical guarantees to the in-process runs — the wire "
          "changes nothing the adversary sees.")


if __name__ == "__main__":
    main()
