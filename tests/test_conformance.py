"""Datastore contract conformance: every system, one test suite.

All five systems expose get/put semantics over the same storage
substrate; this suite runs an identical behavioural contract against
each of them (value fidelity, overwrite semantics, interleaved
histories), so a regression in any system's read/write path fails here
with the system's name on it.
"""

import random

import pytest

from repro.baselines.insecure import InsecureStore
from repro.baselines.pancake import PancakeProxy
from repro.baselines.pathoram import PathOram
from repro.baselines.pathoram_recursive import RecursivePathOram
from repro.baselines.taostore import TaoStore
from repro.core.config import WaffleConfig
from repro.core.client import WaffleClient
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.storage.redis_sim import RedisSim

N = 64
KEYS = [f"user{i:08d}" for i in range(N)]
ITEMS = {key: b"val-%d" % i for i, key in enumerate(KEYS)}


class _Adapter:
    """Uniform get/put facade over each system."""

    def __init__(self, name: str):
        self.name = name
        seed = 5
        if name == "waffle":
            config = WaffleConfig(n=N, b=12, r=5, f_d=2, d=20, c=10,
                                  value_size=48, seed=seed)
            self._client = WaffleClient(
                WaffleDatastore(config, dict(ITEMS),
                                keychain=KeyChain.from_seed(seed)))
            self.get = self._client.get_now
            self.put = self._client.put_now
        elif name == "pancake":
            import numpy as np
            pi = np.full(N, 1.0 / N)
            proxy = PancakeProxy(KEYS, dict(ITEMS), pi, RedisSim(),
                                 batch_size=8, seed=seed,
                                 keychain=KeyChain.from_seed(seed))
            from repro.workloads.trace import Operation, TraceRequest
            self.get = lambda k: proxy.execute(TraceRequest(Operation.READ, k))
            self.put = lambda k, v: proxy.execute(
                TraceRequest(Operation.WRITE, k, v)) and None
        elif name == "pathoram":
            oram = PathOram(dict(ITEMS), RedisSim(), seed=seed,
                            keychain=KeyChain.from_seed(seed))
            self.get, self.put = oram.get, oram.put
        elif name == "pathoram-recursive":
            oram = RecursivePathOram(dict(ITEMS), RedisSim(), seed=seed,
                                     keychain=KeyChain.from_seed(seed))
            self.get, self.put = oram.get, oram.put
        elif name == "taostore":
            tao = TaoStore(dict(ITEMS), RedisSim(), seed=seed,
                           keychain=KeyChain.from_seed(seed))
            self.get, self.put = tao.get, tao.put
        else:
            store = InsecureStore(RedisSim(), dict(ITEMS))
            self.get, self.put = store.get, store.put


SYSTEMS = ["insecure", "waffle", "pancake", "pathoram",
           "pathoram-recursive", "taostore"]


@pytest.fixture(params=SYSTEMS)
def system(request) -> _Adapter:
    return _Adapter(request.param)


class TestContract:
    def test_initial_values_readable(self, system):
        for key in KEYS[::8]:
            assert system.get(key) == ITEMS[key]

    def test_overwrite_visible(self, system):
        system.put(KEYS[3], b"first")
        system.put(KEYS[3], b"second")
        assert system.get(KEYS[3]) == b"second"

    def test_writes_do_not_bleed_across_keys(self, system):
        system.put(KEYS[1], b"only-one")
        assert system.get(KEYS[2]) == ITEMS[KEYS[2]]

    def test_repeated_reads_stable(self, system):
        values = {system.get(KEYS[7]) for _ in range(5)}
        assert values == {ITEMS[KEYS[7]]}

    def test_interleaved_random_history(self, system):
        reference = dict(ITEMS)
        rng = random.Random(13)
        for step in range(60):
            key = KEYS[rng.randrange(N)]
            if rng.random() < 0.5:
                value = b"w%04d" % step
                system.put(key, value)
                reference[key] = value
            else:
                assert system.get(key) == reference[key], \
                    f"{system.name} step {step} key {key}"
