"""Known-answer fixtures for the statistics toolkit.

The bootstrap is seeded, so its intervals are exact fixtures — any
change to the resampling scheme (or the underlying RNG discipline)
shows up here as a hard failure rather than a quiet drift in every
benchmark's error bars.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    ks_exponential,
    ks_statistic,
    percentile,
)
from repro.errors import ConfigurationError
from repro.seeding import seeded_rng

DATA = [12.0, 7.0, 3.0, 9.0, 15.0, 4.0, 8.0, 11.0, 2.0, 6.0]


class TestPercentile:
    def test_known_answers(self):
        assert percentile(DATA, 50.0) == pytest.approx(7.5)
        assert percentile(DATA, 25.0) == pytest.approx(4.5)
        assert percentile(DATA, 90.0) == pytest.approx(12.3)
        assert percentile(DATA, 0.0) == 2.0
        assert percentile(DATA, 100.0) == 15.0

    def test_matches_numpy_linear_method(self):
        numpy = pytest.importorskip("numpy")
        for q in (0.0, 10.0, 33.3, 50.0, 75.0, 99.0, 100.0):
            assert percentile(DATA, q) == pytest.approx(
                float(numpy.percentile(DATA, q)))

    def test_single_sample(self):
        assert percentile([42.0], 99.0) == 42.0

    def test_does_not_mutate_input(self):
        data = [3.0, 1.0, 2.0]
        percentile(data, 50.0)
        assert data == [3.0, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)
        with pytest.raises(ConfigurationError):
            percentile(DATA, 101.0)


class TestBootstrapCi:
    def test_known_answer_mean(self):
        point, lo, hi = bootstrap_ci(DATA, lambda s: sum(s) / len(s),
                                     n_resamples=500, seed=42)
        assert point == pytest.approx(7.7)
        assert lo == pytest.approx(5.3)
        assert hi == pytest.approx(10.0)

    def test_known_answer_median(self):
        point, lo, hi = bootstrap_ci(DATA, lambda s: percentile(s, 50.0),
                                     n_resamples=500, seed=42)
        assert point == pytest.approx(7.5)
        assert lo == pytest.approx(3.7375, abs=1e-9)
        assert hi == pytest.approx(11.0)

    def test_interval_brackets_the_point(self):
        for seed in range(5):
            point, lo, hi = bootstrap_ci(DATA, lambda s: sum(s) / len(s),
                                         seed=seed)
            assert lo <= point <= hi

    def test_deterministic_per_seed(self):
        mean = lambda s: sum(s) / len(s)  # noqa: E731
        first = bootstrap_ci(DATA, mean, seed=9)
        second = bootstrap_ci(DATA, mean, seed=9)
        third = bootstrap_ci(DATA, mean, seed=10)
        assert first == second
        assert first != third

    def test_wider_confidence_is_wider(self):
        _, lo95, hi95 = bootstrap_ci(DATA, lambda s: sum(s) / len(s),
                                     confidence=0.95, seed=1)
        _, lo50, hi50 = bootstrap_ci(DATA, lambda s: sum(s) / len(s),
                                     confidence=0.50, seed=1)
        assert hi95 - lo95 >= hi50 - lo50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([], max)
        with pytest.raises(ConfigurationError):
            bootstrap_ci(DATA, max, n_resamples=0)
        with pytest.raises(ConfigurationError):
            bootstrap_ci(DATA, max, confidence=1.0)


class TestKsStatistic:
    def test_known_answer_uniform(self):
        # F_n steps at .25/.5/.75/1; sup gap vs F(x)=x is at x=0.4.
        assert ks_statistic([0.1, 0.4, 0.6, 0.9],
                            lambda x: x) == pytest.approx(0.15)

    def test_perfect_fit_scores_near_zero(self):
        n = 1000
        # Samples placed at the midpoints of F's quantile cells.
        samples = [(i + 0.5) / n for i in range(n)]
        assert ks_statistic(samples, lambda x: x) <= 0.5 / n + 1e-12

    def test_gross_mismatch_scores_near_one(self):
        assert ks_statistic([10.0, 11.0, 12.0],
                            lambda x: 0.0 if x < 100 else 1.0) == \
            pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ks_statistic([], lambda x: x)


class TestKsExponential:
    def test_known_answer(self):
        statistic, critical = ks_exponential([1.0, 1.0, 1.0, 1.0], 1.0)
        assert statistic == pytest.approx(1.0 - math.exp(-1.0))
        assert critical == pytest.approx(1.358 / 2.0)

    def test_true_exponential_passes(self):
        rng = seeded_rng(77)
        samples = [-math.log(1.0 - rng.random()) / 50.0
                   for _ in range(4000)]
        statistic, critical = ks_exponential(samples, 50.0)
        assert statistic < critical

    def test_wrong_rate_fails(self):
        rng = seeded_rng(77)
        samples = [-math.log(1.0 - rng.random()) / 50.0
                   for _ in range(4000)]
        statistic, critical = ks_exponential(samples, 80.0)
        assert statistic > critical

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ks_exponential([1.0], 0.0)
