"""Sharded serving battery: routing, twin equivalence, chaos, alignment.

The core claims of the multi-proxy scale-out (DESIGN.md §14):

* N concurrent clients fanned across P partition frontends receive
  byte-identical responses, and each partition's adversary-visible
  storage trace is byte-identical to a serial replay of the same round
  partitions on an identically-seeded twin — shard concurrency reorders
  events only *between* per-partition tapes;
* faults are contained per partition: a retryable fault recovers through
  the partition's own retry budget, a fatal partition fails only its own
  keys' requests, and shedding sheds only from the owning partition's
  queue;
* the §8 uniformity oracle (α/β bounds, id invariants) holds per
  partition when driven through the sharded frontend;
* epoch-aligned grid policies commit to float-identical schedules, so
  the merged release schedule deduplicates to the single-proxy grid and
  the load-inference attack scores exactly 0.0 against it.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.timing import load_inference_attack
from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.core.batch import ClientResponse
from repro.errors import (
    BackendUnavailableError,
    ConfigurationError,
    IntegrityError,
    OverloadedError,
)
from repro.scaleout import PartitionedWaffle
from repro.serve import AsyncServeClient, ServeServer, ShardedFrontend
from repro.serve.policy import (
    FixedIntervalPolicy,
    MaxWaitPolicy,
    make_policy,
)
from repro.sim.perf import _trace_digest
from repro.testing.episodes import chaos_config

PARTITIONS = 2
SEED = 11


def _twin_store(record: bool = False, log_ids: bool = False,
                partitions: int = PARTITIONS):
    """Stores built this way are byte-for-byte clones of each other."""
    cfg = chaos_config(SEED)
    candidates = (f"key{i:08d}" for i in range(100_000))
    keys = PartitionedWaffle.plan_partitions(candidates, cfg.n, partitions,
                                             master_seed=SEED)
    items = {key: b"val-" + key.encode() for key in keys}
    store = PartitionedWaffle(cfg, items, partitions, master_seed=SEED,
                              record=record, log_ids=log_ids)
    return cfg, keys, items, store


def _capturing_wrapper(captured):
    """wrap_execute hook that records each partition's round partitions."""

    def wrap(index, execute):
        def spy(requests):
            captured[index].append(list(requests))
            return execute(requests)
        return spy

    return wrap


class TestFanInEquivalence:
    def test_concurrent_fan_in_matches_serial_twin(self):
        """Every key fetched concurrently == serial rounds on a twin."""
        cfg, keys, items, live = _twin_store(record=True, log_ids=True)
        _, _, _, twin = _twin_store(record=True, log_ids=True)
        captured = [[] for _ in range(PARTITIONS)]

        async def scenario():
            wrapper = _capturing_wrapper(captured)
            async with ShardedFrontend(live,
                                       wrap_execute=wrapper) as frontend:
                return await asyncio.gather(
                    *(frontend.get(key) for key in keys))

        values = asyncio.run(scenario())
        assert values == [items[key] for key in keys]
        # Each partition coalesced its n keys into n/r full rounds.
        assert [len(rounds) for rounds in captured] == \
            [cfg.n // cfg.r] * PARTITIONS

        for index, rounds in enumerate(captured):
            for batch in rounds:
                twin.stores[index].execute_batch(batch)
        for index in range(PARTITIONS):
            assert _trace_digest(live.stores[index].recorder.records) == \
                _trace_digest(twin.stores[index].recorder.records)

    def test_mixed_read_write_fan_in_matches_serial_twin(self):
        _, keys, items, live = _twin_store(record=True, log_ids=True)
        _, _, _, twin = _twin_store(record=True, log_ids=True)
        captured = [[] for _ in range(PARTITIONS)]
        sample = keys[::3][:48]

        async def scenario():
            wrapper = _capturing_wrapper(captured)
            frontend = ShardedFrontend(live, wrap_execute=wrapper)
            await frontend.start()
            ops = []
            for i, key in enumerate(sample):
                if i % 3 == 0:
                    ops.append(frontend.put(key, b"mixed-%d" % i))
                else:
                    ops.append(frontend.get(key))
            await asyncio.gather(*ops)
            readback = [asyncio.ensure_future(frontend.get(sample[0]))]
            await asyncio.sleep(0)
            await frontend.close()  # drains partial straggler rounds
            return await asyncio.gather(*readback)

        readback = asyncio.run(scenario())
        assert readback == [b"mixed-0"]

        for index, rounds in enumerate(captured):
            for batch in rounds:
                twin.stores[index].execute_batch(batch)
        for index in range(PARTITIONS):
            assert _trace_digest(live.stores[index].recorder.records) == \
                _trace_digest(twin.stores[index].recorder.records)

    def test_requests_route_to_owning_partition(self):
        _, keys, _, store = _twin_store()
        captured = [[] for _ in range(PARTITIONS)]
        sample = keys[:32]

        async def scenario():
            wrapper = _capturing_wrapper(captured)
            async with ShardedFrontend(store,
                                       wrap_execute=wrapper) as frontend:
                await asyncio.gather(*(frontend.get(key) for key in sample))

        asyncio.run(scenario())
        for index, rounds in enumerate(captured):
            for batch in rounds:
                for request in batch:
                    assert store.partition_of(request.key) == index


class TestPartitionFaultContainment:
    def test_retryable_fault_recovers_within_partition(self):
        """One flaky partition heals through its own retry budget."""
        _, keys, items, store = _twin_store()
        failures = {"remaining": 2}
        retries = []

        def wrap(index, execute):
            if index != 0:
                return execute

            def flaky(requests):
                if failures["remaining"] > 0:
                    failures["remaining"] -= 1
                    raise BackendUnavailableError("injected transient")
                return execute(requests)
            return flaky

        async def scenario():
            frontend = ShardedFrontend(
                store, max_round_retries=2,
                on_retry=lambda: retries.append(1), wrap_execute=wrap)
            async with frontend:
                return await asyncio.gather(
                    *(frontend.get(key) for key in keys[:32]))

        values = asyncio.run(scenario())
        assert values == [items[key] for key in keys[:32]]
        assert failures["remaining"] == 0
        assert len(retries) == 2

    def test_fatal_partition_leaves_others_live(self):
        """Partition 0 poisoned: only its keys fail, partition 1 serves
        — and partition 1's §8 oracle still holds afterwards."""
        cfg, keys, items, store = _twin_store(record=True, log_ids=True)
        dead = 0

        def wrap(index, execute):
            if index != dead:
                return execute

            def poisoned(requests):
                raise IntegrityError("injected fatal partition fault")
            return poisoned

        dead_keys = [k for k in keys if store.partition_of(k) == dead][:8]
        live_keys = [k for k in keys if store.partition_of(k) != dead][:24]

        async def scenario():
            async with ShardedFrontend(store,
                                       wrap_execute=wrap) as frontend:
                outcomes = await asyncio.gather(
                    *(frontend.get(key) for key in dead_keys),
                    return_exceptions=True)
                survivors = await asyncio.gather(
                    *(frontend.get(key) for key in live_keys))
                return outcomes, survivors

        outcomes, survivors = asyncio.run(scenario())
        assert all(isinstance(outcome, IntegrityError)
                   for outcome in outcomes)
        assert survivors == [items[key] for key in live_keys]

        # The surviving partition's trace still satisfies §8.
        records = store.stores[1].recorder.records
        verify_storage_invariants(records)
        report = full_report(records, store.stores[1].proxy.id_log)
        assert report.max_alpha <= cfg.alpha_bound_effective()
        assert report.min_beta >= cfg.beta_bound()

    def test_shedding_is_per_owning_partition(self):
        """A flood on partition 0's keys sheds there; partition 1 admits."""
        _, keys, items, store = _twin_store()
        cap = 4
        zero_keys = [k for k in keys if store.partition_of(k) == 0]
        one_keys = [k for k in keys if store.partition_of(k) == 1]

        async def scenario():
            frontend = ShardedFrontend(store, queue_cap=cap)
            # Dispatchers not started: submissions pend in the queues.
            flood = [asyncio.ensure_future(frontend.get(key))
                     for key in zero_keys[:cap + 3]]
            await asyncio.sleep(0)
            ok = [asyncio.ensure_future(frontend.get(key))
                  for key in one_keys[:cap]]
            await asyncio.sleep(0)
            await frontend.start()
            await frontend.close()
            flood_out = await asyncio.gather(*flood,
                                             return_exceptions=True)
            ok_out = await asyncio.gather(*ok)
            return flood_out, ok_out

        flood_out, ok_out = asyncio.run(scenario())
        shed = [o for o in flood_out if isinstance(o, OverloadedError)]
        served = [o for o in flood_out if isinstance(o, bytes)]
        assert len(shed) == 3
        assert served == [items[key] for key in zero_keys[:cap]]
        assert ok_out == [items[key] for key in one_keys[:cap]]


class TestSecurityComposition:
    def test_per_partition_oracle_under_concurrent_serving(self):
        """§8 bounds hold per partition behind the sharded frontend."""
        cfg, keys, _, store = _twin_store(record=True, log_ids=True)

        async def scenario():
            async with ShardedFrontend(store) as frontend:
                for start in range(0, len(keys), 48):
                    await asyncio.gather(
                        *(frontend.get(key)
                          for key in keys[start:start + 48]))

        asyncio.run(scenario())
        for datastore in store.stores:
            records = datastore.recorder.records
            verify_storage_invariants(records)
            report = full_report(records, datastore.proxy.id_log)
            assert report.max_alpha <= cfg.alpha_bound_effective()
            assert report.min_beta >= cfg.beta_bound()


class TestGridAlignment:
    def test_start_aligns_every_grid_policy_to_one_epoch(self):
        cfg, _, _, store = _twin_store()

        async def scenario():
            frontend = ShardedFrontend(
                store,
                policy_factory=lambda i: FixedIntervalPolicy(0.05))
            await frontend.start()
            epochs = [f.policy._epoch for f in frontend.frontends]
            await frontend.close()
            return epochs

        epochs = asyncio.run(scenario())
        assert None not in epochs
        assert len(set(epochs)) == 1

    def test_realign_is_rejected(self):
        policy = FixedIntervalPolicy(0.05)
        policy.align(10.0)
        with pytest.raises(ConfigurationError):
            policy.align(11.0)
        armed = FixedIntervalPolicy(0.05)
        armed.due(0, None, 3.0)  # first query arms the grid
        with pytest.raises(ConfigurationError):
            armed.align(3.0)

    def test_merged_aligned_schedule_scores_zero(self):
        """P aligned grids merge (deduplicated) into one 0.0-leakage
        schedule even when the offered load is wildly skewed."""
        cfg, keys, _, store = _twin_store()

        def standin(index, execute):
            def run_round(requests):
                return [ClientResponse(request_id=req.request_id,
                                       key=req.key, value=b"")
                        for req in requests]
            return run_round

        merged: list[float] = []
        per_rounds: list[int] = []
        zero_keys = [k for k in keys if store.partition_of(k) == 0]

        async def scenario():
            frontend = ShardedFrontend(
                store,
                policy_factory=lambda i: make_policy(
                    "fixed_interval", cfg.r, interval_s=0.02),
                wrap_execute=standin)
            await frontend.start()
            # All real traffic targets partition 0 — the merged schedule
            # must still not reflect that skew.
            for _ in range(3):
                await asyncio.gather(
                    *(frontend.get(key) for key in zero_keys[:12]))
            await asyncio.sleep(0.05)
            await frontend.close()
            merged.extend(frontend.merged_release_times())
            per_rounds.extend(len(f.release_times)
                              for f in frontend.frontends)

        asyncio.run(scenario())
        assert len(merged) >= 3
        # Dedup happened: aligned ticks collapse across partitions.
        assert len(merged) < sum(per_rounds)
        # Synthetic skewed ground truth: the attack still finds nothing.
        true_rates = [100.0 if i % 2 == 0 else 1.0
                      for i in range(len(merged) - 1)]
        attack = load_inference_attack(merged, true_rates, cfg.r)
        assert attack["leakage_score"] == 0.0


class TestExecutorSizing:
    def test_workers_clamped_to_partition_count(self):
        _, _, _, store = _twin_store()
        frontend = ShardedFrontend(store, shard_workers=8)
        assert frontend.shard_workers == PARTITIONS
        # One shared executor across all partition frontends, not owned
        # by any of them.
        for partition_frontend in frontend.frontends:
            assert partition_frontend._executor is frontend._executor
            assert not partition_frontend._owns_executor
        frontend._executor.shutdown(wait=False)

    def test_rejects_zero_workers(self):
        _, _, _, store = _twin_store()
        with pytest.raises(ConfigurationError):
            ShardedFrontend(store, shard_workers=0)

    def test_stats_aggregate_and_per_partition(self):
        _, keys, _, store = _twin_store()

        async def scenario():
            async with ShardedFrontend(store) as frontend:
                await asyncio.gather(
                    *(frontend.get(key) for key in keys[:16]))
                return frontend.stats(), frontend.per_partition_stats()

        stats, rows = asyncio.run(scenario())
        assert stats["partitions"] == PARTITIONS
        assert stats["shard_workers"] == PARTITIONS
        assert len(rows) == PARTITIONS
        assert [row["shard"] for row in rows] == \
            [str(i) for i in range(PARTITIONS)]
        assert sum(row["admitted"] for row in rows) == stats["admitted"]
        assert sum(row["rounds"] for row in rows) == stats["rounds"]


class TestServerIntegration:
    def test_sharded_tcp_round_trip_and_shards_command(self):
        cfg, keys, items, store = _twin_store()
        sample = keys[:24]

        async def scenario():
            # Max-wait: a wave's share of a partition may be smaller than
            # R, and the next wave only starts once this one completes.
            frontend = ShardedFrontend(
                store,
                policy_factory=lambda i: MaxWaitPolicy(cfg.r, 0.005))
            async with ServeServer(frontend) as server:
                host, port = server.address
                clients = [AsyncServeClient(host, port) for _ in range(6)]
                for client in clients:
                    await client.connect()
                try:
                    values = []
                    for start in range(0, len(sample), 6):
                        # One in-flight request per connection per wave.
                        values.extend(await asyncio.gather(
                            *(client.get(key)
                              for client, key in zip(
                                  clients, sample[start:start + 6]))))
                    shard_rows = await clients[0].shards()
                    stats = await clients[0].stats()
                finally:
                    for client in clients:
                        await client.close()
                return values, shard_rows, stats

        values, shard_rows, stats = asyncio.run(scenario())
        assert values == [items[key] for key in sample]
        assert [row["partition"] for row in shard_rows] == \
            list(range(PARTITIONS))
        assert sum(row["admitted"] for row in shard_rows) == \
            stats["admitted"] == len(sample)
