"""Tests for the concurrent multi-client front-end."""

import random
import threading

import pytest

from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.core.frontend import ConcurrentFrontend
from repro.crypto.keys import KeyChain
from repro.errors import ClosedError, ConfigurationError
from tests.conftest import make_items


def build(n=200, seed=3):
    config = WaffleConfig(n=n, b=20, r=8, f_d=4, d=60, c=30,
                          value_size=64, seed=seed)
    datastore = WaffleDatastore(config, make_items(n),
                                keychain=KeyChain.from_seed(seed))
    return datastore


class TestFrontendBasics:
    def test_invalid_delay(self):
        with pytest.raises(ConfigurationError):
            ConcurrentFrontend(build(), max_delay_s=0)

    def test_single_threaded_get_put(self):
        with ConcurrentFrontend(build(), max_delay_s=0.005) as frontend:
            assert frontend.get("user00000001") == b"value-1"
            frontend.put("user00000001", b"NEW")
            assert frontend.get("user00000001") == b"NEW"

    def test_closed_frontend_rejects(self):
        frontend = ConcurrentFrontend(build(), max_delay_s=0.005)
        frontend.close()
        with pytest.raises(ClosedError):
            frontend.get("user00000001")

    def test_unknown_key_error_delivered_to_caller(self):
        from repro.errors import ProtocolError
        with ConcurrentFrontend(build(), max_delay_s=0.005) as frontend:
            with pytest.raises(ProtocolError):
                frontend.get("stranger")
            # The frontend survives the failed batch.
            assert frontend.get("user00000002") == b"value-2"


class TestConcurrency:
    def test_many_threads_linearizable_per_key(self):
        """Each thread owns a disjoint key set; every read must see that
        thread's latest write (per-key program order survives batching
        across threads)."""
        datastore = build(n=240, seed=7)
        errors: list[str] = []

        def worker(thread_id: int) -> None:
            rng = random.Random(100 + thread_id)
            my_keys = [f"user{i:08d}"
                       for i in range(thread_id * 30, thread_id * 30 + 30)]
            last = {key: b"value-%d" % int(key[4:]) for key in my_keys}
            for step in range(40):
                key = rng.choice(my_keys)
                if rng.random() < 0.5:
                    value = b"t%d-s%d" % (thread_id, step)
                    frontend.put(key, value)
                    last[key] = value
                else:
                    got = frontend.get(key)
                    if got != last[key]:
                        errors.append(
                            f"thread {thread_id}: {key} read {got!r} "
                            f"expected {last[key]!r}")

        with ConcurrentFrontend(datastore, max_delay_s=0.002) as frontend:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_batches_aggregate_concurrent_requests(self):
        """Concurrent clients share rounds: the batch count is far below
        the request count."""
        datastore = build(n=240, seed=9)
        total_requests = 8 * 30

        def worker(thread_id: int) -> None:
            rng = random.Random(thread_id)
            for _ in range(30):
                frontend.get(f"user{rng.randrange(240):08d}")

        with ConcurrentFrontend(datastore, max_delay_s=0.005) as frontend:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            dispatched = frontend.batches_dispatched
        assert dispatched < total_requests  # genuine batching happened
        assert datastore.proxy.totals.requests == total_requests

    def test_storage_invariants_under_concurrency(self):
        from repro.analysis.uniformity import verify_storage_invariants
        datastore = build(n=240, seed=11)

        def worker(thread_id: int) -> None:
            rng = random.Random(thread_id)
            for step in range(25):
                key = f"user{rng.randrange(240):08d}"
                if rng.random() < 0.4:
                    frontend.put(key, b"w%d-%d" % (thread_id, step))
                else:
                    frontend.get(key)

        with ConcurrentFrontend(datastore, max_delay_s=0.002) as frontend:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        verify_storage_invariants(datastore.recorder.records)
