"""Metamorphic and adversarial property tests for the Waffle proxy.

These complement the example-based proxy tests with relations that must
hold across *transformed* inputs: determinism under equal seeds,
insensitivity of final visible state to request interleaving across
batches, and robustness to adversarially shaped request sequences.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.uniformity import (
    full_report,
    measure_alpha,
    verify_storage_invariants,
)
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.workloads.trace import Operation
from tests.conftest import make_items


def build(seed=1, **overrides):
    params = dict(n=120, b=16, r=6, f_d=4, d=40, c=20, value_size=64,
                  seed=seed)
    params.update(overrides)
    config = WaffleConfig(**params)
    datastore = WaffleDatastore(config, make_items(config.n),
                                keychain=KeyChain.from_seed(seed),
                                log_ids=True)
    return config, datastore


def run_trace(datastore, config, ops):
    """ops: list of ('r'|'w', index, value)."""
    batch = []
    for kind, index, value in ops:
        key = f"user{index:08d}"
        if kind == "r":
            batch.append(ClientRequest(op=Operation.READ, key=key))
        else:
            batch.append(ClientRequest(op=Operation.WRITE, key=key,
                                       value=value))
        if len(batch) == config.r:
            datastore.execute_batch(batch)
            batch = []
    if batch:
        datastore.execute_batch(batch)


class TestDeterminism:
    def test_identical_seeds_identical_adversary_views(self):
        """Two deployments with equal seeds and equal inputs emit
        byte-identical server traces — the property checkpoint/failover
        and trace archiving both depend on."""
        ops = [("r", i % 120, None) if i % 3 else ("w", i % 120, b"w%d" % i)
               for i in range(300)]
        views = []
        for _ in range(2):
            config, datastore = build(seed=9)
            run_trace(datastore, config, ops)
            views.append([(r.op, r.storage_id)
                          for r in datastore.recorder.records])
        assert views[0] == views[1]

    def test_different_seeds_different_views(self):
        ops = [("r", i % 120, None) for i in range(120)]
        views = []
        for seed in (9, 10):
            config, datastore = build(seed=seed)
            run_trace(datastore, config, ops)
            views.append({r.storage_id for r in datastore.recorder.records})
        assert views[0] != views[1]


class TestInterleavingInsensitivity:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31))
    def test_final_values_independent_of_batch_boundaries(self, seed):
        """Splitting the same request sequence into different batch
        shapes leaves the client-visible final state identical."""
        rng = random.Random(seed)
        ops = []
        for step in range(90):
            index = rng.randrange(120)
            if rng.random() < 0.5:
                ops.append(("w", index, b"v%d" % step))
            else:
                ops.append(("r", index, None))

        finals = []
        for chunk in (1, 3, 6):
            config, datastore = build(seed=7)
            batch = []
            for kind, index, value in ops:
                key = f"user{index:08d}"
                request = (ClientRequest(op=Operation.READ, key=key)
                           if kind == "r" else
                           ClientRequest(op=Operation.WRITE, key=key,
                                         value=value))
                batch.append(request)
                if len(batch) == chunk:
                    datastore.execute_batch(batch)
                    batch = []
            if batch:
                datastore.execute_batch(batch)
            snapshot = {}
            for index in range(120):
                key = f"user{index:08d}"
                response = datastore.execute_batch([
                    ClientRequest(op=Operation.READ, key=key)])[0]
                snapshot[key] = response.value
            finals.append(snapshot)
        assert finals[0] == finals[1] == finals[2]


class TestAdversarialSequences:
    @pytest.mark.parametrize("pattern", [
        "single_key_hammer",
        "cache_thrash_cycle",
        "alternating_pair",
        "sequential_scan",
    ])
    def test_bounds_hold_for_adversarial_patterns(self, pattern):
        """The Challenge-4 attack family: sequences chosen to stress the
        cache and the fake-query queue still satisfy the bounds."""
        config, datastore = build(seed=13, dummy_policy="round_robin")
        n = config.n

        def key_at(step: int) -> int:
            if pattern == "single_key_hammer":
                return 0
            if pattern == "cache_thrash_cycle":
                return step % (config.c + 2)  # just above the cache
            if pattern == "alternating_pair":
                return step % 2
            return step % n  # sequential scan

        for step in range(150):
            datastore.execute_batch([
                ClientRequest(op=Operation.READ,
                              key=f"user{key_at(step * config.r + j):08d}")
                for j in range(config.r)
            ])
        records = datastore.recorder.records
        verify_storage_invariants(records)
        report = full_report(records, datastore.proxy.id_log)
        assert report.max_alpha <= config.alpha_bound()
        assert report.min_beta >= config.beta_bound()

    def test_alpha_histogram_reflects_hit_rate_but_stays_bounded(self):
        """A documented residual leakage channel, pinned as a regression:
        the α *distribution* depends on the cache-hit rate (hits shrink
        r, growing f_R, so fake-query recycling speeds up).  An adversary
        comparing extreme patterns (hammering one cached key vs scanning
        everything) can therefore distinguish their aggregate hit rates —
        the same effect behind the paper's small histogram deltas for
        correlated queries (§8.3.2, Figure 5).  What never leaks is
        *which* keys are involved, and both patterns stay α,β-uniform."""
        reports = []
        for pattern in ("hammer", "scan"):
            config, datastore = build(seed=17, dummy_policy="round_robin")
            for step in range(200):
                if pattern == "hammer":
                    keys = ["user00000000"] * config.r
                else:
                    base = step * config.r
                    keys = [f"user{(base + j) % config.n:08d}"
                            for j in range(config.r)]
                datastore.execute_batch([
                    ClientRequest(op=Operation.READ, key=key)
                    for key in keys
                ])
            report = full_report(datastore.recorder.records,
                                 datastore.proxy.id_log)
            assert report.max_alpha <= config.alpha_bound()
            assert report.min_beta >= config.beta_bound()
            reports.append(report)
        # The hammer pattern's all-hit batches recycle the server faster:
        # its observed max α is at most the scan pattern's.
        hammer, scan = reports
        assert hammer.max_alpha <= scan.max_alpha
