"""Concurrency battery: fan-in equivalence, slow clients, disconnects.

The core claim: N concurrent clients funnelled through the coalescing
frontend produce byte-identical responses *and* a byte-identical
adversary-visible storage trace to the serial path executing the same
round partitions — concurrency changes scheduling, never results or
the trace.  Degenerate clients (slow-loris stalls, mid-round
disconnects) must never stall or corrupt a round for everyone else.
"""

from __future__ import annotations

import asyncio
import struct

from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.serve import (
    AsyncFrontend,
    AsyncServeClient,
    MaxWaitPolicy,
    OnFillPolicy,
    ServeServer,
)
from repro.sim.perf import _trace_digest
from repro.workloads.ycsb import key_name


def _twin_config(seed: int = 101) -> WaffleConfig:
    return WaffleConfig(n=200, b=20, r=8, f_d=4, d=50, c=30,
                        value_size=64, seed=seed)


def _twin_datastore(seed: int = 101) -> WaffleDatastore:
    """Datastores built this way are byte-for-byte clones of each other."""
    items = {key_name(i): b"value-%d" % i for i in range(200)}
    return WaffleDatastore(_twin_config(seed), items,
                           keychain=KeyChain.from_seed(7), log_ids=True)


class TestFanInEquivalence:
    def test_concurrent_fan_in_matches_serial_path(self):
        """48 clients through the frontend == serial rounds on a twin."""
        concurrent = _twin_datastore()
        serial = _twin_datastore()
        partitions: list[list] = []

        def spy(requests):
            partitions.append(list(requests))
            return concurrent.execute_batch(requests)

        async def scenario():
            async with AsyncFrontend(execute=spy, r=8) as frontend:
                return await asyncio.gather(
                    *(frontend.get(key_name(i)) for i in range(48)))

        values = asyncio.run(scenario())

        # Clients observed exactly the stored values, in submission order.
        assert values == [b"value-%d" % i for i in range(48)]
        assert [len(batch) for batch in partitions] == [8] * 6

        # Replay the identical partitions serially on the twin: both the
        # client-visible bytes and the adversary-visible trace match.
        serial_values = {}
        for batch in partitions:
            for resp in serial.execute_batch(batch):
                serial_values[resp.request_id] = resp.value
        concurrent_values = {
            req.request_id: value
            for batch, chunk in zip(partitions,
                                    (values[i:i + 8]
                                     for i in range(0, 48, 8)))
            for req, value in zip(batch, chunk)
        }
        assert concurrent_values == serial_values
        assert _trace_digest(concurrent.recorder.records) == \
            _trace_digest(serial.recorder.records)

    def test_mixed_read_write_fan_in_matches_serial(self):
        concurrent = _twin_datastore()
        serial = _twin_datastore()
        partitions: list[list] = []

        def spy(requests):
            partitions.append(list(requests))
            return concurrent.execute_batch(requests)

        async def scenario():
            frontend = AsyncFrontend(execute=spy, r=8)
            await frontend.start()
            ops = []
            for i in range(32):
                if i % 3 == 0:
                    ops.append(frontend.put(key_name(i),
                                            b"mixed-%d" % i))
                else:
                    ops.append(frontend.get(key_name(i)))
            await asyncio.gather(*ops)
            # Read a few writes back; only 2 pending under on-fill r=8,
            # so close() must drain them as a final partial round.
            readback_tasks = [
                asyncio.ensure_future(frontend.get(key_name(0))),
                asyncio.ensure_future(frontend.get(key_name(30))),
            ]
            await asyncio.sleep(0)
            await frontend.close()
            return await asyncio.gather(*readback_tasks)

        readback = asyncio.run(scenario())
        assert readback == [b"mixed-0", b"mixed-30"]

        for batch in partitions:
            serial.execute_batch(batch)
        assert _trace_digest(concurrent.recorder.records) == \
            _trace_digest(serial.recorder.records)

    def test_interleaved_tcp_clients_match_serial(self):
        """Full stack: many sockets, one coalesced trace, twin-equal."""
        concurrent = _twin_datastore()
        serial = _twin_datastore()
        partitions: list[list] = []

        def spy(requests):
            partitions.append(list(requests))
            return concurrent.execute_batch(requests)

        async def scenario():
            frontend = AsyncFrontend(execute=spy, r=8,
                                     policy=MaxWaitPolicy(8, 0.01))
            async with ServeServer(frontend) as server:
                host, port = server.address
                clients = [AsyncServeClient(host, port) for _ in range(6)]
                for client in clients:
                    await client.connect()
                try:
                    rounds = []
                    for wave in range(4):
                        rounds.append(await asyncio.gather(
                            *(client.get(key_name(wave * 6 + i))
                              for i, client in enumerate(clients))))
                    return rounds
                finally:
                    for client in clients:
                        await client.close()

        waves = asyncio.run(scenario())
        for wave, values in enumerate(waves):
            assert values == [b"value-%d" % (wave * 6 + i)
                              for i in range(6)]
        for batch in partitions:
            serial.execute_batch(batch)
        assert _trace_digest(concurrent.recorder.records) == \
            _trace_digest(serial.recorder.records)


class TestDegenerateClients:
    def test_slow_loris_does_not_stall_other_clients(self, small_datastore):
        """A connection stalled mid-frame must not block round progress."""

        async def scenario():
            frontend = AsyncFrontend(small_datastore,
                                     policy=MaxWaitPolicy(8, 0.005))
            async with ServeServer(frontend) as server:
                host, port = server.address
                # The loris: sends half a length prefix, then goes quiet.
                loris_r, loris_w = await asyncio.open_connection(host, port)
                loris_w.write(b"\x00\x00")
                await loris_w.drain()

                async with AsyncServeClient(host, port) as client:
                    async def fetch_all():
                        # One connection is serial request/response;
                        # each get still rides its own coalesced round.
                        return [await client.get(key_name(i))
                                for i in range(4)]

                    values = await asyncio.wait_for(fetch_all(),
                                                    timeout=10.0)

                loris_w.close()
                try:
                    await loris_w.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return values, frontend.stats()

        values, stats = asyncio.run(scenario())
        assert values == [b"value-%d" % i for i in range(4)]
        assert stats["real_requests"] == 4

    def test_mid_round_disconnect_other_waiters_resolve(self,
                                                        small_datastore):
        """A client dying while its request is in-flight harms only it."""

        async def scenario():
            # r=2 on-fill: the round needs both requests, so the victim's
            # request is provably in the same round as the survivor's.
            frontend = AsyncFrontend(small_datastore, policy=OnFillPolicy(2))
            async with ServeServer(frontend) as server:
                host, port = server.address
                from repro.net.protocol import encode_message

                victim_r, victim_w = await asyncio.open_connection(host,
                                                                   port)
                payload = encode_message(["GET", key_name(0)])
                victim_w.write(struct.pack(">I", len(payload)) + payload)
                await victim_w.drain()
                await asyncio.sleep(0.05)  # request is now pending
                victim_w.close()  # vanish before the round releases

                async with AsyncServeClient(host, port) as client:
                    survivor = await asyncio.wait_for(
                        client.get(key_name(1)), timeout=10.0)
                    # The server survives; the next round (two fresh
                    # connections, one request each) also completes.
                    async with AsyncServeClient(host, port) as other:
                        again = await asyncio.gather(
                            client.get(key_name(2)),
                            other.get(key_name(3)))
                return survivor, again, frontend.stats()

        survivor, again, stats = asyncio.run(scenario())
        assert survivor == b"value-1"
        assert again == [b"value-2", b"value-3"]
        assert stats["rounds"] == 2
        assert stats["real_requests"] == 4

    def test_disconnect_does_not_corrupt_the_trace(self):
        """The dead client's round still executes with full batch shape."""
        concurrent = _twin_datastore()
        serial = _twin_datastore()
        partitions: list[list] = []

        def spy(requests):
            partitions.append(list(requests))
            return concurrent.execute_batch(requests)

        async def scenario():
            frontend = AsyncFrontend(execute=spy, r=2,
                                     policy=OnFillPolicy(2))
            async with ServeServer(frontend) as server:
                host, port = server.address
                from repro.net.protocol import encode_message

                victim_r, victim_w = await asyncio.open_connection(host,
                                                                   port)
                payload = encode_message(["GET", key_name(5)])
                victim_w.write(struct.pack(">I", len(payload)) + payload)
                await victim_w.drain()
                await asyncio.sleep(0.05)
                victim_w.close()

                async with AsyncServeClient(host, port) as client:
                    await client.get(key_name(6))

        asyncio.run(scenario())
        assert [len(batch) for batch in partitions] == [2]
        for batch in partitions:
            serial.execute_batch(batch)
        assert _trace_digest(concurrent.recorder.records) == \
            _trace_digest(serial.recorder.records)
