"""Known-answer pins for the deterministic crypto surface.

A deployed Waffle's storage ids are PRF outputs; if an implementation
change silently altered derivations, every outsourced object would
become unreachable on upgrade.  These pins make such a change an
explicit, reviewed decision instead of an accident.

The batched fast-path kernels (cached-HMAC PRF, big-int-XOR AEAD) are
additionally held byte-identical to the scalar seed implementations
preserved in :mod:`repro.sim.perf` — the equivalence that lets the proxy
swap kernels without the server ever noticing.
"""

import random

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf
from repro.sim.perf import ScalarCipher, ScalarPrf


class TestPrfKnownAnswers:
    def test_fixed_secret_fixed_outputs(self):
        prf = Prf(b"known-answer-secret")
        assert prf.derive("user00000001", 0) == \
            "15837b7ce3ddd5e6b367bd71710e10c0"
        assert prf.derive("user00000001", 12345) == \
            "b1956db0690058fe907518f49165bf3a"

    def test_keychain_derivation_stable(self):
        chain = KeyChain.from_seed(42)
        assert chain.prf.derive("k", 7) == \
            "2aafb921b688174b8980ee288bb9fd3f"

    def test_ciphertext_layout_stable(self):
        """Nonce(16) + body + tag(32): layout changes break stored data."""
        chain = KeyChain.from_seed(42)
        blob = chain.cipher.encrypt(b"fixed")
        assert len(blob) == 16 + 5 + 32
        assert chain.cipher.ciphertext_overhead() == 48

    def test_decryption_of_archived_ciphertext(self):
        """A ciphertext produced by one chain instance decrypts under a
        freshly constructed chain with the same seed (cross-process
        durability of outsourced values)."""
        blob = KeyChain.from_seed(777).cipher.encrypt(b"archived-value")
        fresh = KeyChain.from_seed(777)
        assert fresh.cipher.decrypt(blob) == b"archived-value"


#: Plaintext shapes that exercise the keystream edge cases: empty, below
#: one SHA-256 block, exactly one block, block-aligned, and ragged tails.
_SHAPE_VECTORS = [b"", b"x", b"short", b"a" * 31, b"b" * 32, b"c" * 33,
                  b"d" * 64, b"e" * 100, b"f" * 1024, bytes(range(256)) * 5]


class TestScalarBatchedEquivalence:
    """Optimized kernels vs the seed scalar implementations, byte for byte."""

    def test_prf_paths_agree_on_fixed_vectors(self):
        secret = b"known-answer-secret"
        scalar, batched = ScalarPrf(secret), Prf(secret)
        pairs = [("user00000001", 0), ("user00000001", 12345), ("k", 7),
                 ("", 0), ("key-with-\x00-byte", 2**31)]
        for key, ts in pairs:
            assert scalar.derive(key, ts) == batched.derive(key, ts)
        assert batched.derive_many(pairs) == [
            batched.derive(key, ts) for key, ts in pairs]
        assert scalar.derive_many(pairs) == batched.derive_many(pairs)
        # Raw-bytes subkey derivation is pinned too (keychain depends on it).
        assert scalar.derive_bytes(b"label") == batched.derive_bytes(b"label")

    def test_prf_pins_unchanged_by_fast_path(self):
        assert Prf(b"known-answer-secret").derive("user00000001", 0) == \
            "15837b7ce3ddd5e6b367bd71710e10c0"
        assert ScalarPrf(b"known-answer-secret").derive("user00000001", 0) == \
            "15837b7ce3ddd5e6b367bd71710e10c0"

    def test_aead_paths_agree_across_shapes(self):
        """With synchronized nonce rngs the two implementations produce
        identical blobs for empty, ragged and block-aligned plaintexts,
        and each decrypts the other's output."""
        keys = {"enc_key": b"ka-enc-key", "mac_key": b"ka-mac-key"}
        scalar = ScalarCipher(rng=random.Random(42), **keys)
        batched = AuthenticatedCipher(rng=random.Random(42), **keys)
        for plaintext in _SHAPE_VECTORS:
            blob_scalar = scalar.encrypt(plaintext)
            blob_batched = batched.encrypt(plaintext)
            assert blob_scalar == blob_batched
            assert scalar.decrypt(blob_batched) == plaintext
            assert batched.decrypt(blob_scalar) == plaintext

    def test_aead_many_equals_looped_single(self):
        keys = {"enc_key": b"ka-enc-key", "mac_key": b"ka-mac-key"}
        looped = AuthenticatedCipher(rng=random.Random(7), **keys)
        many = AuthenticatedCipher(rng=random.Random(7), **keys)
        expected = [looped.encrypt(plaintext) for plaintext in _SHAPE_VECTORS]
        blobs = many.encrypt_many(_SHAPE_VECTORS)
        assert blobs == expected
        assert many.decrypt_many(blobs) == _SHAPE_VECTORS

    def test_aead_ciphertext_pin(self):
        """Full ciphertext bytes under a fixed nonce rng: any keystream,
        XOR or MAC change breaks decryption of already-stored data."""
        cipher = AuthenticatedCipher(enc_key=b"pin-enc", mac_key=b"pin-mac",
                                     rng=random.Random(0))
        assert cipher.encrypt(b"fixed").hex() == (
            "cd072cd8be6f9f62ac4c09c28206e7e3"  # nonce (random.Random(0))
            "346852021f"                        # body
            "e784245ca0437d0f7183cbcc6a3d47d8"  # tag
            "9cdfb81bc88c2cd6bed2d1eed541a7e0")
