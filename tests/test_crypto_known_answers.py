"""Known-answer pins for the deterministic crypto surface.

A deployed Waffle's storage ids are PRF outputs; if an implementation
change silently altered derivations, every outsourced object would
become unreachable on upgrade.  These pins make such a change an
explicit, reviewed decision instead of an accident.
"""

from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf


class TestPrfKnownAnswers:
    def test_fixed_secret_fixed_outputs(self):
        prf = Prf(b"known-answer-secret")
        assert prf.derive("user00000001", 0) == \
            "15837b7ce3ddd5e6b367bd71710e10c0"
        assert prf.derive("user00000001", 12345) == \
            "b1956db0690058fe907518f49165bf3a"

    def test_keychain_derivation_stable(self):
        chain = KeyChain.from_seed(42)
        assert chain.prf.derive("k", 7) == \
            "2aafb921b688174b8980ee288bb9fd3f"

    def test_ciphertext_layout_stable(self):
        """Nonce(16) + body + tag(32): layout changes break stored data."""
        chain = KeyChain.from_seed(42)
        blob = chain.cipher.encrypt(b"fixed")
        assert len(blob) == 16 + 5 + 32
        assert chain.cipher.ciphertext_overhead() == 48

    def test_decryption_of_archived_ciphertext(self):
        """A ciphertext produced by one chain instance decrypts under a
        freshly constructed chain with the same seed (cross-process
        durability of outsourced values)."""
        blob = KeyChain.from_seed(777).cipher.encrypt(b"archived-value")
        fresh = KeyChain.from_seed(777)
        assert fresh.cipher.decrypt(blob) == b"archived-value"
