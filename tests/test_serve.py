"""Unit coverage for the serving frontend: policies, admission, server.

The release policies are pure decision functions over timestamps, so
they are tested on a :class:`~repro.sim.clock.SimClock` with no asyncio
involved; the frontend and TCP layers run under ``asyncio.run`` against
the real (tiny) datastore.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.batch import ClientRequest, ClientResponse
from repro.errors import (
    BackendUnavailableError,
    ClosedError,
    ConfigurationError,
    OverloadedError,
    ProtocolError,
    StorageError,
    is_retryable,
)
from repro.serve import (
    AdmissionController,
    AsyncFrontend,
    AsyncServeClient,
    FixedIntervalPolicy,
    MaxWaitPolicy,
    OnFillPolicy,
    RandomizedIntervalPolicy,
    ServeServer,
    make_policy,
)
from repro.sim.clock import SimClock
from repro.workloads.trace import Operation
from repro.workloads.ycsb import key_name


# ----------------------------------------------------------------------
# release policies (pure, SimClock-driven)
# ----------------------------------------------------------------------
class TestOnFillPolicy:
    def test_fires_exactly_at_r(self):
        policy = OnFillPolicy(4)
        assert not policy.due(3, 0.0, 1.0)
        assert policy.due(4, 0.0, 1.0)
        assert policy.due(9, 0.0, 1.0)

    def test_never_sets_a_deadline(self):
        policy = OnFillPolicy(4)
        assert policy.next_deadline(3, 0.0, 1.0) is None

    def test_commits_to_now(self):
        assert OnFillPolicy(4).release_time(2.5) == 2.5

    def test_rejects_bad_r(self):
        with pytest.raises(ConfigurationError):
            OnFillPolicy(0)

    def test_does_not_fire_empty(self):
        assert OnFillPolicy(4).fires_empty is False


class TestMaxWaitPolicy:
    def test_partial_batch_fires_after_deadline(self):
        clock = SimClock()
        policy = MaxWaitPolicy(4, max_wait_s=0.5)
        oldest = clock.now
        assert not policy.due(2, oldest, clock.now)
        clock.advance(0.49)
        assert not policy.due(2, oldest, clock.now)
        clock.advance(0.02)
        assert policy.due(2, oldest, clock.now)

    def test_full_batch_fires_immediately(self):
        policy = MaxWaitPolicy(4, max_wait_s=0.5)
        assert policy.due(4, 0.0, 0.0)

    def test_deadline_tracks_oldest_arrival(self):
        policy = MaxWaitPolicy(4, max_wait_s=0.5)
        assert policy.next_deadline(2, 1.25, 1.3) == pytest.approx(1.75)
        assert policy.next_deadline(0, None, 1.3) is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MaxWaitPolicy(0, 0.1)
        with pytest.raises(ConfigurationError):
            MaxWaitPolicy(4, 0.0)


class TestFixedIntervalPolicy:
    def test_grid_from_first_query(self):
        clock = SimClock(start=10.0)
        policy = FixedIntervalPolicy(0.25)
        assert not policy.due(5, 10.0, clock.now)
        assert policy.next_deadline(5, 10.0, clock.now) == pytest.approx(10.25)
        clock.advance(0.25)
        assert policy.due(0, None, clock.now)

    def test_commits_to_grid_ticks_not_now(self):
        policy = FixedIntervalPolicy(0.25)
        policy.due(0, None, 10.0)  # arm the epoch
        release = policy.release_time(10.26)  # dispatched slightly late
        assert release == pytest.approx(10.25)
        policy.mark_release(release)
        assert policy.next_deadline(0, None, 10.26) == pytest.approx(10.5)

    def test_overrun_skips_ticks_without_makeup_bursts(self):
        policy = FixedIntervalPolicy(0.25)
        policy.due(0, None, 10.0)
        # A round overran two full ticks; commit to the latest past tick.
        release = policy.release_time(10.7)
        assert release == pytest.approx(10.5)
        policy.mark_release(release)
        assert policy.next_deadline(0, None, 10.7) == pytest.approx(10.75)

    def test_committed_gaps_are_exact_interval_multiples(self):
        clock = SimClock()
        policy = FixedIntervalPolicy(0.2)
        policy.due(0, None, clock.now)  # arm the epoch at t=0
        releases = []
        for jitter in (0.0, 0.013, 0.19, 0.002, 0.07):
            clock.advance(0.2 + jitter)
            assert policy.due(0, None, clock.now)
            release = policy.release_time(clock.now)
            policy.mark_release(release)
            releases.append(release)
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        for gap in gaps:
            assert gap / 0.2 == pytest.approx(round(gap / 0.2))

    def test_fires_empty(self):
        assert FixedIntervalPolicy(0.25).fires_empty is True

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            FixedIntervalPolicy(0.0)


class TestRandomizedIntervalPolicy:
    def test_identically_seeded_schedules_are_float_identical(self):
        """Same (interval, jitter, seed, epoch) => same committed ticks —
        the property sharded epoch alignment relies on."""
        releases = []
        for _ in range(2):
            policy = RandomizedIntervalPolicy(0.05, 0.02, seed=9)
            policy.align(100.0)
            committed = []
            now = 100.0
            for _ in range(20):
                now = policy.next_deadline(0, None, now)
                release = policy.release_time(now)
                policy.mark_release(release)
                committed.append(release)
            releases.append(committed)
        assert releases[0] == releases[1]

    def test_gaps_stay_inside_the_jitter_band(self):
        policy = RandomizedIntervalPolicy(0.05, 0.02, seed=3)
        policy.align(0.0)
        committed = []
        now = 0.0
        for _ in range(50):
            now = policy.next_deadline(0, None, now)
            release = policy.release_time(now)
            policy.mark_release(release)
            committed.append(release)
        gaps = [b - a for a, b in zip(committed, committed[1:])]
        assert all(0.03 <= gap <= 0.07 for gap in gaps)
        # Jitter is real: the gaps are not a constant grid.
        assert len({round(gap, 9) for gap in gaps}) > 1

    def test_overrun_merges_ticks_and_stays_on_schedule(self):
        """A late dispatch commits to the latest pre-drawn tick; the
        committed instants are a subsequence of the seeded schedule."""
        import random as random_module

        policy = RandomizedIntervalPolicy(0.05, 0.02, seed=4)
        policy.align(0.0)
        # Twin of the policy's private rng: the full pre-drawn schedule.
        rng = random_module.Random(4)
        ticks, t = [], 0.0
        for _ in range(40):
            t += 0.05 + rng.uniform(-0.02, 0.02)
            ticks.append(t)
        # Dispatch extremely late, past several scheduled ticks.
        release = policy.release_time(ticks[5] + 0.001)
        policy.mark_release(release)
        assert release == pytest.approx(ticks[5], abs=1e-12)
        assert policy.next_deadline(0, None, release) == \
            pytest.approx(ticks[6], abs=1e-12)

    def test_zero_jitter_degenerates_to_the_fixed_grid(self):
        policy = RandomizedIntervalPolicy(0.05, 0.0, seed=8)
        policy.align(0.0)
        committed = []
        now = 0.0
        for _ in range(10):
            now = policy.next_deadline(0, None, now)
            release = policy.release_time(now)
            policy.mark_release(release)
            committed.append(release)
        gaps = [b - a for a, b in zip(committed, committed[1:])]
        assert all(gap == pytest.approx(0.05) for gap in gaps)

    def test_fires_empty_and_realign_rejected(self):
        policy = RandomizedIntervalPolicy(0.05, 0.01)
        assert policy.fires_empty is True
        policy.align(1.0)
        with pytest.raises(ConfigurationError):
            policy.align(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RandomizedIntervalPolicy(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            RandomizedIntervalPolicy(0.05, -0.01)
        with pytest.raises(ConfigurationError):
            RandomizedIntervalPolicy(0.05, 0.05)  # gap could hit zero

    def test_randomized_schedule_bounds_timing_leakage(self):
        """The seeded schedule is workload-independent: the attack score
        stays under the oracle's shaped-schedule ceiling (0.35) and far
        below the on-fill baseline on the same flash crowd."""
        from repro.analysis.timing import load_inference_attack
        from repro.workloads.openloop import FlashCrowdArrivals

        duration, r = 4.0, 4
        workload = FlashCrowdArrivals(
            200.0, 64, spike_factor=5.0, burst_start=1.6,
            burst_duration=1.2, hot_keys=4, seed=5, read_fraction=1.0)
        arrivals = workload.generate(duration)

        policy = RandomizedIntervalPolicy(0.05, 0.02, seed=5)
        policy.align(0.0)
        shaped, now = [], 0.0
        while now < duration:
            now = policy.next_deadline(0, None, now)
            release = policy.release_time(now)
            policy.mark_release(release)
            shaped.append(release)

        def score(timestamps):
            rates = [workload.rate_at((a + b) / 2.0)
                     for a, b in zip(timestamps, timestamps[1:])]
            return load_inference_attack(timestamps, rates,
                                         r)["leakage_score"]

        on_fill = [arrivals[i].at
                   for i in range(r - 1, len(arrivals), r)]
        assert score(shaped) < 0.35  # check_timing_channel's ceiling
        assert score(shaped) < score(on_fill)


class TestMakePolicy:
    def test_hyphenated_and_underscored_names(self):
        assert isinstance(make_policy("on-fill", 4), OnFillPolicy)
        assert isinstance(make_policy("max_wait", 4), MaxWaitPolicy)
        assert isinstance(make_policy("fixed-interval", 4),
                          FixedIntervalPolicy)
        assert isinstance(make_policy("randomized-interval", 4),
                          RandomizedIntervalPolicy)

    def test_randomized_defaults_jitter_to_half_interval(self):
        policy = make_policy("randomized_interval", 4, interval_s=0.04,
                             seed=6)
        assert policy.jitter_s == pytest.approx(0.02)
        assert policy.seed == 6
        explicit = make_policy("randomized_interval", 4, interval_s=0.04,
                               jitter_s=0.001)
        assert explicit.jitter_s == pytest.approx(0.001)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("adaptive", 4)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_sheds_past_the_cap(self):
        admission = AdmissionController(2)
        admission.admit()
        admission.admit()
        with pytest.raises(OverloadedError):
            admission.admit()
        assert admission.admitted == 2
        assert admission.shed == 1
        assert admission.depth == 2

    def test_shed_errors_are_retryable(self):
        admission = AdmissionController(1)
        admission.admit()
        try:
            admission.admit()
        except OverloadedError as error:
            assert is_retryable(error)
        else:  # pragma: no cover
            pytest.fail("expected OverloadedError")

    def test_release_reopens_admission(self):
        admission = AdmissionController(1)
        admission.admit()
        admission.release(1)
        admission.admit()
        assert admission.admitted == 2
        assert admission.depth == 1

    def test_high_water_tracks_peak(self):
        admission = AdmissionController(8)
        for _ in range(5):
            admission.admit()
        admission.release(3)
        admission.admit()
        assert admission.high_water == 5
        assert admission.snapshot()["high_water"] == 5

    def test_rejects_bad_cap(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(0)


# ----------------------------------------------------------------------
# the coalescing frontend
# ----------------------------------------------------------------------
class TestAsyncFrontend:
    def test_requires_datastore_or_executor(self):
        with pytest.raises(ConfigurationError):
            AsyncFrontend()
        with pytest.raises(ConfigurationError):
            AsyncFrontend(execute=lambda reqs: [])

    def test_get_put_round_trip(self, small_datastore):
        async def scenario():
            # max-wait: sequential awaited requests release as partial
            # rounds instead of waiting forever for a full batch.
            frontend = AsyncFrontend(small_datastore,
                                     policy=MaxWaitPolicy(8, 0.005))
            async with frontend:
                before = await frontend.get(key_name(3))
                await frontend.put(key_name(3), b"updated")
                after = await frontend.get(key_name(3))
                return before, after

        before, after = asyncio.run(scenario())
        assert before == b"value-3"
        assert after == b"updated"

    def test_close_drains_partial_batches(self, small_datastore):
        # r=8; submit 3 requests; pure on-fill would hold them forever,
        # close() must drain them into a final partial round.
        async def scenario():
            frontend = AsyncFrontend(small_datastore)
            await frontend.start()
            tasks = [asyncio.ensure_future(frontend.get(key_name(i)))
                     for i in range(3)]
            await asyncio.sleep(0)
            await frontend.close()
            return await asyncio.gather(*tasks), frontend

        values, frontend = asyncio.run(scenario())
        assert values == [b"value-0", b"value-1", b"value-2"]
        assert frontend.round_sizes == [3]

    def test_submit_after_close_raises(self, small_datastore):
        async def scenario():
            frontend = AsyncFrontend(small_datastore)
            await frontend.start()
            await frontend.close()
            with pytest.raises(ClosedError):
                await frontend.get(key_name(0))

        asyncio.run(scenario())

    def test_stats_shape(self, small_datastore):
        async def scenario():
            async with AsyncFrontend(small_datastore) as frontend:
                await asyncio.gather(*(frontend.get(key_name(i))
                                       for i in range(8)))
            return frontend.stats()

        stats = asyncio.run(scenario())
        assert stats["admitted"] == 8
        assert stats["shed"] == 0
        assert stats["rounds"] == 1
        assert stats["real_requests"] == 8
        assert stats["policy"] == "on_fill"

    def test_owns_and_shuts_down_its_dedicated_executor(self,
                                                        small_datastore):
        async def scenario():
            frontend = AsyncFrontend(small_datastore)
            assert frontend._owns_executor
            await frontend.start()
            await asyncio.gather(*(frontend.get(key_name(i))
                                   for i in range(8)))
            await frontend.close()
            return frontend

        frontend = asyncio.run(scenario())
        with pytest.raises(RuntimeError):
            frontend._executor.submit(lambda: None)  # pool is shut down

    def test_shared_executor_is_never_shut_down(self, small_datastore):
        from concurrent.futures import ThreadPoolExecutor

        shared = ThreadPoolExecutor(max_workers=1)
        try:
            async def scenario():
                frontend = AsyncFrontend(small_datastore, executor=shared)
                assert not frontend._owns_executor
                async with frontend:
                    await asyncio.gather(*(frontend.get(key_name(i))
                                           for i in range(8)))

            asyncio.run(scenario())
            # Still alive after the frontend closed: the owner decides.
            assert shared.submit(lambda: 42).result() == 42
        finally:
            shared.shutdown(wait=True)

    def test_release_times_recorded_per_round(self, small_datastore):
        async def scenario():
            async with AsyncFrontend(small_datastore) as frontend:
                await asyncio.gather(*(frontend.get(key_name(i))
                                       for i in range(16)))
            return frontend

        frontend = asyncio.run(scenario())
        assert len(frontend.release_times) == 2
        assert frontend.release_times == sorted(frontend.release_times)

    def test_retryable_round_failure_is_retried(self):
        calls = {"n": 0, "reconnects": 0}

        def execute(requests):
            calls["n"] += 1
            if calls["n"] == 1:
                raise BackendUnavailableError("first attempt flakes")
            return [ClientResponse(request_id=req.request_id, key=req.key,
                                   value=b"ok") for req in requests]

        async def scenario():
            frontend = AsyncFrontend(
                execute=execute, r=2, max_round_retries=1,
                on_retry=lambda: calls.__setitem__(
                    "reconnects", calls["reconnects"] + 1))
            async with frontend:
                return await asyncio.gather(
                    frontend.get(key_name(0)), frontend.get(key_name(1)))

        values = asyncio.run(scenario())
        assert values == [b"ok", b"ok"]
        assert calls["n"] == 2
        assert calls["reconnects"] == 1

    def test_fatal_round_failure_reaches_every_waiter(self):
        def execute(requests):
            raise ProtocolError("round is broken")

        async def scenario():
            async with AsyncFrontend(execute=execute, r=2,
                                     max_round_retries=3) as frontend:
                return await asyncio.gather(
                    frontend.get(key_name(0)), frontend.get(key_name(1)),
                    return_exceptions=True)

        outcomes = asyncio.run(scenario())
        assert all(isinstance(o, ProtocolError) for o in outcomes)

    def test_retry_budget_exhaustion_propagates(self):
        def execute(requests):
            raise BackendUnavailableError("always down")

        async def scenario():
            async with AsyncFrontend(execute=execute, r=1,
                                     max_round_retries=2) as frontend:
                return await asyncio.gather(frontend.get(key_name(0)),
                                            return_exceptions=True)

        (outcome,) = asyncio.run(scenario())
        assert isinstance(outcome, BackendUnavailableError)


# ----------------------------------------------------------------------
# the TCP layer
# ----------------------------------------------------------------------
class TestServeServer:
    def test_round_trip_over_tcp(self, small_datastore):
        async def scenario():
            frontend = AsyncFrontend(small_datastore,
                                     policy=MaxWaitPolicy(8, 0.005))
            async with ServeServer(frontend) as server:
                host, port = server.address
                async with AsyncServeClient(host, port) as client:
                    assert await client.ping() == b"PONG"
                    value = await client.get(key_name(5))
                    await client.put(key_name(5), b"over-tcp")
                    updated = await client.get(key_name(5))
                    stats = await client.stats()
            return value, updated, stats, server

        value, updated, stats, server = asyncio.run(scenario())
        assert value == b"value-5"
        assert updated == b"over-tcp"
        assert stats["admitted"] == 3
        assert stats["shed"] == 0
        assert server.connections_total == 1

    def test_unknown_command_is_an_error_reply(self, small_datastore):
        async def scenario():
            frontend = AsyncFrontend(small_datastore,
                                     policy=MaxWaitPolicy(8, 0.005))
            async with ServeServer(frontend) as server:
                host, port = server.address
                async with AsyncServeClient(host, port) as client:
                    with pytest.raises(StorageError):
                        await client._call(["BOGUS"])
                    # The connection survives the error reply.
                    assert await client.ping() == b"PONG"

        asyncio.run(scenario())

    def test_overloaded_travels_the_wire_as_retryable(self, small_datastore):
        async def scenario():
            # queue_cap=1 with a slow policy: the second concurrent
            # request must be shed and surface client-side as the
            # retryable taxonomy type.
            frontend = AsyncFrontend(small_datastore,
                                     policy=OnFillPolicy(8), queue_cap=1)
            async with ServeServer(frontend) as server:
                host, port = server.address
                first = AsyncServeClient(host, port)
                second = AsyncServeClient(host, port)
                await first.connect()
                await second.connect()
                task = asyncio.ensure_future(first.get(key_name(0)))
                await asyncio.sleep(0.05)  # first request now pending
                with pytest.raises(OverloadedError) as excinfo:
                    await second.get(key_name(1))
                assert is_retryable(excinfo.value)
                await frontend.close()  # drain the pending request
                assert await task == b"value-0"
                await first.close()
                await second.close()

        asyncio.run(scenario())

    def test_put_requests_count_ops_in_stats(self, small_datastore):
        async def scenario():
            frontend = AsyncFrontend(small_datastore,
                                     policy=MaxWaitPolicy(8, 0.005))
            async with ServeServer(frontend) as server:
                host, port = server.address
                async with AsyncServeClient(host, port) as client:
                    for i in range(4):
                        await client.put(key_name(i), b"w")
                    stats = await client.stats()
            return stats

        stats = asyncio.run(scenario())
        assert stats["admitted"] == 4
        assert stats["rounds"] >= 1


class TestOperationMapping:
    def test_frontend_builds_correct_request_kinds(self, small_datastore):
        captured: list[list[ClientRequest]] = []
        real_execute = small_datastore.execute_batch

        def spy(requests):
            captured.append(list(requests))
            return real_execute(requests)

        async def scenario():
            frontend = AsyncFrontend(execute=spy, r=2)
            async with frontend:
                await asyncio.gather(frontend.get(key_name(0)),
                                     frontend.put(key_name(1), b"x"))

        asyncio.run(scenario())
        (batch,) = captured
        assert batch[0].op is Operation.READ
        assert batch[1].op is Operation.WRITE
        assert batch[1].value == b"x"
