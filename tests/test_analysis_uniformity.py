"""Tests for α/β measurement and the storage-id lifecycle checker."""

import pytest

from repro.analysis.uniformity import (
    UniformityReport,
    full_report,
    measure_alpha,
    measure_beta,
    verify_storage_invariants,
)
from repro.errors import ProtocolError
from repro.storage.recording import AccessRecord


def trace(*entries) -> list[AccessRecord]:
    """entries: (op, storage_id, round)."""
    return [AccessRecord(op, sid, rnd, seq)
            for seq, (op, sid, rnd) in enumerate(entries)]


class TestInvariantChecker:
    def test_valid_lifecycle_passes(self):
        verify_storage_invariants(trace(
            ("write", "a", 0), ("read", "a", 1), ("delete", "a", 1),
        ))

    def test_double_write_rejected(self):
        with pytest.raises(ProtocolError):
            verify_storage_invariants(trace(
                ("write", "a", 0), ("write", "a", 1),
            ))

    def test_read_before_write_rejected(self):
        with pytest.raises(ProtocolError):
            verify_storage_invariants(trace(("read", "a", 0)))

    def test_double_read_rejected(self):
        with pytest.raises(ProtocolError):
            verify_storage_invariants(trace(
                ("write", "a", 0), ("read", "a", 1), ("read", "a", 2),
            ))

    def test_delete_before_read_rejected(self):
        with pytest.raises(ProtocolError):
            verify_storage_invariants(trace(
                ("write", "a", 0), ("delete", "a", 1),
            ))


class TestAlphaMeasurement:
    def test_alpha_counts_rounds_strictly_between(self):
        report = measure_alpha(trace(
            ("write", "a", 0), ("read", "a", 5),
        ))
        assert report.alphas == [4]

    def test_next_round_read_scores_zero(self):
        report = measure_alpha(trace(
            ("write", "a", 3), ("read", "a", 4),
        ))
        assert report.alphas == [0]

    def test_unread_ids_counted(self):
        report = measure_alpha(trace(
            ("write", "a", 0), ("write", "b", 0), ("read", "a", 1),
        ))
        assert report.unread_ids == 1
        assert report.max_alpha == 0

    def test_multiple_ids(self):
        report = measure_alpha(trace(
            ("write", "a", 0), ("write", "b", 1),
            ("read", "b", 2), ("read", "a", 9),
        ))
        assert sorted(report.alphas) == [0, 8]
        assert report.max_alpha == 8

    def test_empty_trace(self):
        report = measure_alpha([])
        assert report.max_alpha is None
        assert report.alphas == []


class TestBetaMeasurement:
    def test_beta_counts_round_gap(self):
        id_log = {"a1": "k", "a2": "k"}
        betas = measure_beta(trace(
            ("write", "a1", 0), ("read", "a1", 2), ("write", "a2", 7),
        ), id_log)
        assert betas == [5]

    def test_dummies_excluded(self):
        id_log = {"d1": "\x00dummy:0", "d2": "\x00dummy:0"}
        betas = measure_beta(trace(
            ("write", "d1", 0), ("read", "d1", 1), ("write", "d2", 1),
        ), id_log)
        assert betas == []

    def test_untracked_id_rejected(self):
        with pytest.raises(ProtocolError):
            measure_beta(trace(("read", "mystery", 0)), {})

    def test_interleaved_keys(self):
        id_log = {"a1": "ka", "a2": "ka", "b1": "kb", "b2": "kb"}
        betas = measure_beta(trace(
            ("write", "a1", 0), ("write", "b1", 0),
            ("read", "a1", 1), ("read", "b1", 3),
            ("write", "b2", 4), ("write", "a2", 9),
        ), id_log)
        assert sorted(betas) == [1, 8]


class TestReport:
    def test_satisfies_checks_both_bounds(self):
        report = UniformityReport(alphas=[0, 3, 7], betas=[4, 9])
        assert report.satisfies(alpha_bound=7, beta_bound=4)
        assert not report.satisfies(alpha_bound=6, beta_bound=4)
        assert not report.satisfies(alpha_bound=7, beta_bound=5)

    def test_satisfies_vacuous_when_empty(self):
        assert UniformityReport().satisfies(0, 10**9)

    def test_full_report_combines(self):
        id_log = {"a1": "k", "a2": "k"}
        report = full_report(trace(
            ("write", "a1", 0), ("read", "a1", 2), ("write", "a2", 5),
        ), id_log)
        assert report.alphas == [1]
        assert report.betas == [3]
        assert report.unread_ids == 1


class TestRoundInference:
    def test_infer_rounds_from_burst_structure(self):
        from repro.analysis.uniformity import infer_rounds
        raw = trace(
            ("write", "i1", 0), ("write", "i2", 0),      # init writes
            ("read", "a", 0), ("read", "b", 0),          # round 1 reads
            ("delete", "a", 0), ("delete", "b", 0),
            ("write", "c", 0), ("write", "d", 0),
            ("read", "c", 0),                            # round 2 reads
            ("delete", "c", 0), ("write", "e", 0),
        )
        rounds = [r.round for r in infer_rounds(raw)]
        assert rounds == [0, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2]

    def test_inferred_rounds_match_recorder_rounds(self):
        """Adversary-inferred rounds reproduce the proxy-marked rounds on
        a real Waffle trace, so alpha measurements agree."""
        import random
        from repro.analysis.uniformity import infer_rounds, measure_alpha
        from repro.core.batch import ClientRequest
        from repro.core.config import WaffleConfig
        from repro.core.datastore import WaffleDatastore
        from repro.crypto.keys import KeyChain
        from repro.workloads.trace import Operation
        from tests.conftest import make_items

        n = 150
        config = WaffleConfig(n=n, b=16, r=6, f_d=4, d=50, c=20,
                              value_size=64, seed=51)
        datastore = WaffleDatastore(config, make_items(n),
                                    keychain=KeyChain.from_seed(52))
        rng = random.Random(53)
        for _ in range(40):
            datastore.execute_batch([
                ClientRequest(op=Operation.READ,
                              key=f"user{rng.randrange(n):08d}")
                for _ in range(config.r)
            ])
        records = datastore.recorder.records
        marked = measure_alpha(records)
        inferred = measure_alpha(infer_rounds(records))
        assert sorted(marked.alphas) == sorted(inferred.alphas)
