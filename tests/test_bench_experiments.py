"""Smoke tests for the per-figure experiment definitions (tiny scales).

These verify each experiment runs end-to-end and exhibits the paper's
*shape*; the benchmarks directory runs them at their full scaled size.
"""

import pytest

from repro.bench import experiments as exp
from repro.core.config import SecurityLevel, WaffleConfig


TINY = 2**11


class TestDefaults:
    def test_default_config_ratios(self):
        config = exp.default_config(TINY)
        assert config.n == TINY
        assert config.r / config.b == pytest.approx(0.4, abs=0.1)

    def test_rebalance_keeps_d_consistent(self):
        config = exp.default_config(TINY)
        rebalanced = exp._rebalance(config, r=config.b // 2)
        assert rebalanced.d == WaffleConfig._balanced_dummies(
            config.n, rebalanced.b, rebalanced.r, rebalanced.f_d)


class TestFigure2:
    def test_fig2ab_rows_and_ordering(self):
        rows = exp.fig2ab_baselines(n=TINY, rounds=20, taostore_requests=40)
        systems = {row["system"] for row in rows}
        assert systems == {"insecure", "waffle", "pancake", "taostore"}
        by = {(row["workload"], row["system"]): row for row in rows}
        for workload in ("YCSB-A", "YCSB-C"):
            assert by[(workload, "insecure")]["throughput_ops"] > \
                by[(workload, "waffle")]["throughput_ops"]
            assert by[(workload, "waffle")]["throughput_ops"] > \
                by[(workload, "pancake")]["throughput_ops"]
            assert by[(workload, "pancake")]["throughput_ops"] > \
                by[(workload, "taostore")]["throughput_ops"]

    def test_fig2c_peaks_at_four_cores(self):
        rows = exp.fig2c_cores(n=TINY, rounds=15, cores=(1, 4, 8))
        by_cores = {row["cores"]: row["throughput_ops"] for row in rows}
        assert by_cores[4] > by_cores[1]
        assert by_cores[4] > by_cores[8]

    def test_fig2d_declines_with_cache(self):
        rows = exp.fig2d_cache(n=TINY, rounds=15, fractions=(0.01, 0.32))
        assert rows[0]["throughput_ops"] > rows[-1]["throughput_ops"]
        assert rows[-1]["hit_rate"] > rows[0]["hit_rate"]


class TestFigure3:
    def test_fig3a_flat_beyond_small_batches(self):
        rows = exp.fig3a_batch_size(n=TINY, rounds=15,
                                    batch_sizes=(10, 40, 80))
        assert rows[0]["throughput_ops"] < rows[1]["throughput_ops"]
        # beyond the small-B knee the curve flattens (within 25%)
        assert rows[2]["throughput_ops"] == pytest.approx(
            rows[1]["throughput_ops"], rel=0.25)

    def test_fig3b_throughput_grows_with_r(self):
        rows = exp.fig3b_real_fraction(n=TINY, rounds=15,
                                       fractions=(0.1, 0.4, 0.79))
        values = [row["throughput_ops"] for row in rows]
        assert values == sorted(values)
        assert values[-1] / values[0] > 3  # paper: 5.8x from 10% to 80%

    def test_fig3c_throughput_grows_with_fd(self):
        rows = exp.fig3c_fake_dummy(n=TINY, rounds=15,
                                    fractions=(0.1, 0.5))
        assert rows[-1]["throughput_ops"] > rows[0]["throughput_ops"]

    def test_fig3d_flat_in_d(self):
        rows = exp.fig3d_num_dummies(n=TINY, rounds=15,
                                     fractions=(0.2, 1.0))
        assert rows[-1]["throughput_ops"] == pytest.approx(
            rows[0]["throughput_ops"], rel=0.1)


class TestTable2AndFigure4:
    def test_table2_bounds_hold(self):
        rows = exp.table2_security_levels(n=TINY, rounds=120)
        assert len(rows) == 6
        for row in rows:
            if row["alpha_observed"] is not None:
                assert row["alpha_observed"] <= row["alpha_effective"]
            if row["beta_observed"] is not None:
                assert row["beta_observed"] >= row["beta_theory"]

    def test_table2_throughput_ordering(self):
        rows = exp.table2_security_levels(n=TINY, rounds=120)
        by_level = {}
        for row in rows:
            by_level.setdefault(row["level"], []).append(
                row["throughput_ops"])
        assert max(by_level["high"]) < min(by_level["medium"])
        assert max(by_level["medium"]) < min(by_level["low"])

    def test_table2_paper_n_columns_pinned(self):
        rows = exp.table2_security_levels(n=TINY, rounds=60,
                                          levels=(SecurityLevel.HIGH,))
        assert rows[0]["alpha_theory_paper_n"] == 165
        assert rows[0]["beta_theory_paper_n"] == 161

    def test_fig4_histograms_similar_across_distributions(self):
        out = exp.fig4_alpha_histograms(n=TINY, rounds=150)
        for level in ("high", "medium"):
            comparison = out["comparisons"][level]
            assert comparison.differing_fraction < 0.30
            assert out["histograms"][level]["skewed"]
            assert out["histograms"][level]["uniform"]


class TestFigure5And6:
    def test_fig5_low_r_more_oblivious(self):
        rows = exp.fig5_correlated(n=200, requests=8000)
        by_r = {row["r_pct"]: row for row in rows}
        assert by_r[20]["differing_fraction"] <= \
            by_r[40]["differing_fraction"] + 0.02
        assert by_r[40]["throughput_ops"] > by_r[20]["throughput_ops"]

    def test_fig6_alpha_throughput_tradeoff(self):
        rows = exp.fig6_tradeoff(n=TINY, rounds=10)
        assert len(rows) >= 6
        # Most secure (lowest alpha) must be slower than least secure.
        assert rows[0]["throughput_ops"] < rows[-1]["throughput_ops"]


class TestAblation:
    def test_fake_policy_ablation(self):
        # The run must outlast the least-recent policy's alpha bound for
        # the two policies to separate.
        out = exp.ablation_fake_policy(n=1024, rounds=700, seed=3)
        assert out["least_recent"]["max_alpha"] <= \
            out["least_recent"]["bound"]
        assert out["uniform"]["max_alpha"] > out["least_recent"]["max_alpha"]


class TestLowSecurityDistinguisher:
    def test_low_leaks_medium_does_not(self):
        """Table 2's 'not oblivious' claim for the low preset: still-
        unread initialization ids distinguish the input distribution at
        low security, and do not at medium security."""
        out = exp.low_security_distinguisher(n=2048, rounds=100)
        assert out["low"]["gap"] > 20
        assert out["medium"]["gap"] <= 3
