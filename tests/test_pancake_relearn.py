"""Tests for Pancake's drift detection and re-smoothing — measuring the
offline-obliviousness limitation the paper criticizes."""

from collections import Counter

import numpy as np
import pytest

from repro.baselines.pancake import PancakeProxy
from repro.baselines.pancake.relearn import (
    DistributionEstimator,
    DriftDetector,
    resmooth,
)
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation, TraceRequest


def zipf_pi(n, theta=0.99):
    weights = np.arange(1, n + 1, dtype=float) ** (-theta)
    return weights / weights.sum()


class TestDistributionEstimator:
    def test_converges_to_true_distribution(self):
        keys = [f"k{i}" for i in range(10)]
        estimator = DistributionEstimator(keys, half_life=500)
        rng = np.random.default_rng(1)
        pi = zipf_pi(10)
        for index in rng.choice(10, size=8000, p=pi):
            estimator.observe(keys[int(index)])
        estimate = estimator.estimate()
        assert np.abs(estimate - pi).max() < 0.05

    def test_adapts_after_shift(self):
        keys = [f"k{i}" for i in range(10)]
        estimator = DistributionEstimator(keys, half_life=300)
        for _ in range(3000):
            estimator.observe("k0")
        for _ in range(3000):
            estimator.observe("k9")
        estimate = estimator.estimate()
        assert estimate[9] > 0.8

    def test_invalid_half_life(self):
        with pytest.raises(ConfigurationError):
            DistributionEstimator(["a"], half_life=0)


class TestDriftDetector:
    def test_no_drift_under_assumed_distribution(self):
        n = 20
        pi = zipf_pi(n)
        detector = DriftDetector(pi, window=1500)
        rng = np.random.default_rng(2)
        fired = any(detector.observe(int(i))
                    for i in rng.choice(n, size=3000, p=pi))
        assert not fired

    def test_detects_inverted_distribution(self):
        n = 20
        pi = zipf_pi(n)
        detector = DriftDetector(pi, window=1500)
        rng = np.random.default_rng(3)
        inverted = pi[::-1]
        fired = any(detector.observe(int(i))
                    for i in rng.choice(n, size=3000, p=inverted))
        assert fired


class TestResmoothing:
    def _uniformity_cv(self, records, since_seq: int) -> float:
        counts = Counter(r.storage_id for r in records
                         if r.op == "read" and r.seq >= since_seq)
        values = np.array(list(counts.values()), float)
        return float(values.std() / values.mean())

    def test_drift_breaks_uniformity_resmooth_restores_it(self):
        """The paper's offline-obliviousness critique, quantified: under
        a shifted real distribution the ciphertext access frequencies
        skew; after re-learning and re-smoothing they are uniform
        again."""
        n = 30
        keys = [f"k{i:04d}" for i in range(n)]
        items = {key: b"v" for key in keys}
        assumed = zipf_pi(n)
        recorder = RecordingStore(RedisSim())
        proxy = PancakeProxy(keys, dict(items), assumed, recorder,
                             batch_size=10, seed=4,
                             keychain=KeyChain.from_seed(4))
        rng = np.random.default_rng(5)

        # Phase 1: reality = inverted distribution (drifted).
        drifted = assumed[::-1].copy()
        start = len(recorder.records)
        for index in rng.choice(n, size=4000, p=drifted):
            proxy.submit(TraceRequest(Operation.READ, keys[int(index)]))
        while proxy.pending():
            proxy.process_batch()
        cv_drifted = self._uniformity_cv(recorder.records, start)

        # Re-learn and re-smooth.
        estimator = DistributionEstimator(keys, half_life=1000)
        for index in rng.choice(n, size=4000, p=drifted):
            estimator.observe(keys[int(index)])
        recorder2 = RecordingStore(RedisSim())
        fresh = resmooth(proxy, estimator.estimate(), store=recorder2,
                         seed=6)

        # Phase 2: same drifted reality against the re-smoothed layout.
        start2 = len(recorder2.records)
        for index in rng.choice(n, size=4000, p=drifted):
            fresh.submit(TraceRequest(Operation.READ, keys[int(index)]))
        while fresh.pending():
            fresh.process_batch()
        cv_fresh = self._uniformity_cv(recorder2.records, start2)

        assert cv_drifted > 1.5 * cv_fresh
        assert cv_fresh < 0.5

    def test_resmooth_preserves_values(self):
        n = 12
        keys = [f"k{i:04d}" for i in range(n)]
        items = {key: b"val-" + key.encode() for key in keys}
        proxy = PancakeProxy(keys, dict(items), zipf_pi(n), RedisSim(),
                             batch_size=6, seed=7,
                             keychain=KeyChain.from_seed(7))
        proxy.execute(TraceRequest(Operation.WRITE, keys[3], b"UPDATED"))
        fresh = resmooth(proxy, np.full(n, 1.0 / n), seed=8)
        assert fresh.execute(TraceRequest(Operation.READ, keys[3])) == \
            b"UPDATED"
        assert fresh.execute(TraceRequest(Operation.READ, keys[5])) == \
            items[keys[5]]
