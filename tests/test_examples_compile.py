"""Every example script must at least compile and import-resolve.

Full example runs are exercised manually (they take seconds to a
minute); this keeps them from bit-rotting silently.
"""

import ast
import importlib
import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"),
                       doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every top-level `import repro...` target must exist."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_expected_example_set():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "ycsb_comparison.py", "security_analysis.py",
            "correlated_queries.py", "parameter_tuning.py",
            "relational_multimap.py", "fault_tolerance.py",
            "networked_deployment.py"} <= names


def test_examples_have_docstrings_and_main():
    for path in EXAMPLES:
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        names = {node.name for node in tree.body
                 if isinstance(node, ast.FunctionDef)}
        assert "main" in names, f"{path.name} lacks main()"


import subprocess
import sys


@pytest.mark.parametrize("script", ["quickstart.py",
                                    "relational_multimap.py"])
def test_fast_examples_run_end_to_end(script):
    """The two fastest examples actually execute (the rest are exercised
    manually; all are compile-checked above)."""
    path = pathlib.Path(__file__).parent.parent / "examples" / script
    result = subprocess.run([sys.executable, str(path)],
                            capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
