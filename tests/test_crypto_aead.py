"""Unit and property tests for the authenticated cipher."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aead import AuthenticatedCipher
from repro.errors import IntegrityError


@pytest.fixture
def cipher() -> AuthenticatedCipher:
    return AuthenticatedCipher(enc_key=b"enc-key-16byte!!", mac_key=b"mac-key-16byte!!")


class TestAeadBasics:
    def test_roundtrip(self, cipher):
        assert cipher.decrypt(cipher.encrypt(b"hello world")) == b"hello world"

    def test_empty_plaintext(self, cipher):
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_randomized_ciphertexts(self, cipher):
        # Re-encrypting a value must produce a fresh, unlinkable blob —
        # Waffle writes evicted objects back re-encrypted.
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_length_depends_only_on_plaintext_length(self, cipher):
        a = cipher.encrypt(b"a" * 100)
        b = cipher.encrypt(b"b" * 100)
        assert len(a) == len(b)
        assert len(a) == 100 + cipher.ciphertext_overhead()

    def test_tamper_detection_body(self, cipher):
        blob = bytearray(cipher.encrypt(b"sensitive"))
        blob[len(blob) // 2] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(blob))

    def test_tamper_detection_tag(self, cipher):
        blob = bytearray(cipher.encrypt(b"sensitive"))
        blob[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(blob))

    def test_truncated_blob_rejected(self, cipher):
        with pytest.raises(IntegrityError):
            cipher.decrypt(b"short")

    def test_equal_keys_rejected(self):
        with pytest.raises(ValueError):
            AuthenticatedCipher(enc_key=b"same", mac_key=b"same")

    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            AuthenticatedCipher(enc_key=b"", mac_key=b"mac")

    def test_cross_cipher_rejection(self, cipher):
        other = AuthenticatedCipher(enc_key=b"other-enc", mac_key=b"other-mac")
        with pytest.raises(IntegrityError):
            other.decrypt(cipher.encrypt(b"data"))


class TestAeadBatched:
    def test_encrypt_many_empty_batch(self, cipher):
        assert cipher.encrypt_many([]) == []
        assert cipher.decrypt_many([]) == []

    def test_decrypt_many_rejects_short_blob(self, cipher):
        with pytest.raises(IntegrityError):
            cipher.decrypt_many([cipher.encrypt(b"ok"), b"short"])

    def test_decrypt_many_rejects_tampered_member(self, cipher):
        blobs = cipher.encrypt_many([b"a" * 64, b"b" * 64, b"c" * 64])
        blobs[1] = blobs[1][:-1] + bytes([blobs[1][-1] ^ 0x01])
        with pytest.raises(IntegrityError):
            cipher.decrypt_many(blobs)


class TestAeadProperties:
    @given(st.binary(max_size=4096))
    def test_roundtrip_any_bytes(self, plaintext):
        cipher = AuthenticatedCipher(enc_key=b"p-enc", mac_key=b"p-mac")
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    @given(st.lists(st.binary(max_size=4096), max_size=12))
    def test_batched_roundtrip_random_lengths(self, plaintexts):
        """decrypt_many(encrypt_many(xs)) == xs across lengths 0-4096."""
        cipher = AuthenticatedCipher(enc_key=b"b-enc", mac_key=b"b-mac")
        blobs = cipher.encrypt_many(plaintexts)
        assert cipher.decrypt_many(blobs) == plaintexts
        # Batch and single paths are mutually decryptable.
        for blob, plaintext in zip(blobs, plaintexts):
            assert cipher.decrypt(blob) == plaintext

    @given(st.binary(max_size=4096), st.integers(0, 10**9))
    def test_batched_tamper_detection(self, plaintext, seed):
        """A single flipped bit anywhere in any member fails the batch."""
        cipher = AuthenticatedCipher(enc_key=b"bt-enc", mac_key=b"bt-mac")
        blobs = cipher.encrypt_many([b"other", plaintext])
        tampered = bytearray(blobs[1])
        position = seed % len(tampered)
        tampered[position] ^= 1 << (seed // len(tampered)) % 8
        with pytest.raises(IntegrityError):
            cipher.decrypt_many([blobs[0], bytes(tampered)])

    @given(st.binary(min_size=1, max_size=512), st.integers(0, 10**9))
    def test_single_bit_flip_always_detected(self, plaintext, seed):
        cipher = AuthenticatedCipher(enc_key=b"f-enc", mac_key=b"f-mac")
        blob = bytearray(cipher.encrypt(plaintext))
        position = seed % len(blob)
        bit = 1 << (seed // len(blob)) % 8
        blob[position] ^= bit
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(blob))
