"""Tests for the deadline-driven batch scheduler."""

import pytest

from repro.core.scheduler import BatchScheduler
from repro.errors import ConfigurationError
from repro.sim.clock import SimClock


@pytest.fixture
def scheduler(small_datastore):
    clock = SimClock()
    return BatchScheduler(small_datastore, clock, max_delay_s=0.5), clock


class TestBatchScheduler:
    def test_invalid_delay(self, small_datastore):
        with pytest.raises(ConfigurationError):
            BatchScheduler(small_datastore, SimClock(), max_delay_s=0)

    def test_no_flush_before_deadline(self, scheduler):
        sched, clock = scheduler
        result = sched.get("user00000001")
        clock.advance(0.4)
        assert sched.tick() == 0
        assert not result.done

    def test_timeout_flush_after_deadline(self, scheduler):
        sched, clock = scheduler
        result = sched.get("user00000001")
        clock.advance(0.6)
        assert sched.tick() == 1
        assert result.done
        assert result.value == b"value-1"
        assert sched.timeout_flushes == 1

    def test_full_batch_flushes_without_deadline(self, scheduler):
        sched, clock = scheduler
        r = sched._client.datastore.config.r
        results = [sched.get(f"user{i:08d}") for i in range(r)]
        assert all(result.done for result in results)
        assert sched.full_flushes == 1
        assert sched.tick() == 0  # nothing left pending

    def test_deadline_measured_from_oldest_request(self, scheduler):
        sched, clock = scheduler
        sched.get("user00000001")
        clock.advance(0.3)
        sched.get("user00000002")  # newer request must not reset deadline
        clock.advance(0.3)         # oldest is now 0.6 old
        assert sched.tick() == 2

    def test_writes_flush_too(self, scheduler):
        sched, clock = scheduler
        result = sched.put("user00000003", b"NEW")
        clock.advance(1.0)
        sched.tick()
        assert result.value == b"NEW"

    def test_force_flush(self, scheduler):
        sched, _ = scheduler
        sched.get("user00000001")
        assert sched.buffered == 1
        assert sched.flush() == 1
        assert sched.buffered == 0
