"""Tests for the datastore facade: padding, batch API, inserts/deletes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore, pad_value, unpad_value
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.workloads.trace import Operation
from tests.conftest import make_items


class TestPadding:
    def test_roundtrip(self):
        assert unpad_value(pad_value(b"hello", 64)) == b"hello"

    def test_padded_length_exact(self):
        assert len(pad_value(b"x", 128)) == 128
        assert len(pad_value(b"", 128)) == 128

    def test_oversize_rejected(self):
        with pytest.raises(ConfigurationError):
            pad_value(b"x" * 61, 64)

    def test_boundary_size(self):
        value = b"x" * 60
        assert unpad_value(pad_value(value, 64)) == value

    @given(st.binary(max_size=60))
    def test_roundtrip_any_bytes(self, value):
        assert unpad_value(pad_value(value, 64)) == value

    @given(st.binary(max_size=60), st.binary(max_size=60))
    def test_padded_values_equal_length(self, a, b):
        assert len(pad_value(a, 64)) == len(pad_value(b, 64))


class TestBatchApi:
    def test_values_unpadded_in_responses(self, small_datastore):
        responses = small_datastore.execute_batch(
            [ClientRequest(op=Operation.READ, key="user00000003")]
        )
        assert responses[0].value == b"value-3"

    def test_write_then_read(self, small_datastore):
        small_datastore.execute_batch([
            ClientRequest(op=Operation.WRITE, key="user00000003", value=b"V2"),
        ])
        responses = small_datastore.execute_batch([
            ClientRequest(op=Operation.READ, key="user00000003"),
        ])
        assert responses[0].value == b"V2"

    def test_responses_aligned_with_requests(self, small_datastore):
        batch = [
            ClientRequest(op=Operation.READ, key="user00000001"),
            ClientRequest(op=Operation.WRITE, key="user00000002", value=b"x"),
            ClientRequest(op=Operation.READ, key="user00000001"),
        ]
        responses = small_datastore.execute_batch(batch)
        assert [r.request_id for r in responses] == \
               [r.request_id for r in batch]
        assert responses[0].value == b"value-1"
        assert responses[1].value == b"x"


class TestInsertDelete:
    def make_store(self):
        config = WaffleConfig(n=100, b=16, r=6, f_d=4, d=40, c=20,
                              value_size=64, seed=3)
        return WaffleDatastore(config, make_items(100),
                               keychain=KeyChain.from_seed(4), log_ids=True)

    def run_idle_round(self, store):
        store.execute_batch([])

    def test_insert_becomes_readable(self):
        store = self.make_store()
        store.insert("newcomer0000", b"fresh")
        self.run_idle_round(store)  # the round that consumes the mutation
        responses = store.execute_batch([
            ClientRequest(op=Operation.READ, key="newcomer0000"),
        ])
        assert responses[0].value == b"fresh"

    def test_insert_swaps_dummy_counts(self):
        store = self.make_store()
        d_before = store.proxy.dummy_count
        n_before = store.proxy.real_count
        store.insert("newcomer0000", b"fresh")
        self.run_idle_round(store)
        assert store.proxy.dummy_count == d_before - 1
        assert store.proxy.real_count == n_before + 1

    def test_insert_existing_key_rejected(self):
        store = self.make_store()
        with pytest.raises(ConfigurationError):
            store.insert("user00000001", b"dup")

    def test_delete_removes_key(self):
        store = self.make_store()
        store.delete("user00000005")
        self.run_idle_round(store)
        assert not store.proxy.contains_key("user00000005")

    def test_delete_swaps_in_dummy(self):
        store = self.make_store()
        d_before = store.proxy.dummy_count
        store.delete("user00000005")
        self.run_idle_round(store)
        assert store.proxy.dummy_count == d_before + 1

    def test_delete_unknown_key_rejected(self):
        store = self.make_store()
        with pytest.raises(KeyNotFoundError):
            store.delete("ghost")

    def test_batch_shape_preserved_across_mutations(self):
        """Insert/delete rounds still read exactly B and write exactly B."""
        store = self.make_store()
        config = store.config
        for i in range(4):
            store.insert(f"extra{i:07d}", b"v")
        for i in range(4):
            store.delete(f"user{i:08d}")
        for _ in range(6):
            self.run_idle_round(store)
        for stats in store.proxy.totals.stats_by_round:
            assert stats.server_reads == config.b
            assert stats.server_writes == config.b

    def test_storage_invariants_across_mutations(self):
        from repro.analysis.uniformity import verify_storage_invariants
        store = self.make_store()
        for i in range(3):
            store.insert(f"extra{i:07d}", b"v")
        store.delete("user00000009")
        for _ in range(10):
            self.run_idle_round(store)
        verify_storage_invariants(store.recorder.records)

    def test_current_bounds_track_mutations(self):
        store = self.make_store()
        alpha_before, _ = store.current_bounds()
        for i in range(4):
            store.insert(f"extra{i:07d}", b"v")
        self.run_idle_round(store)
        alpha_after, _ = store.current_bounds()
        assert alpha_after >= alpha_before  # N grew

    def test_insert_without_dummies_rejected(self):
        config = WaffleConfig(n=50, b=10, r=4, f_d=0, d=0, c=10,
                              value_size=64, seed=5)
        store = WaffleDatastore(config, make_items(50))
        with pytest.raises(ConfigurationError):
            store.insert("x" * 8, b"v")

    def test_server_size_property(self):
        store = self.make_store()
        assert store.server_size == (store.config.n - store.config.c
                                     + store.config.d)
