"""Tests for the timing-leakage observatory (repro.analysis.timing)."""

import pytest

from repro.analysis.timing import (
    TimingObserver,
    attach_timing_observer,
    detect_onset,
    estimate_rates,
    load_inference_attack,
    simulate_round_times,
    timing_attack_benchmark,
)
from repro.obs.trace import Tracer
from repro.sim.clock import SimClock
from repro.testing.oracle import check_timing_channel


class TestTimingObserver:
    def test_records_and_summarizes_gaps(self):
        observer = TimingObserver()
        for t in (0.0, 1.0, 3.0, 6.0):
            observer.observe_round(t)
        assert len(observer) == 4
        assert observer.gaps() == [1.0, 2.0, 3.0]
        summary = observer.summary()
        assert summary["rounds"] == 4
        assert summary["mean_gap"] == pytest.approx(2.0)
        assert summary["min_gap"] == 1.0 and summary["max_gap"] == 3.0

    def test_rejects_non_monotone_timestamps(self):
        observer = TimingObserver()
        observer.observe_round(5.0)
        with pytest.raises(ValueError):
            observer.observe_round(4.0)

    def test_empty_summary(self):
        assert TimingObserver().summary() == {"rounds": 0, "gaps": 0}

    def test_attach_stamps_first_access_of_each_round(self):
        tracer = Tracer()
        observer = TimingObserver()
        clock = SimClock()
        callback = attach_timing_observer(tracer, observer,
                                          clock=lambda: clock.now)
        for round_no in (1, 1, 1, 2, 2, 3):
            clock.advance(0.5)
            tracer.event("storage.access", op="read", id="x",
                         round=round_no)
        assert observer.timestamps == [0.5, 2.0, 3.0]
        # Other events never stamp.
        tracer.event("report.emit", lines=1)
        tracer.record_span("round", 0.1)
        assert len(observer) == 3
        tracer.unsubscribe(callback)
        tracer.event("storage.access", op="read", id="y", round=4)
        assert len(observer) == 3


class TestAttacks:
    def test_estimate_rates_inverts_gaps(self):
        rates = estimate_rates([0.0, 0.1, 0.3], r=20)
        assert rates[0] == pytest.approx(200.0)
        assert rates[1] == pytest.approx(100.0)

    def test_estimate_rates_zero_gap_maps_to_zero(self):
        assert estimate_rates([1.0, 1.0], r=20) == [0.0]

    def test_load_attack_recovers_on_fill_load(self):
        rates = [100.0] * 20 + [400.0] * 20
        times = simulate_round_times(rates, r=20, seed=3)
        attack = load_inference_attack(times, rates, r=20)
        assert attack["leakage_score"] > 0.8

    def test_load_attack_blind_on_fixed_schedule(self):
        rates = [100.0] * 20 + [400.0] * 20
        times = simulate_round_times(rates, r=20, seed=3, schedule="fixed")
        attack = load_inference_attack(times, rates, r=20)
        assert attack["leakage_score"] == 0.0

    def test_detect_onset_finds_the_shift(self):
        rates = [100.0] * 24 + [500.0] * 24
        times = simulate_round_times(rates, r=20, seed=11)
        detected = detect_onset(times)
        assert detected is not None
        assert abs(detected - 24) <= 3

    def test_detect_onset_none_on_constant_gaps(self):
        times = [0.1 * i for i in range(32)]
        assert detect_onset(times) is None

    def test_detect_onset_none_on_short_series(self):
        assert detect_onset([0.0, 1.0, 2.0]) is None


class TestSimulation:
    def test_deterministic_per_seed(self):
        rates = [150.0] * 16
        a = simulate_round_times(rates, r=10, seed=4)
        b = simulate_round_times(rates, r=10, seed=4)
        assert a == b
        c = simulate_round_times(rates, r=10, seed=5)
        assert a != c

    def test_fixed_schedule_has_constant_gaps(self):
        rates = [100.0, 400.0, 50.0, 300.0]
        times = simulate_round_times(rates, r=20, seed=1, schedule="fixed",
                                     interval=0.25)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap == pytest.approx(0.25) for gap in gaps)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            simulate_round_times([1.0], r=2, schedule="jittered")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            simulate_round_times([0.0], r=2)


class TestBenchmarkAndOracle:
    def test_benchmark_shape_and_headline(self):
        out = timing_attack_benchmark(rounds=48, seed=5)
        assert out["schema"] == "repro.timing/1"
        assert set(out) >= {"on_fill", "fixed", "leakage_drop",
                            "shaped_leaks_less"}
        assert out["shaped_leaks_less"] is True
        assert out["on_fill"]["leakage_score"] > out["fixed"]["leakage_score"]
        assert out["on_fill"]["onset_detected"] is not None

    def test_oracle_passes_on_real_benchmark(self):
        out = timing_attack_benchmark(rounds=48, seed=9)
        assert check_timing_channel(out) == []

    def test_oracle_flags_shaped_leaking_more(self):
        fake = {"seed": 0,
                "on_fill": {"leakage_score": 0.2},
                "fixed": {"leakage_score": 0.6}}
        violations = check_timing_channel(fake)
        assert {v.kind for v in violations} == {"timing"}
        assert len(violations) == 2  # >= on-fill AND above the ceiling

    def test_oracle_flags_noisy_shaped_schedule(self):
        fake = {"seed": 0,
                "on_fill": {"leakage_score": 0.9},
                "fixed": {"leakage_score": 0.5}}
        (violation,) = check_timing_channel(fake)
        assert violation.kind == "timing"
        assert "ceiling" in violation.detail


@pytest.mark.chaos
class TestTimingChannelSweep:
    """The chaos-suite property: shaping wins across a seed sweep."""

    @pytest.mark.parametrize("seed", range(1, 26))
    def test_shaped_schedule_passes_oracle(self, seed):
        out = timing_attack_benchmark(rounds=64, seed=seed)
        assert check_timing_channel(out) == [], out["fixed"]
