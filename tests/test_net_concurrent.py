"""Concurrency tests for the network substrate."""

import threading

import pytest

from repro.net import RemoteStore, StorageServer
from repro.storage.redis_sim import RedisSim


class TestConcurrentClients:
    def test_parallel_connections_isolated_and_consistent(self):
        """Many client threads with their own connections interleave
        safely: every write lands, no cross-talk."""
        with StorageServer(RedisSim()) as server:
            errors: list[str] = []

            def worker(thread_id: int) -> None:
                try:
                    with RemoteStore(server.address) as store:
                        for step in range(30):
                            key = f"t{thread_id}-k{step}"
                            store.put(key, b"%d:%d" % (thread_id, step))
                            if store.get(key) != b"%d:%d" % (thread_id, step):
                                errors.append(f"{key} mismatch")
                except Exception as error:  # noqa: BLE001
                    errors.append(repr(error))

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert len(server.backend) == 6 * 30

    def test_shared_connection_serializes_safely(self):
        """One RemoteStore shared by threads: the internal lock keeps
        frames from interleaving."""
        with StorageServer(RedisSim()) as server:
            with RemoteStore(server.address) as store:
                errors: list[str] = []

                def worker(thread_id: int) -> None:
                    for step in range(25):
                        key = f"s{thread_id}-{step}"
                        store.put(key, b"x%d" % step)
                        if store.get(key) != b"x%d" % step:
                            errors.append(key)

                threads = [threading.Thread(target=worker, args=(i,))
                           for i in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert errors == []

    def test_pipeline_atomic_under_concurrency(self):
        """Pipelined batches from concurrent clients don't interleave
        mid-pipeline (the server lock covers a whole pipeline)."""
        with StorageServer(RedisSim()) as server:
            results: dict[int, list[bytes]] = {}

            def worker(thread_id: int) -> None:
                with RemoteStore(server.address) as store:
                    items = [(f"p{thread_id}-{i}", b"v%d" % i)
                             for i in range(40)]
                    store.multi_put(items)
                    results[thread_id] = store.multi_get(
                        [key for key, _ in items])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for thread_id, values in results.items():
                assert values == [b"v%d" % i for i in range(40)]
