"""Tests for the online alpha monitor."""

import pytest

from repro.analysis.monitor import AlphaMonitor
from repro.errors import ConfigurationError


class TestAlphaMonitor:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AlphaMonitor(alpha_budget=-1)
        with pytest.raises(ConfigurationError):
            AlphaMonitor(alpha_budget=5, window_rounds=0)

    def test_alpha_computed_per_id(self):
        monitor = AlphaMonitor(alpha_budget=10, window_rounds=100)
        monitor.observe_write("a", 3)
        assert monitor.observe_read("a", 7) == 3

    def test_unknown_read_ignored(self):
        monitor = AlphaMonitor(alpha_budget=10)
        assert monitor.observe_read("ghost", 1) is None

    def test_windows_close_and_report(self):
        monitor = AlphaMonitor(alpha_budget=10, window_rounds=10)
        monitor.observe_write("a", 1)
        monitor.observe_read("a", 4)      # alpha 2
        monitor.observe_write("b", 12)    # forces window [0..9] closed
        reports = monitor.reports
        assert len(reports) == 1
        assert reports[0].max_alpha == 2
        assert reports[0].samples == 1
        assert not reports[0].budget_breached

    def test_budget_breach_on_large_alpha(self):
        monitor = AlphaMonitor(alpha_budget=3, window_rounds=10)
        monitor.observe_write("a", 0)
        monitor.observe_read("a", 9)      # alpha 8 > 3
        monitor.observe_write("x", 20)
        assert monitor.total_breaches >= 1
        assert monitor.reports[0].budget_breached

    def test_breach_on_aging_outstanding_id(self):
        """An id written but never read past the budget is a breach even
        though no alpha sample exists (the low-security failure mode)."""
        monitor = AlphaMonitor(alpha_budget=5, window_rounds=10)
        monitor.observe_write("stuck", 0)
        monitor.observe_write("x", 25)    # closes windows; 'stuck' ages
        assert any(r.budget_breached and r.oldest_outstanding_age > 5
                   for r in monitor.reports)

    def test_rounds_must_be_monotone(self):
        monitor = AlphaMonitor(alpha_budget=5)
        monitor.observe_write("a", 10)
        with pytest.raises(ConfigurationError):
            monitor.observe_write("b", 5)

    def test_feed_records_matches_offline_measurement(self):
        """The online monitor agrees with the offline measure_alpha."""
        import random
        from repro.analysis.uniformity import measure_alpha
        from repro.core.batch import ClientRequest
        from repro.core.config import WaffleConfig
        from repro.core.datastore import WaffleDatastore
        from repro.crypto.keys import KeyChain
        from repro.workloads.trace import Operation
        from tests.conftest import make_items

        n = 150
        config = WaffleConfig(n=n, b=16, r=6, f_d=4, d=50, c=20,
                              value_size=64, seed=41)
        datastore = WaffleDatastore(config, make_items(n),
                                    keychain=KeyChain.from_seed(42))
        rng = random.Random(43)
        for _ in range(80):
            datastore.execute_batch([
                ClientRequest(op=Operation.READ,
                              key=f"user{rng.randrange(n):08d}")
                for _ in range(config.r)
            ])
        records = datastore.recorder.records
        monitor = AlphaMonitor(alpha_budget=config.alpha_bound_effective(),
                               window_rounds=20)
        monitor.feed_records(records)
        offline = measure_alpha(records)
        online_max = max((r.max_alpha for r in monitor.reports
                          if r.max_alpha is not None), default=None)
        # The monitor's windows cover all closed windows; the offline
        # measurement also sees the final partial window, so online max
        # is a lower bound that must not exceed the offline max.
        assert online_max is not None
        assert online_max <= offline.max_alpha
        assert monitor.total_breaches == 0
        assert monitor.outstanding_ids == offline.unread_ids
