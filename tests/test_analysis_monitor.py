"""Tests for the online alpha monitor."""

import pytest

from repro.analysis.monitor import AlphaMonitor
from repro.errors import ConfigurationError


class TestAlphaMonitor:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AlphaMonitor(alpha_budget=-1)
        with pytest.raises(ConfigurationError):
            AlphaMonitor(alpha_budget=5, window_rounds=0)

    def test_alpha_computed_per_id(self):
        monitor = AlphaMonitor(alpha_budget=10, window_rounds=100)
        monitor.observe_write("a", 3)
        assert monitor.observe_read("a", 7) == 3

    def test_unknown_read_ignored(self):
        monitor = AlphaMonitor(alpha_budget=10)
        assert monitor.observe_read("ghost", 1) is None

    def test_windows_close_and_report(self):
        monitor = AlphaMonitor(alpha_budget=10, window_rounds=10)
        monitor.observe_write("a", 1)
        monitor.observe_read("a", 4)      # alpha 2
        monitor.observe_write("b", 12)    # forces window [0..9] closed
        reports = monitor.reports
        assert len(reports) == 1
        assert reports[0].max_alpha == 2
        assert reports[0].samples == 1
        assert not reports[0].budget_breached

    def test_budget_breach_on_large_alpha(self):
        monitor = AlphaMonitor(alpha_budget=3, window_rounds=10)
        monitor.observe_write("a", 0)
        monitor.observe_read("a", 9)      # alpha 8 > 3
        monitor.observe_write("x", 20)
        assert monitor.total_breaches >= 1
        assert monitor.reports[0].budget_breached

    def test_breach_on_aging_outstanding_id(self):
        """An id written but never read past the budget is a breach even
        though no alpha sample exists (the low-security failure mode)."""
        monitor = AlphaMonitor(alpha_budget=5, window_rounds=10)
        monitor.observe_write("stuck", 0)
        monitor.observe_write("x", 25)    # closes windows; 'stuck' ages
        assert any(r.budget_breached and r.oldest_outstanding_age > 5
                   for r in monitor.reports)

    def test_rounds_must_be_monotone(self):
        monitor = AlphaMonitor(alpha_budget=5)
        monitor.observe_write("a", 10)
        with pytest.raises(ConfigurationError):
            monitor.observe_write("b", 5)

    def test_report_emitted_exactly_at_window_end_round(self):
        """The window [0..window_rounds-1] closes on the first event at
        round window_rounds, not one round early or late."""
        monitor = AlphaMonitor(alpha_budget=10, window_rounds=10)
        monitor.observe_write("a", 0)
        monitor.observe_write("b", 9)   # last round inside the window
        assert monitor.reports == []    # not closed yet
        monitor.observe_read("b", 10)   # first event past the boundary
        reports = monitor.reports
        assert len(reports) == 1
        assert reports[0].window_start_round == 0
        assert reports[0].window_end_round == 9
        # The read at round 10 belongs to the *next* window.
        assert reports[0].samples == 0

    def test_breach_latches_across_windows(self):
        """total_breaches accumulates; clean later windows never reset
        an earlier window's breach."""
        monitor = AlphaMonitor(alpha_budget=2, window_rounds=5)
        monitor.observe_write("a", 0)
        monitor.observe_read("a", 4)    # alpha 3 > 2: breach in window 0
        monitor.observe_write("b", 5)
        monitor.observe_read("b", 7)    # alpha 1: clean window 1
        monitor.observe_write("c", 20)  # closes windows 1-3
        reports = monitor.reports
        assert reports[0].budget_breached
        assert any(not r.budget_breached for r in reports[1:])
        assert monitor.total_breaches == \
            sum(1 for r in reports if r.budget_breached)
        assert monitor.total_breaches >= 1

    def test_outstanding_aging_under_interleaved_writes(self):
        """A never-read id keeps aging across windows even while fresh
        write/read pairs churn through, and flips the breach flag once
        its age exceeds the budget."""
        monitor = AlphaMonitor(alpha_budget=4, window_rounds=5)
        monitor.observe_write("old", 0)
        for r in range(1, 15):
            monitor.observe_write(f"w{r}", r)
            if r >= 2:
                monitor.observe_read(f"w{r - 1}", r)   # alpha 0 each
        # Window [0..4] closes with 'old' aged exactly 4: no breach yet.
        first = monitor.reports[0]
        assert first.oldest_outstanding_age == 4
        assert not first.budget_breached
        aged = [r for r in monitor.reports if r.oldest_outstanding_age > 4]
        assert aged and all(r.budget_breached for r in aged)
        assert monitor.outstanding_ids >= 1  # 'old' never read

    def test_attached_monitor_matches_offline_alpha(self):
        """AlphaMonitor fed live from the tracing stream computes the
        same alpha samples as the offline batch measurement."""
        import random
        from repro import obs
        from repro.analysis.monitor import attach_monitor
        from repro.analysis.uniformity import measure_alpha
        from repro.core.batch import ClientRequest
        from repro.core.config import WaffleConfig
        from repro.core.datastore import WaffleDatastore
        from repro.crypto.keys import KeyChain
        from repro.workloads.trace import Operation
        from tests.conftest import make_items

        class CollectingMonitor(AlphaMonitor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.alphas = []

            def observe_read(self, storage_id, round_index):
                alpha = super().observe_read(storage_id, round_index)
                if alpha is not None:
                    self.alphas.append(alpha)
                return alpha

        n = 120
        config = WaffleConfig(n=n, b=16, r=6, f_d=4, d=40, c=16,
                              value_size=64, seed=21)
        with obs.capture() as handle:
            monitor = CollectingMonitor(alpha_budget=10**6,
                                        window_rounds=10)
            # Attached before the datastore exists so the live stream
            # includes initialization writes, like the offline records.
            attach_monitor(handle.tracer, monitor)
            datastore = WaffleDatastore(config, make_items(n),
                                        keychain=KeyChain.from_seed(22))
            rng = random.Random(23)
            for _ in range(40):
                datastore.execute_batch([
                    ClientRequest(op=Operation.READ,
                                  key=f"user{rng.randrange(n):08d}")
                    for _ in range(config.r)
                ])
        offline = measure_alpha(datastore.recorder.records)
        assert sorted(monitor.alphas) == sorted(offline.alphas)
        assert monitor.outstanding_ids == offline.unread_ids

    def test_feed_records_matches_offline_measurement(self):
        """The online monitor agrees with the offline measure_alpha."""
        import random
        from repro.analysis.uniformity import measure_alpha
        from repro.core.batch import ClientRequest
        from repro.core.config import WaffleConfig
        from repro.core.datastore import WaffleDatastore
        from repro.crypto.keys import KeyChain
        from repro.workloads.trace import Operation
        from tests.conftest import make_items

        n = 150
        config = WaffleConfig(n=n, b=16, r=6, f_d=4, d=50, c=20,
                              value_size=64, seed=41)
        datastore = WaffleDatastore(config, make_items(n),
                                    keychain=KeyChain.from_seed(42))
        rng = random.Random(43)
        for _ in range(80):
            datastore.execute_batch([
                ClientRequest(op=Operation.READ,
                              key=f"user{rng.randrange(n):08d}")
                for _ in range(config.r)
            ])
        records = datastore.recorder.records
        monitor = AlphaMonitor(alpha_budget=config.alpha_bound_effective(),
                               window_rounds=20)
        monitor.feed_records(records)
        offline = measure_alpha(records)
        online_max = max((r.max_alpha for r in monitor.reports
                          if r.max_alpha is not None), default=None)
        # The monitor's windows cover all closed windows; the offline
        # measurement also sees the final partial window, so online max
        # is a lower bound that must not exceed the offline max.
        assert online_max is not None
        assert online_max <= offline.max_alpha
        assert monitor.total_breaches == 0
        assert monitor.outstanding_ids == offline.unread_ids
