"""Public-surface sanity: exports, error hierarchy, version."""

import importlib

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", [
        "ConfigurationError", "StorageError", "KeyNotFoundError",
        "DuplicateKeyError", "IntegrityError", "ProtocolError",
        "ClosedError", "OverloadedError",
    ])
    def test_all_errors_derive_from_repro_error(self, name):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)

    def test_key_errors_carry_key(self):
        error = errors.KeyNotFoundError("k-123")
        assert error.key == "k-123"
        assert "k-123" in str(error)
        dup = errors.DuplicateKeyError("k-456")
        assert dup.key == "k-456"

    def test_storage_errors_are_storage_errors(self):
        assert issubclass(errors.KeyNotFoundError, errors.StorageError)
        assert issubclass(errors.DuplicateKeyError, errors.StorageError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.crypto", "repro.ds", "repro.storage",
        "repro.sim", "repro.workloads", "repro.baselines",
        "repro.analysis", "repro.bench", "repro.ha", "repro.scaleout",
        "repro.net", "repro.cli", "repro.serve", "repro.serve.sharded",
        "repro.testing",
    ])
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name}"

    def test_every_public_module_has_docstring(self):
        import pathlib
        root = pathlib.Path(repro.__file__).parent
        for path in root.rglob("*.py"):
            source = path.read_text()
            stripped = source.lstrip()
            assert stripped.startswith('"""') or stripped.startswith("'''"), \
                f"{path.relative_to(root)} lacks a module docstring"
