"""Tests for the insecure baseline."""

import pytest

from repro.baselines.insecure import InsecureStore
from repro.errors import KeyNotFoundError
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation, TraceRequest


class TestInsecureStore:
    def test_loads_initial_items(self):
        store = InsecureStore(RedisSim(), {"a": b"1", "b": b"2"})
        assert store.get("a") == b"1"

    def test_put_get_delete(self):
        store = InsecureStore(RedisSim(), {})
        store.put("k", b"v")
        assert store.get("k") == b"v"
        store.delete("k")
        with pytest.raises(KeyNotFoundError):
            store.get("k")

    def test_execute_trace_requests(self):
        store = InsecureStore(RedisSim(), {"a": b"1"})
        assert store.execute(TraceRequest(Operation.READ, "a")) == b"1"
        assert store.execute(TraceRequest(Operation.WRITE, "a", b"2")) is None
        assert store.get("a") == b"2"

    def test_operations_counted(self):
        store = InsecureStore(RedisSim(), {"a": b"1"})
        store.get("a")
        store.put("b", b"2")
        store.delete("b")
        assert store.operations == 3

    def test_access_pattern_fully_exposed(self):
        """The whole point of the baseline: plaintext keys hit the wire."""
        recorder = RecordingStore(RedisSim())
        store = InsecureStore(recorder, {"secret-key": b"1"})
        store.get("secret-key")
        assert any(r.storage_id == "secret-key" and r.op == "read"
                   for r in recorder.records)
