"""Batched-operation routing: ordering and stability guarantees.

The batch round's obliviousness proof assumes the storage layer is a
plain ordered KV pipeline: ``multi_get`` returns values positionally
aligned with its input, ``commit_round`` applies deletes before writes,
and routing is a pure function of the key.  These tests pin those
contracts on the composite backends (:class:`ShardedStore`) and on the
scale-out request router (:class:`PartitionedWaffle`), where grouping
by shard/partition makes ordering bugs easiest to introduce.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.errors import KeyNotFoundError
from repro.scaleout import PartitionedWaffle
from repro.storage.memory import InMemoryStore
from repro.storage.redis_sim import RedisSim
from repro.storage.sharded import ShardedStore
from repro.workloads.trace import Operation


def build_sharded(shards=4, write_once=False):
    return ShardedStore([RedisSim(write_once=write_once)
                         for _ in range(shards)])


def spanning_keys(store, count_per_shard=3):
    """Keys chosen so every shard owns at least ``count_per_shard``."""
    buckets: dict[int, list[str]] = {}
    i = 0
    while min((len(b) for b in buckets.values()), default=0) \
            < count_per_shard or len(buckets) < store.shard_count:
        key = f"span{i:06d}"
        buckets.setdefault(store.shard_index(key), []).append(key)
        i += 1
    # Interleave shards round-robin so consecutive positions in the
    # batch land on different shards — the order-restoration stressor.
    out = []
    for depth in range(count_per_shard):
        for index in sorted(buckets):
            out.append(buckets[index][depth])
    return out


class TestShardedBatching:
    def test_multi_get_restores_request_order(self):
        store = build_sharded()
        keys = spanning_keys(store)
        store.multi_put([(k, f"v-{k}".encode()) for k in keys])
        shuffled = list(keys)
        random.Random(0).shuffle(shuffled)
        values = store.multi_get(shuffled)
        assert values == [f"v-{k}".encode() for k in shuffled]

    def test_multi_get_duplicate_keys_in_one_batch(self):
        store = build_sharded()
        keys = spanning_keys(store, count_per_shard=1)
        store.multi_put([(k, k.encode()) for k in keys])
        batch = keys + keys[::-1]
        assert store.multi_get(batch) == [k.encode() for k in batch]

    def test_multi_delete_routes_to_owning_shard(self):
        store = build_sharded()
        keys = spanning_keys(store)
        store.multi_put([(k, b"x") for k in keys])
        store.multi_delete(keys[: len(keys) // 2])
        for key in keys[: len(keys) // 2]:
            assert key not in store
        for key in keys[len(keys) // 2:]:
            assert key in store
        assert len(store) == len(keys) - len(keys) // 2

    def test_commit_round_deletes_before_writes(self):
        # Waffle rewrites read-once ids under fresh timestamps in the
        # same round; on a write-once server the delete must land first.
        store = build_sharded(write_once=True)
        keys = spanning_keys(store)
        store.multi_put([(k, b"old") for k in keys])
        store.commit_round(keys, [(k, b"new") for k in keys])
        assert store.multi_get(keys) == [b"new"] * len(keys)

    def test_commit_round_missing_delete_surfaces(self):
        store = build_sharded()
        with pytest.raises(KeyNotFoundError):
            store.commit_round(["never-written"], [])

    def test_shard_index_stable_across_instances(self):
        # Placement must be derivable from the key alone: a restarted
        # proxy (or a second client) building a fresh ShardedStore over
        # the same shard machines has to find every object where the
        # first instance put it.
        first = build_sharded(shards=5)
        second = ShardedStore([InMemoryStore() for _ in range(5)])
        keys = [f"k{i:05d}" for i in range(500)]
        assert [first.shard_index(k) for k in keys] \
            == [second.shard_index(k) for k in keys]

    def test_shard_index_depends_on_shard_count(self):
        store3 = build_sharded(shards=3)
        store7 = build_sharded(shards=7)
        keys = [f"k{i:05d}" for i in range(500)]
        assert any(store3.shard_index(k) != store7.shard_index(k)
                   for k in keys)


PER_PARTITION = 60
PARTITIONS = 3
CONFIG = WaffleConfig(n=PER_PARTITION, b=12, r=4, f_d=3, d=24, c=16,
                      value_size=48, seed=11)


def build_partitioned():
    candidates = (f"pkey{i:08d}" for i in range(100_000))
    keys = PartitionedWaffle.plan_partitions(candidates, PER_PARTITION,
                                             PARTITIONS, master_seed=4)
    items = {key: b"val-" + key.encode() for key in keys}
    store = PartitionedWaffle(CONFIG, items, PARTITIONS, master_seed=4)
    return store, keys


class TestPartitionedBatchOrdering:
    def test_interleaved_partitions_return_in_request_order(self):
        store, _ = build_partitioned()
        by_partition: dict[int, list[str]] = {}
        for datastore in store.stores:
            for key in datastore.proxy.cache.keys():
                by_partition.setdefault(store.partition_of(key),
                                        []).append(key)
        # Alternate partitions position by position.
        sample = []
        for depth in range(3):
            for index in range(PARTITIONS):
                sample.append(by_partition[index][depth])
        responses = store.execute_batch([
            ClientRequest(op=Operation.READ, key=key) for key in sample])
        assert [r.key for r in responses] == sample
        assert [r.value for r in responses] \
            == [b"val-" + k.encode() for k in sample]

    def test_share_larger_than_r_chunks_into_rounds(self):
        store, keys = build_partitioned()
        target = store.partition_of(keys[0])
        owned = [k for k in keys if store.partition_of(k) == target]
        sample = owned[: CONFIG.r * 2 + 1]  # forces three rounds
        assert len(sample) > CONFIG.r
        before = store.rounds_per_partition()[target]
        responses = store.execute_batch([
            ClientRequest(op=Operation.READ, key=key) for key in sample])
        assert [r.key for r in responses] == sample
        assert store.rounds_per_partition()[target] == before + 3

    def test_mixed_read_write_batch_read_your_writes(self):
        store, keys = build_partitioned()
        sample = [k for k in keys][:6]
        batch, expected = [], []
        for i, key in enumerate(sample):
            value = b"new-%02d" % i
            batch.append(ClientRequest(op=Operation.WRITE, key=key,
                                       value=value))
            expected.append(value)
            batch.append(ClientRequest(op=Operation.READ, key=key))
            expected.append(value)
        responses = store.execute_batch(batch)
        assert [r.value for r in responses] == expected

    def test_routing_matches_fresh_router_instance(self):
        store, keys = build_partitioned()
        rebuilt, _ = build_partitioned()
        assert [store.partition_of(k) for k in keys] \
            == [rebuilt.partition_of(k) for k in keys]
        other = PartitionedWaffle.__new__(PartitionedWaffle)
        other.partitions = PARTITIONS
        other._route_key = store._route_key
        other._hasher_proto = hashlib.blake2s(key=store._route_key,
                                              digest_size=8)
        assert [other.partition_of(k) for k in keys] \
            == [store.partition_of(k) for k in keys]
