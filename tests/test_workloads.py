"""Tests for the workload substrate: Zipf, YCSB, correlated clickstream."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.workloads import (
    ClickstreamModel,
    CorrelatedWorkload,
    Operation,
    TraceRequest,
    UniformSampler,
    YcsbWorkload,
    ZipfSampler,
    replay,
    workload_a,
    workload_b,
    workload_c,
)
from repro.workloads.ycsb import key_name


class TestTraceTypes:
    def test_write_requires_value(self):
        with pytest.raises(ValueError):
            TraceRequest(Operation.WRITE, "k")

    def test_read_forbids_value(self):
        with pytest.raises(ValueError):
            TraceRequest(Operation.READ, "k", b"v")

    def test_replay_feeds_every_request(self):
        seen = []
        trace = [TraceRequest(Operation.READ, f"k{i}") for i in range(5)]
        count = replay(trace, seen.append)
        assert count == 5
        assert [r.key for r in seen] == [f"k{i}" for i in range(5)]


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, theta=0.99, scrambled=False, seed=1)
        total = sum(sampler.probability(rank) for rank in range(100))
        assert total == pytest.approx(1.0)

    def test_rank_probabilities_decrease(self):
        sampler = ZipfSampler(100, theta=0.99, scrambled=False, seed=1)
        probs = [sampler.probability(rank) for rank in range(100)]
        assert probs == sorted(probs, reverse=True)

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(50, theta=0.0, scrambled=False, seed=1)
        assert sampler.probability(0) == pytest.approx(1 / 50)
        assert sampler.probability(49) == pytest.approx(1 / 50)

    def test_empirical_matches_theoretical(self):
        sampler = ZipfSampler(20, theta=0.99, scrambled=False, seed=2)
        counts = Counter(sampler.sample() for _ in range(40_000))
        for rank in range(5):
            expected = sampler.probability(rank)
            observed = counts[rank] / 40_000
            assert observed == pytest.approx(expected, rel=0.15)

    def test_scramble_spreads_popularity(self):
        sampler = ZipfSampler(1000, theta=0.99, scrambled=True, seed=3)
        top = max(range(1000), key=lambda i: sampler.probabilities_by_index()[i])
        # The hottest key is (almost surely) not index 0 after scrambling.
        counts = Counter(sampler.sample() for _ in range(2000))
        assert counts.most_common(1)[0][0] == top

    def test_probabilities_by_index_sum(self):
        sampler = ZipfSampler(64, theta=0.8, seed=4)
        assert sampler.probabilities_by_index().sum() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=-1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(30, seed=5)
        assert all(0 <= sampler.sample() < 30 for _ in range(1000))

    def test_reproducible_with_seed(self):
        a = [ZipfSampler(100, seed=6).sample() for _ in range(50)]
        b = [ZipfSampler(100, seed=6).sample() for _ in range(50)]
        assert a == b


class TestUniformSampler:
    def test_range_and_probability(self):
        sampler = UniformSampler(10, seed=1)
        assert all(0 <= sampler.sample() < 10 for _ in range(200))
        assert sampler.probability(3) == pytest.approx(0.1)

    def test_roughly_uniform(self):
        sampler = UniformSampler(10, seed=2)
        counts = Counter(sampler.sample() for _ in range(20_000))
        for key in range(10):
            assert counts[key] / 20_000 == pytest.approx(0.1, rel=0.15)


class TestYcsb:
    def test_key_names_fixed_width(self):
        assert key_name(0) == "user00000000"
        assert key_name(123) == "user00000123"
        assert len(key_name(0)) == len(key_name(99_999_999))

    def test_initial_records_cover_keyspace(self):
        workload = YcsbWorkload(50, read_proportion=1.0, seed=1, value_size=32)
        records = dict(workload.initial_records())
        assert len(records) == 50
        assert all(len(value) == 32 for value in records.values())

    def test_workload_c_all_reads(self):
        workload = workload_c(100, seed=2)
        assert all(req.op is Operation.READ for req in workload.requests(500))

    def test_workload_a_mix(self):
        workload = workload_a(100, seed=3)
        ops = Counter(req.op for req in workload.requests(4000))
        assert ops[Operation.READ] == pytest.approx(2000, rel=0.1)
        assert ops[Operation.WRITE] == pytest.approx(2000, rel=0.1)

    def test_workload_b_mostly_reads(self):
        workload = workload_b(100, seed=4)
        ops = Counter(req.op for req in workload.requests(4000))
        assert ops[Operation.READ] / 4000 == pytest.approx(0.95, abs=0.02)

    def test_write_values_padded_size(self):
        workload = workload_a(100, seed=5, value_size=128)
        writes = [req for req in workload.requests(200)
                  if req.op is Operation.WRITE]
        assert writes and all(len(req.value) == 128 for req in writes)

    def test_uniform_flag(self):
        workload = YcsbWorkload(1000, read_proportion=1.0, uniform=True,
                                seed=6)
        counts = Counter(req.key for req in workload.requests(5000))
        assert counts.most_common(1)[0][1] < 30  # no hot key

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            YcsbWorkload(10, read_proportion=1.5)
        with pytest.raises(ConfigurationError):
            YcsbWorkload(10, read_proportion=0.5, value_size=0)

    def test_trace_reproducible(self):
        a = workload_a(100, seed=7).trace(100)
        b = workload_a(100, seed=7).trace(100)
        assert [(r.op, r.key, r.value) for r in a] == \
               [(r.op, r.key, r.value) for r in b]


class TestClickstream:
    def test_walk_visits_valid_keys(self):
        model = ClickstreamModel(50, seed=1)
        walk = model.walk(2000, seed=2)
        assert len(walk) == 2000
        assert all(0 <= node < 50 for node in walk)

    def test_transition_matrix_row_stochastic(self):
        model = ClickstreamModel(40, seed=3)
        matrix = model.transition_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert (matrix >= 0).all()

    def test_walk_follows_transition_structure(self):
        """Adjacent pairs in the walk concentrate on actual graph edges."""
        model = ClickstreamModel(60, seed=4)
        walk = model.walk(30_000, seed=5)
        edges = {(i, j) for i in range(60) for j in model.neighbours[i]}
        on_edge = sum(
            1 for a, b in zip(walk, walk[1:]) if (a, b) in edges
        )
        assert on_edge / (len(walk) - 1) > 0.7  # teleport is only 5%

    def test_independent_trace_preserves_frequencies(self):
        model = ClickstreamModel(30, seed=6)
        workload = CorrelatedWorkload(model, seed=7)
        correlated = workload.correlated_trace(5000)
        independent = workload.independent_trace(5000)
        assert Counter(r.key for r in correlated) == \
               Counter(r.key for r in independent)

    def test_independent_trace_destroys_correlation(self):
        model = ClickstreamModel(60, seed=8)
        workload = CorrelatedWorkload(model, seed=9)
        edges = {(i, j) for i in range(60) for j in model.neighbours[i]}

        def edge_fraction(trace):
            indices = [int(r.key[4:]) for r in trace]
            pairs = list(zip(indices, indices[1:]))
            return sum((a, b) in edges for a, b in pairs) / len(pairs)

        assert edge_fraction(workload.correlated_trace(8000)) > \
            edge_fraction(workload.independent_trace(8000)) + 0.3

    def test_requires_two_keys(self):
        with pytest.raises(ValueError):
            ClickstreamModel(1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 64), st.integers(0, 2**31))
    def test_model_always_valid(self, n, seed):
        model = ClickstreamModel(n, seed=seed)
        for node, (nbrs, weights) in enumerate(
                zip(model.neighbours, model.weights)):
            assert nbrs, "every node needs at least one out-link"
            assert node not in nbrs
            assert sum(weights) == pytest.approx(1.0)


class TestTraceSerialization:
    def test_roundtrip_mixed_trace(self, tmp_path):
        from repro.workloads.trace import load_trace, save_trace
        trace = [
            TraceRequest(Operation.READ, "user00000001"),
            TraceRequest(Operation.WRITE, "user00000002", b"\x00\xffbin"),
            TraceRequest(Operation.INSERT, "user00000003", b"new"),
        ]
        path = tmp_path / "trace.txt"
        assert save_trace(trace, path) == 3
        loaded = load_trace(path)
        assert [(r.op, r.key, r.value) for r in loaded] == \
               [(r.op, r.key, r.value) for r in trace]

    def test_generated_trace_roundtrips(self, tmp_path):
        from repro.workloads.trace import load_trace, save_trace
        trace = workload_a(100, seed=3, value_size=64).trace(200)
        path = tmp_path / "ycsb.txt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == 200
        assert all(a.key == b.key and a.value == b.value
                   for a, b in zip(trace, loaded))

    def test_whitespace_key_rejected(self, tmp_path):
        from repro.workloads.trace import save_trace
        with pytest.raises(ValueError):
            save_trace([TraceRequest(Operation.READ, "bad key")],
                       tmp_path / "x.txt")

    def test_malformed_line_rejected(self, tmp_path):
        from repro.workloads.trace import load_trace
        path = tmp_path / "bad.txt"
        path.write_text("read a b c d\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_empty_lines_skipped(self, tmp_path):
        from repro.workloads.trace import load_trace
        path = tmp_path / "gaps.txt"
        path.write_text("read user1\n\nread user2\n")
        assert len(load_trace(path)) == 2
