"""Pins the error taxonomy: hierarchy, retryability, and payloads.

Retry loops, the chaos harness, and the HA recovery path all dispatch on
``isinstance`` checks against this hierarchy — a quietly rebased
exception class changes recovery behaviour without failing any
functional test.  This module freezes the contract.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BackendUnavailableError,
    ClosedError,
    ConfigurationError,
    ConnectionDroppedError,
    DuplicateKeyError,
    FrameError,
    IntegrityError,
    KeyNotFoundError,
    NetworkError,
    PartialReplyError,
    ProtocolError,
    ReproError,
    StorageError,
    StorageTimeoutError,
    TransientError,
    is_retryable,
)

ALL_ERRORS = [
    BackendUnavailableError, ClosedError, ConfigurationError,
    ConnectionDroppedError, DuplicateKeyError, FrameError, IntegrityError,
    KeyNotFoundError, NetworkError, PartialReplyError, ProtocolError,
    StorageError, StorageTimeoutError, TransientError,
]


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in ALL_ERRORS:
            assert issubclass(cls, ReproError)
            assert issubclass(cls, Exception)

    def test_one_base_catches_the_library(self):
        with pytest.raises(ReproError):
            raise KeyNotFoundError("x")
        with pytest.raises(ReproError):
            raise ConnectionDroppedError("gone")

    def test_storage_family(self):
        for cls in (KeyNotFoundError, DuplicateKeyError,
                    BackendUnavailableError, StorageTimeoutError):
            assert issubclass(cls, StorageError)
        assert not issubclass(ConnectionDroppedError, StorageError)

    def test_transient_marker_membership(self):
        # Exactly these concrete types are transient; everything else in
        # the library is fatal.  Extending this set is an API change.
        transient = {BackendUnavailableError, StorageTimeoutError,
                     ConnectionDroppedError}
        for cls in ALL_ERRORS:
            if cls is TransientError:
                continue
            assert issubclass(cls, TransientError) == (cls in transient), cls

    def test_stdlib_aliases(self):
        # Generic retry loops using stdlib idioms must classify library
        # errors correctly without importing repro.errors.
        assert issubclass(StorageTimeoutError, TimeoutError)
        assert issubclass(ConnectionDroppedError, ConnectionError)
        assert not issubclass(BackendUnavailableError,
                              (TimeoutError, ConnectionError))

    def test_partial_reply_is_protocol_not_transient(self):
        # A short pipelined reply means misaligned id->value framing:
        # blind resend is unsafe, recovery goes through failover-replay.
        assert issubclass(PartialReplyError, ProtocolError)
        assert not issubclass(PartialReplyError, TransientError)

    def test_frame_error_is_protocol_not_transient(self):
        # A truncated chunk frame means the transport or producer
        # corrupted the batch; retrying would re-feed garbage to the
        # crypto kernels.
        assert issubclass(FrameError, ProtocolError)
        assert not issubclass(FrameError, TransientError)


class TestPayloads:
    def test_key_errors_carry_the_key(self):
        assert KeyNotFoundError("abc").key == "abc"
        assert DuplicateKeyError("abc").key == "abc"
        assert "abc" in str(KeyNotFoundError("abc"))

    def test_partial_reply_carries_counts(self):
        error = PartialReplyError(expected=8, got=5)
        assert (error.expected, error.got) == (8, 5)
        assert "5 of 8" in str(error)


class TestRetryability:
    @pytest.mark.parametrize("error, retryable", [
        (BackendUnavailableError("busy"), True),
        (StorageTimeoutError("slow"), True),
        (ConnectionDroppedError("gone"), True),
        (TimeoutError("bare stdlib"), True),
        (ConnectionError("bare stdlib"), True),
        (ConnectionResetError("stdlib subclass"), True),
        (KeyNotFoundError("k"), False),
        (DuplicateKeyError("k"), False),
        (PartialReplyError(4, 2), False),
        (ProtocolError("bad frame"), False),
        (IntegrityError("tampered"), False),
        (ConfigurationError("bad n"), False),
        (ClosedError("closed"), False),
        (ValueError("unrelated"), False),
    ])
    def test_classification_table(self, error, retryable):
        assert is_retryable(error) == retryable

    def test_transient_marker_is_sufficient(self):
        class CustomTransient(StorageError, TransientError):
            pass

        assert is_retryable(CustomTransient("backend-specific"))
