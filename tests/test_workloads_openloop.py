"""Statistical and determinism tests for the open-loop arrival generators.

These generators feed both the serving benchmark and the timing
adversary's ground truth, so two properties are load-bearing: the
processes must actually have the distributions they claim (KS goodness
of fit, rate bookkeeping), and every stream must be bit-reproducible
per seed (the chaos harness replays them).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import ks_exponential
from repro.errors import ConfigurationError
from repro.workloads.openloop import (
    Arrival,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.workloads.trace import Operation
from repro.workloads.ycsb import key_name


class TestPoissonArrivals:
    def test_interarrivals_pass_ks_against_exponential(self):
        stream = PoissonArrivals(500.0, 64, seed=13)
        arrivals = stream.generate(4.0)
        times = [a.at for a in arrivals]
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        statistic, critical = ks_exponential(gaps, 500.0)
        assert len(gaps) > 1000  # the test has real power
        assert statistic < critical, (statistic, critical)

    def test_wrong_rate_fails_the_same_ks(self):
        """Sanity: the KS check can actually reject a bad rate."""
        stream = PoissonArrivals(500.0, 64, seed=13)
        times = [a.at for a in stream.generate(4.0)]
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        statistic, critical = ks_exponential(gaps, 900.0)
        assert statistic > critical

    def test_mean_rate_close_to_nominal(self):
        arrivals = PoissonArrivals(1000.0, 16, seed=3).generate(5.0)
        observed = len(arrivals) / 5.0
        assert observed == pytest.approx(1000.0, rel=0.05)

    def test_deterministic_per_seed(self):
        first = PoissonArrivals(300.0, 32, seed=21).generate(2.0)
        second = PoissonArrivals(300.0, 32, seed=21).generate(2.0)
        different = PoissonArrivals(300.0, 32, seed=22).generate(2.0)
        assert first == second
        assert first != different

    def test_arrivals_sorted_within_horizon(self):
        arrivals = PoissonArrivals(200.0, 8, seed=1).generate(1.0)
        times = [a.at for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < 1.0 for t in times)

    def test_read_fraction_respected(self):
        arrivals = PoissonArrivals(2000.0, 8, seed=5,
                                   read_fraction=0.8).generate(2.0)
        reads = sum(a.op is Operation.READ for a in arrivals)
        assert reads / len(arrivals) == pytest.approx(0.8, abs=0.03)

    def test_rate_at_is_constant(self):
        stream = PoissonArrivals(123.0, 8, seed=0)
        assert stream.rate_at(0.0) == stream.rate_at(99.0) == 123.0

    def test_keys_are_canonical_and_in_range(self):
        arrivals = PoissonArrivals(500.0, 10, seed=9).generate(0.5)
        valid = {key_name(i) for i in range(10)}
        assert arrivals
        assert {a.key for a in arrivals} <= valid

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0, 8, seed=1)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(10.0, 0, seed=1)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(10.0, 8, seed=1, read_fraction=1.5)


class TestDiurnalArrivals:
    def test_rate_at_trough_and_peak(self):
        stream = DiurnalArrivals(100.0, 900.0, period_s=10.0, n_keys=8,
                                 seed=2)
        assert stream.rate_at(0.0) == pytest.approx(100.0)
        assert stream.rate_at(5.0) == pytest.approx(900.0)
        assert stream.rate_at(10.0) == pytest.approx(100.0)
        assert stream.rate_at(2.5) == pytest.approx(500.0)

    def test_density_follows_the_cycle(self):
        stream = DiurnalArrivals(50.0, 800.0, period_s=4.0, n_keys=8,
                                 seed=7)
        arrivals = stream.generate(4.0)
        trough = sum(1 for a in arrivals if a.at < 1.0 or a.at >= 3.0)
        peak = sum(1 for a in arrivals if 1.0 <= a.at < 3.0)
        assert peak > 2 * trough

    def test_deterministic_per_seed(self):
        build = lambda seed: DiurnalArrivals(  # noqa: E731
            100.0, 400.0, period_s=2.0, n_keys=8, seed=seed).generate(2.0)
        assert build(31) == build(31)
        assert build(31) != build(32)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(0.0, 100.0, period_s=1.0, n_keys=8, seed=1)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(200.0, 100.0, period_s=1.0, n_keys=8, seed=1)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(100.0, 200.0, period_s=0.0, n_keys=8, seed=1)


class TestFlashCrowdArrivals:
    def _stream(self, **overrides):
        params = dict(base_rate=200.0, n_keys=64, spike_factor=6.0,
                      burst_start=1.0, burst_duration=1.0, hot_keys=4,
                      hot_fraction=0.9, seed=17)
        params.update(overrides)
        return FlashCrowdArrivals(params.pop("base_rate"),
                                  params.pop("n_keys"), **params)

    def test_rate_at_reflects_the_burst_window(self):
        stream = self._stream()
        assert stream.rate_at(0.5) == pytest.approx(200.0)
        assert stream.rate_at(1.5) == pytest.approx(1200.0)
        assert stream.rate_at(2.5) == pytest.approx(200.0)
        assert stream.in_burst(1.0) and not stream.in_burst(2.0)

    def test_burst_density_spikes(self):
        arrivals = self._stream().generate(3.0)
        inside = sum(1 for a in arrivals if 1.0 <= a.at < 2.0)
        outside = len(arrivals) - inside
        # 6x rate for 1s of 3s: inside should dominate each 1s of outside.
        assert inside > 2 * (outside / 2.0)

    def test_burst_keys_collapse_onto_the_hot_set(self):
        stream = self._stream()
        arrivals = stream.generate(3.0)
        hot = {key_name(i) for i in range(4)}
        burst = [a for a in arrivals if stream.in_burst(a.at)]
        calm = [a for a in arrivals if not stream.in_burst(a.at)]
        burst_hot = sum(a.key in hot for a in burst) / len(burst)
        calm_hot = sum(a.key in hot for a in calm) / len(calm)
        assert burst_hot > 0.85
        assert calm_hot < 0.25  # uniform over 64 keys ~ 6%

    def test_deterministic_per_seed(self):
        assert self._stream().generate(3.0) == self._stream().generate(3.0)
        assert self._stream().generate(3.0) != \
            self._stream(seed=18).generate(3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._stream(base_rate=0.0)
        with pytest.raises(ConfigurationError):
            self._stream(spike_factor=0.5)
        with pytest.raises(ConfigurationError):
            self._stream(burst_duration=0.0)
        with pytest.raises(ConfigurationError):
            self._stream(hot_keys=65)
        with pytest.raises(ConfigurationError):
            self._stream(hot_fraction=1.5)


class TestArrivalValue:
    def test_arrival_is_frozen(self):
        arrival = Arrival(at=0.5, op=Operation.READ, key=key_name(1))
        with pytest.raises(AttributeError):
            arrival.at = 1.0  # type: ignore[misc]

    def test_time_and_pick_streams_are_independent(self):
        """Changing the op mix must not move arrival times (same seed)."""
        balanced = PoissonArrivals(400.0, 16, seed=6,
                                   read_fraction=0.5).generate(1.0)
        read_only = PoissonArrivals(400.0, 16, seed=6,
                                    read_fraction=1.0).generate(1.0)
        assert [a.at for a in balanced] == [a.at for a in read_only]
        assert math.isclose(balanced[0].at, read_only[0].at)
