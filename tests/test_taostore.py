"""Tests for the TaoStore baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.taostore import TaoStore
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation, TraceRequest


def build(n=64, seed=1, store=None, **kwargs):
    items = {f"user{i:08d}": b"val-%d" % i for i in range(n)}
    store = store if store is not None else RedisSim()
    tao = TaoStore(dict(items), store, seed=seed,
                   keychain=KeyChain.from_seed(seed), **kwargs)
    return tao, items


class TestCorrectness:
    def test_get_initial_values(self):
        tao, items = build()
        for key in list(items)[:10]:
            assert tao.get(key) == items[key]

    def test_put_then_get(self):
        tao, _ = build()
        tao.put("user00000003", b"NEW")
        assert tao.get("user00000003") == b"NEW"

    def test_missing_key_raises(self):
        tao, _ = build()
        with pytest.raises(KeyNotFoundError):
            tao.get("ghost")

    def test_empty_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            TaoStore({}, RedisSim())

    def test_invalid_threshold(self):
        items = {"a": b"1"}
        with pytest.raises(ConfigurationError):
            TaoStore(items, RedisSim(), write_back_threshold=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31))
    def test_random_history_matches_reference(self, seed):
        tao, items = build(n=32, seed=seed)
        reference = dict(items)
        rng = random.Random(seed)
        keys = list(items)
        for step in range(120):
            key = keys[rng.randrange(len(keys))]
            if rng.random() < 0.5:
                assert tao.get(key) == reference[key]
            else:
                value = b"w%d" % step
                tao.put(key, value)
                reference[key] = value


class TestConcurrency:
    def test_sequencer_preserves_order(self):
        """Queued requests resolve in submission order: a read after a
        write to the same key sees the written value."""
        tao, _ = build(seed=2)
        write_slot = tao.submit(
            TraceRequest(Operation.WRITE, "user00000001", b"FIRST"))
        read_slot = tao.submit(TraceRequest(Operation.READ, "user00000001"))
        tao.drain()
        assert write_slot[0] == b"FIRST"
        assert read_slot[0] == b"FIRST"

    def test_concurrent_duplicate_requests_fake_read(self):
        """Two in-flight requests for one key trigger a fake path read for
        the second — the adversary still sees one path per request."""
        tao, _ = build(seed=3, write_back_threshold=10)
        tao.submit(TraceRequest(Operation.READ, "user00000005"))
        tao.submit(TraceRequest(Operation.READ, "user00000005"))
        tao.drain()
        assert tao.stats.fake_reads >= 1

    def test_flush_fires_at_threshold(self):
        tao, items = build(seed=4, write_back_threshold=5)
        keys = list(items)
        for key in keys[:5]:
            tao.get(key)
        assert tao.stats.flushes >= 1

    def test_writes_survive_flush_cycles(self):
        tao, items = build(seed=5, write_back_threshold=3)
        keys = list(items)[:10]
        for key in keys:
            tao.put(key, b"V-" + key.encode())
        rng = random.Random(6)
        for _ in range(30):
            tao.get(keys[rng.randrange(len(keys))])
        for key in keys:
            assert tao.get(key) == b"V-" + key.encode()


class TestObliviousness:
    def test_every_request_reads_a_path(self):
        recorder = RecordingStore(RedisSim())
        tao, _ = build(n=64, seed=7, store=recorder,
                       write_back_threshold=4)
        recorder.clear_records()
        before = tao.stats.buckets_read
        tao.get("user00000002")
        # First fetch of a cold subtree reads a full path.
        assert tao.stats.buckets_read - before == tao.path_length

    def test_position_remap_on_access(self):
        tao, _ = build(seed=8)
        positions = set()
        for _ in range(30):
            tao.get("user00000009")
            positions.add(tao.position["user00000009"])
        assert len(positions) > 5
