"""Mutation smoke test: the harness must catch bugs, not just pass.

A conformance suite that never fails is indistinguishable from one that
checks nothing.  These tests plant known invariant violations in the
storage path (via the runner's ``wrap_store`` hook) and require the
differential oracle to (a) flag the episode and (b) shrink it to a
small reproducer — the end-to-end proof that the harness has teeth.
"""

from __future__ import annotations

import pytest

from repro.testing import generate_episode, run_episode, shrink_episode
from repro.testing.faults import PassthroughStore


class DropFirstWrite(PassthroughStore):
    """Loses the first written object of the first committed round."""

    def __init__(self, inner):
        super().__init__(inner)
        self.armed = True

    def commit_round(self, deletes, puts):
        puts = list(puts)
        if self.armed and puts:
            puts = puts[1:]
            self.armed = False
        self._inner.commit_round(deletes, puts)


class DuplicateFirstWrite(PassthroughStore):
    """Writes the first object of the first round twice (same id)."""

    def __init__(self, inner):
        super().__init__(inner)
        self.armed = True

    def commit_round(self, deletes, puts):
        puts = list(puts)
        if self.armed and puts:
            puts = puts + [puts[0]]
            self.armed = False
        self._inner.commit_round(deletes, puts)


class SkipOneDelete(PassthroughStore):
    """Leaves one consumed read-once id on the server."""

    def __init__(self, inner):
        super().__init__(inner)
        self.armed = True

    def commit_round(self, deletes, puts):
        deletes = list(deletes)
        if self.armed and deletes:
            deletes = deletes[1:]
            self.armed = False
        self._inner.commit_round(deletes, puts)


@pytest.fixture
def episode():
    return generate_episode(seed=7, ha_mode="replicated",
                            fault_rate=0.06, crash_rate=0.06)


def test_detects_lost_write(episode):
    result = run_episode(episode, wrap_store=DropFirstWrite)
    assert not result.ok
    # The missing write breaks the round's constant composition.
    assert any(v.kind == "shape" for v in result.violations)


def test_detects_duplicate_write(episode):
    result = run_episode(episode, wrap_store=DuplicateFirstWrite)
    assert not result.ok


def test_detects_skipped_delete(episode):
    result = run_episode(episode, wrap_store=SkipOneDelete)
    assert not result.ok
    assert any(v.kind == "shape" for v in result.violations)


def test_planted_bug_shrinks_to_small_reproducer(episode):
    def failing(candidate):
        return not run_episode(candidate, wrap_store=DropFirstWrite).ok

    result = shrink_episode(episode, failing)
    assert failing(result.episode)
    assert result.episode.validate() is None
    # ISSUE acceptance: the reproducer is at most 10 client operations.
    assert result.final_size <= 10
    assert result.final_size < result.initial_size


def test_clean_run_stays_clean(episode):
    """Control: without a planted bug the same episode passes."""
    assert run_episode(episode).ok
