"""Tests for the client request/response types."""

import pytest

from repro.core.batch import ClientRequest, ClientResponse, request_from_trace
from repro.workloads.trace import Operation, TraceRequest


class TestClientRequest:
    def test_request_ids_unique_and_increasing(self):
        a = ClientRequest(op=Operation.READ, key="k1")
        b = ClientRequest(op=Operation.READ, key="k2")
        assert b.request_id > a.request_id

    def test_write_requires_value(self):
        with pytest.raises(ValueError):
            ClientRequest(op=Operation.WRITE, key="k")

    def test_explicit_request_id_respected(self):
        request = ClientRequest(op=Operation.READ, key="k", request_id=777)
        assert request.request_id == 777

    def test_frozen(self):
        request = ClientRequest(op=Operation.READ, key="k")
        with pytest.raises(Exception):
            request.key = "other"


class TestTraceConversion:
    def test_read_converts(self):
        request = request_from_trace(TraceRequest(Operation.READ, "k"))
        assert request.op is Operation.READ
        assert request.key == "k"
        assert request.value is None

    def test_write_converts_with_value(self):
        request = request_from_trace(
            TraceRequest(Operation.WRITE, "k", b"v"))
        assert request.op is Operation.WRITE
        assert request.value == b"v"

    def test_conversions_get_distinct_ids(self):
        trace = TraceRequest(Operation.READ, "k")
        first = request_from_trace(trace)
        second = request_from_trace(trace)
        assert first.request_id != second.request_id


class TestClientResponse:
    def test_response_carries_fields(self):
        response = ClientResponse(request_id=5, key="k", value=b"v")
        assert (response.request_id, response.key, response.value) == \
            (5, "k", b"v")
