"""Unit and property tests for the treap (Waffle's balanced BST)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ds.treap import Treap


class TestTreapBasics:
    def test_empty(self):
        tree = Treap(seed=1)
        assert len(tree) == 0
        with pytest.raises(KeyError):
            tree.min()

    def test_insert_and_min(self):
        tree = Treap(seed=1)
        tree.insert("b", (2, "b"))
        tree.insert("a", (1, "a"))
        tree.insert("c", (3, "c"))
        assert tree.min() == ((1, "a"), "a")
        assert len(tree) == 3

    def test_reposition_on_reinsert(self):
        tree = Treap(seed=1)
        tree.insert("a", (1, "a"))
        tree.insert("b", (2, "b"))
        tree.insert("a", (9, "a"))  # move "a" behind "b"
        assert tree.min() == ((2, "b"), "b")
        assert len(tree) == 2

    def test_remove(self):
        tree = Treap(seed=1)
        for i, name in enumerate("abcde"):
            tree.insert(name, (i, name))
        tree.remove("a")
        assert tree.min() == ((1, "b"), "b")
        assert "a" not in tree
        with pytest.raises(KeyError):
            tree.remove("a")

    def test_pop_min_drains_in_order(self):
        tree = Treap(seed=2)
        order = list(range(100))
        random.Random(3).shuffle(order)
        for value in order:
            tree.insert(f"k{value}", (value, f"k{value}"))
        drained = [tree.pop_min()[0][0] for _ in range(100)]
        assert drained == sorted(drained)
        assert len(tree) == 0

    def test_pop_min_many_equals_repeated_pop_min(self):
        for take in (0, 1, 7, 50, 100, 150):
            one, many = Treap(seed=4), Treap(seed=4)
            order = list(range(100))
            random.Random(5).shuffle(order)
            for value in order:
                one.insert(f"k{value}", (value, f"k{value}"))
                many.insert(f"k{value}", (value, f"k{value}"))
            expected = [one.pop_min() for _ in range(min(take, 100))]
            assert many.pop_min_many(take) == expected
            assert len(many) == len(one)
            assert list(many.items()) == list(one.items())
            many.check_invariants()

    def test_pop_min_many_then_reuse(self):
        """The tree stays fully functional after a batched prefix removal."""
        tree = Treap(seed=6)
        for value in range(60):
            tree.insert(value, (value, value))
        assert [entry for _, entry in tree.pop_min_many(25)] == list(range(25))
        tree.insert(3, (3, 3))  # reinsert below the removed boundary
        assert tree.min() == ((3, 3), 3)
        tree.remove(3)
        assert tree.pop_min_many(100) == [((v, v), v) for v in range(25, 60)]
        assert len(tree) == 0

    def test_items_sorted(self):
        tree = Treap(seed=4)
        for value in (5, 3, 9, 1, 7):
            tree.insert(f"k{value}", (value, f"k{value}"))
        keys = [sk[0] for sk, _ in tree.items()]
        assert keys == [1, 3, 5, 7, 9]

    def test_select_order_statistics(self):
        tree = Treap(seed=5)
        for value in range(50):
            tree.insert(f"k{value:02d}", (value, f"k{value:02d}"))
        for rank in (0, 1, 25, 49):
            sort_key, entry = tree.select(rank)
            assert sort_key[0] == rank
        with pytest.raises(IndexError):
            tree.select(50)
        with pytest.raises(IndexError):
            tree.select(-1)

    def test_sort_key_of(self):
        tree = Treap(seed=6)
        tree.insert("x", (7, "x"))
        assert tree.sort_key_of("x") == (7, "x")
        with pytest.raises(KeyError):
            tree.sort_key_of("missing")

    def test_large_sequential_inserts_no_recursion_error(self):
        # Sequential sort keys would be worst-case for a plain BST; the
        # treap (and the iterative merge/split) must handle them.
        tree = Treap(seed=7)
        for value in range(20_000):
            tree.insert(value, (value, value))
        assert tree.min() == ((0, 0), 0)
        tree.check_invariants()


ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "pop_min"]),
        st.integers(0, 30),
        st.integers(0, 100),
    ),
    max_size=200,
)


class TestTreapProperties:
    @settings(max_examples=150, deadline=None)
    @given(ops, st.integers(0, 2**31))
    def test_matches_reference_model(self, operations, seed):
        """The treap behaves like a sorted reference dict under any
        interleaving of inserts, removes and pop-mins."""
        tree = Treap(seed=seed)
        reference: dict[int, tuple] = {}
        for op, entry, ts in operations:
            if op == "insert":
                tree.insert(entry, (ts, entry))
                reference[entry] = (ts, entry)
            elif op == "remove" and entry in reference:
                tree.remove(entry)
                del reference[entry]
            elif op == "pop_min" and reference:
                sort_key, popped = tree.pop_min()
                expected_key = min(reference.values())
                assert sort_key == expected_key
                assert reference.pop(popped) == expected_key
        assert len(tree) == len(reference)
        assert [sk for sk, _ in tree.items()] == sorted(reference.values())
        tree.check_invariants()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=300,
                    unique=True))
    def test_select_agrees_with_sorted_order(self, values):
        tree = Treap(seed=11)
        for value in values:
            tree.insert(value, (value, value))
        expected = sorted(values)
        for rank, value in enumerate(expected):
            assert tree.select(rank)[1] == value


class TestTreapStress:
    def test_interleaved_heavy_churn(self):
        """A long randomized churn (the shape Waffle's indexes see:
        insert/remove/min cycling) against a reference dict."""
        import random
        tree = Treap(seed=99)
        reference: dict[int, tuple] = {}
        rng = random.Random(100)
        for step in range(20_000):
            roll = rng.random()
            entry = rng.randrange(500)
            if roll < 0.5:
                sort_key = (rng.randrange(10_000), entry)
                tree.insert(entry, sort_key)
                reference[entry] = sort_key
            elif roll < 0.75 and reference:
                victim = rng.choice(list(reference))
                tree.remove(victim)
                del reference[victim]
            elif reference:
                assert tree.min() == (min(reference.values()),
                                      min(reference, key=lambda e:
                                          reference[e]))
        assert len(tree) == len(reference)
        tree.check_invariants()

    def test_min_equals_sorted_front_throughout(self):
        import random
        tree = Treap(seed=101)
        rng = random.Random(102)
        live = {}
        for step in range(3000):
            entry = f"e{rng.randrange(200)}"
            tree.insert(entry, (rng.randrange(1000), entry))
            live[entry] = tree.sort_key_of(entry)
            if step % 7 == 0:
                sort_key, found = tree.pop_min()
                expected_entry = min(live, key=lambda e: live[e])
                assert found == expected_entry
                assert sort_key == live.pop(found)
