"""Tests for the leakage-quantification metrics."""

import random

import pytest

from repro.analysis.leakage import (
    access_count_entropy,
    chi_square_uniformity,
    frequency_kl_divergence,
    leakage_summary,
    round_load_profile,
)
from repro.bench.harness import run_waffle
from repro.core.config import WaffleConfig
from repro.sim.costmodel import CostModel
from repro.storage.recording import AccessRecord
from repro.workloads.ycsb import workload_c


def reads(sids, rounds=None) -> list[AccessRecord]:
    rounds = rounds if rounds is not None else [0] * len(sids)
    return [AccessRecord("read", sid, rnd, i)
            for i, (sid, rnd) in enumerate(zip(sids, rounds))]


class TestMetricsOnSyntheticTraces:
    def test_uniform_counts_maximum_entropy(self):
        records = reads([f"id{i}" for i in range(50)])
        assert access_count_entropy(records) == pytest.approx(1.0)
        assert frequency_kl_divergence(records) == pytest.approx(0.0)

    def test_skewed_counts_lower_entropy(self):
        skewed = reads(["hot"] * 90 + [f"cold{i}" for i in range(10)])
        assert access_count_entropy(skewed) < 0.8
        assert frequency_kl_divergence(skewed) > 1.0

    def test_chi_square_rejects_skew_accepts_uniform(self):
        uniform = reads([f"id{i % 20}" for i in range(2000)])
        _, p_uniform = chi_square_uniformity(uniform)
        rng = random.Random(1)
        skewed_ids = ["hot" if rng.random() < 0.4 else f"c{rng.randrange(19)}"
                      for _ in range(2000)]
        _, p_skewed = chi_square_uniformity(reads(skewed_ids))
        assert p_uniform > 0.9
        assert p_skewed < 0.01

    def test_round_load_profile_constant_rounds(self):
        sids = [f"id{i}" for i in range(40)]
        rounds = [i // 10 for i in range(40)]  # 10 reads per round
        profile = round_load_profile(reads(sids, rounds))
        assert profile["read_mean"] == pytest.approx(10.0)
        assert profile["read_cv"] == pytest.approx(0.0)

    def test_degenerate_traces(self):
        assert access_count_entropy([]) == 1.0
        assert frequency_kl_divergence([]) == 0.0
        assert chi_square_uniformity([]) == (0.0, 1.0)


class TestMetricsOnWaffle:
    @pytest.fixture(scope="class")
    def waffle_records(self):
        n = 1024
        config = WaffleConfig.paper_defaults(n=n, seed=5)
        workload = workload_c(n, seed=6, value_size=256)
        items = dict(workload.initial_records())
        trace = workload.trace(config.r * 150)
        _, datastore = run_waffle(config, items, trace, CostModel(),
                                  record=True)
        return datastore.recorder.records

    def test_waffle_is_maximally_uniform(self, waffle_records):
        summary = leakage_summary(waffle_records, steady_state_from_round=1)
        # Every id read exactly once -> flat profile on every metric.
        assert summary.normalized_entropy == pytest.approx(1.0)
        assert summary.kl_divergence_bits == pytest.approx(0.0, abs=1e-9)
        assert summary.chi_square_p == pytest.approx(1.0)
        # Constant B reads and B writes per round.
        assert summary.read_cv == pytest.approx(0.0, abs=1e-9)
        assert summary.write_cv == pytest.approx(0.0, abs=1e-9)

    def test_insecure_store_leaks_in_contrast(self):
        from repro.storage.recording import RecordingStore
        from repro.storage.redis_sim import RedisSim
        from repro.baselines.insecure import InsecureStore

        n = 1024
        workload = workload_c(n, seed=6, value_size=64)
        items = dict(workload.initial_records())
        recorder = RecordingStore(RedisSim())
        store = InsecureStore(recorder, items)
        for request in workload.trace(6000):
            store.execute(request)
        summary = leakage_summary(recorder.records)
        assert summary.normalized_entropy < 0.95
        assert summary.kl_divergence_bits > 0.3
        assert summary.chi_square_p < 0.01
