"""Unit tests for the chaos harness machinery itself.

Covers the fault plan, the injecting wrappers, episode generation /
validation / serialization, and the shrinker — everything below the
conformance layer, so conformance failures point at the system rather
than the harness.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ConnectionDroppedError,
    is_retryable,
)
from repro.storage.memory import InMemoryStore
from repro.storage.recording import RecordingStore
from repro.testing import (
    FAULT_KINDS,
    Episode,
    FaultPlan,
    FaultyStorage,
    FaultyTransport,
    InjectedFault,
    PassthroughStore,
    generate_episode,
    shrink_episode,
)


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_generation_is_deterministic(self):
        a = FaultPlan.generate(seed=9, horizon_ops=200, rate=0.1)
        b = FaultPlan.generate(seed=9, horizon_ops=200, rate=0.1)
        assert a.faults == b.faults
        assert len(a) > 0

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(seed=1, horizon_ops=500, rate=0.1)
        b = FaultPlan.generate(seed=2, horizon_ops=500, rate=0.1)
        assert a.faults != b.faults

    def test_rate_zero_is_empty(self):
        assert len(FaultPlan.generate(seed=1, horizon_ops=100, rate=0.0)) == 0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(faults={3: "meteor-strike"})

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(faults={-1: "error"})

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(seed=1, horizon_ops=10, rate=1.5)


# ---------------------------------------------------------------------------
# FaultyStorage
# ---------------------------------------------------------------------------
def _loaded_store() -> InMemoryStore:
    store = InMemoryStore()
    store.multi_put((f"k{i}", b"v%d" % i) for i in range(10))
    return store


class TestFaultyStorage:
    def test_passthrough_without_faults(self):
        faulty = FaultyStorage(_loaded_store(), FaultPlan())
        assert faulty.get("k3") == b"v3"
        assert faulty.multi_get(["k1", "k2"]) == [b"v1", b"v2"]
        assert "k5" in faulty and len(faulty) == 10
        assert faulty.injected == {}

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_each_kind_raises_injected(self, kind):
        faulty = FaultyStorage(_loaded_store(), FaultPlan(faults={0: kind}))
        with pytest.raises(InjectedFault) as info:
            faulty.get("k0")
        # Transport-level faults are retryable; a partial reply is a
        # protocol break — blind resend is unsafe, recovery goes through
        # failover-replay instead (which handles all four uniformly).
        assert is_retryable(info.value) == (kind != "partial")
        assert faulty.injected == {kind: 1}
        # The plan is positional: the next operation proceeds.
        assert faulty.get("k0") == b"v0"

    def test_faulted_op_never_reaches_inner(self):
        recorder = RecordingStore(_loaded_store())
        faulty = FaultyStorage(recorder, FaultPlan(faults={0: "timeout"}))
        with pytest.raises(InjectedFault):
            faulty.multi_get(["k1", "k2"])
        assert recorder.records == []
        faulty.multi_get(["k1", "k2"])
        assert [r.storage_id for r in recorder.records] == ["k1", "k2"]

    def test_commit_round_is_one_fault_point(self):
        recorder = RecordingStore(_loaded_store())
        faulty = FaultyStorage(recorder, FaultPlan(faults={0: "error"}))
        with pytest.raises(InjectedFault):
            faulty.commit_round(["k0"], [("new1", b"x")])
        # Nothing applied, nothing recorded: the round never happened.
        assert recorder.records == []
        assert "k0" in faulty and "new1" not in faulty
        # The retry consumes plan index 1 (clean) and applies atomically.
        faulty.commit_round(["k0"], [("new1", b"x")])
        assert "k0" not in faulty
        assert [(r.op, r.storage_id) for r in recorder.records] == \
            [("delete", "k0"), ("write", "new1")]

    def test_introspection_never_faults(self):
        faulty = FaultyStorage(_loaded_store(),
                               FaultPlan(faults={0: "error"}))
        assert "k0" in faulty
        assert len(faulty) == 10
        assert faulty.ops == 0  # introspection consumed no plan index


class TestFaultyTransport:
    def test_drop_is_sticky_until_reconnect(self):
        transport = FaultyTransport(_loaded_store(),
                                    FaultPlan(faults={1: "drop"}))
        assert transport.get("k0") == b"v0"
        with pytest.raises(ConnectionDroppedError):
            transport.get("k1")
        # Every operation fails while down, without consuming plan indices.
        ops_before = transport.ops
        with pytest.raises(ConnectionDroppedError):
            transport.multi_get(["k1"])
        with pytest.raises(ConnectionDroppedError):
            transport.commit_round(["k1"], [])
        assert transport.ops == ops_before
        transport.reconnect()
        assert transport.get("k1") == b"v1"
        assert transport.reconnects == 1

    def test_non_drop_faults_do_not_stick(self):
        transport = FaultyTransport(_loaded_store(),
                                    FaultPlan(faults={0: "timeout"}))
        with pytest.raises(InjectedFault):
            transport.get("k0")
        assert transport.connected
        assert transport.get("k0") == b"v0"


class TestPassthroughStore:
    def test_forwards_next_round_to_recorder(self):
        recorder = RecordingStore(_loaded_store())
        stack = PassthroughStore(PassthroughStore(recorder))
        assert stack.next_round() == 1
        assert recorder.round == 1

    def test_next_round_tolerates_plain_backend(self):
        assert PassthroughStore(_loaded_store()).next_round() is None


# ---------------------------------------------------------------------------
# Episodes
# ---------------------------------------------------------------------------
class TestEpisodes:
    def test_generation_is_deterministic_and_valid(self):
        a = generate_episode(seed=11, ha_mode="quorum")
        b = generate_episode(seed=11, ha_mode="quorum")
        assert a.to_dict() == b.to_dict()
        assert a.validate() is None
        assert a.batch_count >= 2  # first and last slots are forced batches

    def test_json_round_trip(self, tmp_path):
        episode = generate_episode(seed=12, ha_mode="quorum",
                                   mutation_rate=0.3, fault_rate=0.1)
        path = tmp_path / "episode.json"
        episode.to_json(path)
        restored = Episode.from_json(path)
        assert restored.to_dict() == episode.to_dict()

    def test_validate_rejects_unknown_key(self):
        episode = generate_episode(seed=13)
        episode.ops[0]["requests"][0] = ["read", "never-inserted"]
        assert "not live" in episode.validate()

    def test_validate_rejects_standby_ops_outside_quorum(self):
        episode = generate_episode(seed=14, ha_mode="replicated")
        episode.ops.insert(1, {"type": "fail_standby", "standby": 0})
        assert episode.validate() is not None

    def test_validate_rejects_oversized_batch(self):
        episode = generate_episode(seed=15)
        batch = next(op for op in episode.ops if op["type"] == "batch")
        batch["requests"] = [["read", "user00000001"]] * (
            episode.config["r"] + 1)
        assert "exceeds R" in episode.validate()

    def test_validate_tracks_insert_liveness(self):
        # Reading an inserted key before a batch drains the insert is
        # invalid; after a batch it is valid.
        episode = Episode(seed=1, ops=[
            {"type": "insert", "key": "fresh", "value": "v"},
            {"type": "batch", "requests": [["read", "fresh"]]},
        ])
        assert "not live" in episode.validate()
        episode = Episode(seed=1, ops=[
            {"type": "insert", "key": "fresh", "value": "v"},
            {"type": "batch", "requests": [["read", "user00000000"]]},
            {"type": "batch", "requests": [["read", "fresh"]]},
        ])
        assert episode.validate() is None

    def test_validate_rejects_use_after_delete(self):
        episode = Episode(seed=1, ops=[
            {"type": "delete", "key": "user00000003"},
            {"type": "batch", "requests": [["read", "user00000003"]]},
        ])
        assert "not live" in episode.validate()


# ---------------------------------------------------------------------------
# Shrinker (against a synthetic predicate: cheap and deterministic)
# ---------------------------------------------------------------------------
class TestShrinker:
    def test_shrinks_to_single_trigger_op(self):
        episode = generate_episode(seed=21, steps=20, fault_rate=0.05)
        # "Fails" iff the episode still contains a batch writing key k
        # (an arbitrary stand-in for a real trigger).
        trigger = None
        for op in episode.ops:
            if op["type"] == "batch":
                for request in op["requests"]:
                    if request[0] == "write":
                        trigger = request[1]
                        break
            if trigger:
                break
        assert trigger is not None

        def failing(candidate: Episode) -> bool:
            return any(
                request[0] == "write" and request[1] == trigger
                for op in candidate.ops if op["type"] == "batch"
                for request in op["requests"])

        result = shrink_episode(episode, failing)
        assert failing(result.episode)
        assert result.episode.validate() is None
        assert result.final_size <= 2
        assert result.final_size <= result.initial_size

    def test_non_failing_episode_returned_untouched(self):
        episode = generate_episode(seed=22)
        result = shrink_episode(episode, lambda e: False)
        assert result.episode is episode
        assert result.evaluations == 1

    def test_respects_evaluation_budget(self):
        episode = generate_episode(seed=23, steps=24)
        calls = 0

        def failing(candidate: Episode) -> bool:
            nonlocal calls
            calls += 1
            return True

        shrink_episode(episode, failing, max_evaluations=10)
        # One initial check plus at most the budget inside the passes.
        assert calls <= 12
