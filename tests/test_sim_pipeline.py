"""Tests for the multi-core proxy pipeline model."""

import pytest

from repro.core.config import WaffleConfig
from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel
from repro.sim.pipeline import PipelineModel, model_from_cost, speedup_curve


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PipelineModel(-1.0, 0.1)
        with pytest.raises(ConfigurationError):
            PipelineModel(1.0, 0.1, lock_fraction=1.5)
        with pytest.raises(ConfigurationError):
            PipelineModel(1.0, 0.1, lock_contention_growth=-0.1)
        with pytest.raises(ConfigurationError):
            PipelineModel(1.0, 0.1).simulate(0)
        with pytest.raises(ConfigurationError):
            PipelineModel(1.0, 0.1).simulate(2, rounds=0)


class TestMechanism:
    def test_no_contention_scales_linearly(self):
        """With zero lock share and coordination, speedup is ~W."""
        model = PipelineModel(parallel_work_s=1.0, serial_work_s=0.0,
                              lock_fraction=0.0,
                              lock_contention_growth=0.0,
                              coordination_s=0.0)
        curve = speedup_curve(model, worker_counts=(1, 2, 4))
        assert curve[2] == pytest.approx(2.0, rel=0.05)
        assert curve[4] == pytest.approx(4.0, rel=0.05)

    def test_serial_work_caps_speedup(self):
        """Amdahl: 50% serial caps speedup below 2 regardless of cores."""
        model = PipelineModel(parallel_work_s=1.0, serial_work_s=1.0,
                              lock_fraction=0.0,
                              lock_contention_growth=0.0,
                              coordination_s=0.0)
        curve = speedup_curve(model, worker_counts=(1, 4, 12))
        assert curve[12] < 2.0

    def test_contention_creates_interior_peak(self):
        """The Figure 2c mechanism: contention makes the curve rise to a
        peak and then decline below single-core throughput."""
        config = WaffleConfig.paper_defaults(n=2**14, seed=1)
        model = model_from_cost(config, CostModel())
        curve = speedup_curve(model)
        counts = sorted(curve)
        peak = max(counts, key=lambda c: curve[c])
        assert 2 <= peak <= 6           # interior peak (paper: 4)
        assert curve[peak] > 1.5
        after = [c for c in counts if c > peak]
        values = [curve[c] for c in after]
        assert values == sorted(values, reverse=True)  # monotone decline
        assert curve[max(counts)] < 0.6 * curve[peak]  # the plummet

    def test_network_binds_when_cpu_is_cheap(self):
        model = PipelineModel(parallel_work_s=0.001, serial_work_s=0.0,
                              lock_fraction=0.0,
                              lock_contention_growth=0.0,
                              coordination_s=0.0, network_s=1.0)
        result = model.simulate(8)
        assert result.round_time_s == pytest.approx(1.0, rel=0.05)

    def test_des_tracks_analytic_curve_direction(self):
        """The DES and the analytic core_efficiency curve agree on the
        qualitative ordering at every measured core count."""
        config = WaffleConfig.paper_defaults(n=2**14, seed=1)
        cost = CostModel()
        curve = speedup_curve(model_from_cost(config, cost))
        analytic = {c: cost.core_efficiency(c) for c in curve}
        for count in (2, 4):
            assert curve[count] > 1.0
            assert analytic[count] > 1.0
        assert curve[12] < curve[4]
        assert analytic[12] < analytic[4]

    def test_serial_share_grows_with_workers(self):
        config = WaffleConfig.paper_defaults(n=2**14, seed=1)
        model = model_from_cost(config, CostModel())
        small = model.simulate(2).serial_share
        large = model.simulate(12).serial_share
        assert large > small
