"""Tests for the real/dummy timestamp indexes."""

import pytest

from repro.core.timestamp_index import DummyObjectIndex, RealObjectIndex


class TestRealObjectIndex:
    def make(self, n=10):
        return RealObjectIndex([f"k{i}" for i in range(n)], seed=1)

    def test_all_keys_start_at_zero(self):
        index = self.make()
        assert all(index.timestamp(f"k{i}") == 0 for i in range(10))
        assert index.server_resident_count == 0

    def test_residency_controls_candidacy(self):
        index = self.make(3)
        index.mark_server_resident("k0")
        index.mark_server_resident("k1")
        assert index.server_resident_count == 2
        assert index.min_timestamp_key() in ("k0", "k1")
        index.mark_cached("k0")
        index.mark_cached("k1")
        assert index.server_resident_count == 0

    def test_min_follows_timestamps(self):
        index = self.make(3)
        for key in ("k0", "k1", "k2"):
            index.mark_server_resident(key)
        index.set_timestamp("k0", 5)
        index.set_timestamp("k1", 2)
        index.set_timestamp("k2", 9)
        assert index.min_timestamp_key() == "k1"

    def test_set_timestamp_for_cached_key_kept_out_of_tree(self):
        index = self.make(2)
        index.set_timestamp("k0", 7)
        assert index.timestamp("k0") == 7
        assert index.server_resident_count == 0
        index.mark_server_resident("k0")
        assert index.min_timestamp_key() == "k0"

    def test_unknown_key_rejected(self):
        index = self.make(1)
        with pytest.raises(KeyError):
            index.set_timestamp("nope", 1)
        with pytest.raises(KeyError):
            index.timestamp("nope")

    def test_add_and_drop_key(self):
        index = self.make(2)
        index.add_key("new", ts=4, server_resident=True)
        assert "new" in index
        assert index.server_resident_count == 1
        with pytest.raises(KeyError):
            index.add_key("new", ts=5, server_resident=False)
        index.drop_key("new")
        assert "new" not in index
        assert index.server_resident_count == 0

    def test_random_resident_key(self):
        import random
        index = self.make(20)
        for i in range(20):
            index.mark_server_resident(f"k{i}")
        rng = random.Random(3)
        picks = {index.random_resident_key(rng) for _ in range(100)}
        assert len(picks) > 5  # genuinely spread
        assert all(pick in index for pick in picks)


class TestDummyObjectIndex:
    def make(self, d=8, reshuffle=True):
        return DummyObjectIndex([f"d{i}" for i in range(d)], seed=2,
                                reshuffle=reshuffle)

    def test_initial_state(self):
        index = self.make()
        assert len(index) == 8
        assert index.stored_timestamp("d3") == 0

    def test_accesses_rotate_through_all_dummies(self):
        index = self.make(d=6)
        picked = []
        for ts in range(1, 7):
            key = index.min_timestamp_key()
            picked.append(key)
            index.record_access(key, ts)
        assert sorted(picked) == [f"d{i}" for i in range(6)]

    def test_stored_timestamp_tracks_last_access(self):
        index = self.make()
        key = index.min_timestamp_key()
        index.record_access(key, 42)
        assert index.stored_timestamp(key) == 42

    def test_reshuffle_changes_order_but_preserves_stored_ts(self):
        index = self.make(d=4, reshuffle=True)
        stored = {}
        for ts in range(1, 5):
            key = index.min_timestamp_key()
            index.record_access(key, ts)
            stored[key] = ts
        index.end_round(4)  # epoch complete -> reshuffle fires
        for key, ts in stored.items():
            assert index.stored_timestamp(key) == ts

    def test_round_robin_never_reshuffles(self):
        index = self.make(d=4, reshuffle=False)
        first_epoch = []
        for ts in range(1, 5):
            key = index.min_timestamp_key()
            first_epoch.append(key)
            index.record_access(key, ts)
            index.end_round(ts)
        second_epoch = []
        for ts in range(5, 9):
            key = index.min_timestamp_key()
            second_epoch.append(key)
            index.record_access(key, ts)
            index.end_round(ts)
        assert first_epoch == second_epoch  # strict round robin

    def test_swap_out_and_in(self):
        index = self.make(d=3)
        key = index.min_timestamp_key()
        ts = index.swap_out(key)
        assert ts == 0
        assert key not in index
        assert len(index) == 2
        index.swap_in("fresh", 9)
        assert index.stored_timestamp("fresh") == 9
        with pytest.raises(KeyError):
            index.swap_in("fresh", 10)

    def test_any_key(self):
        index = self.make(d=2)
        assert index.any_key() in index
