"""Edge paths of the quorum-replicated proxy and stale-snapshot promotion.

Complements ``tests/test_ha.py`` (happy paths and basic failure modes)
with the corners the chaos harness leans on: promotion at exactly the
quorum threshold, membership churn around failed standbys, pending
mutations captured inside standby snapshots, and what actually breaks
when a *stale* snapshot is promoted against a server that has moved on
(the scenario synchronous shipping exists to prevent).
"""

from __future__ import annotations

import random

import pytest

from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import pad_value
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.errors import (
    ConfigurationError,
    KeyNotFoundError,
    ProtocolError,
)
from repro.ha import HighlyAvailableProxy
from repro.ha.quorum import QuorumReplicatedProxy
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation
from tests.conftest import make_items

CONFIG = WaffleConfig(n=200, b=20, r=8, f_d=4, d=60, c=30,
                      value_size=64, seed=5)


def build_proxy():
    recorder = RecordingStore(RedisSim(write_once=True))
    proxy = WaffleProxy(CONFIG, store=recorder,
                        keychain=KeyChain.from_seed(6))
    proxy.initialize({k: pad_value(v, CONFIG.value_size)
                      for k, v in make_items(CONFIG.n).items()})
    return proxy


def read_batch(rng):
    return [ClientRequest(op=Operation.READ,
                          key=f"user{rng.randrange(CONFIG.n):08d}")
            for _ in range(CONFIG.r)]


class TestQuorumThresholds:
    def test_promotion_at_exact_threshold(self):
        # group=3, quorum=3: every member must hold the snapshot, so a
        # single standby failure stops the group...
        group = QuorumReplicatedProxy(build_proxy(), standbys=2, quorum=3)
        rng = random.Random(1)
        group.handle_batch(read_batch(rng))
        group.fail_standby(0)
        with pytest.raises(ProtocolError, match="quorum lost"):
            group.handle_batch(read_batch(rng))
        # ...but promotion still works off the surviving standby, and a
        # replacement restores the acknowledgement threshold exactly.
        group.fail_over()
        group.restore_standby(0)
        responses = group.handle_batch(read_batch(rng))
        assert len(responses) == CONFIG.r

    def test_quorum_equal_to_group_size_is_fragile_by_design(self):
        group = QuorumReplicatedProxy(build_proxy(), standbys=1, quorum=2)
        rng = random.Random(2)
        group.handle_batch(read_batch(rng))
        group.fail_standby(0)
        with pytest.raises(ProtocolError):
            group.handle_batch(read_batch(rng))

    def test_minority_quorum_rejected(self):
        with pytest.raises(ConfigurationError):
            QuorumReplicatedProxy(build_proxy(), standbys=2, quorum=4)
        with pytest.raises(ConfigurationError):
            QuorumReplicatedProxy(build_proxy(), standbys=2, quorum=0)


class TestStandbyChurn:
    def test_fail_standby_on_already_failed_raises(self):
        group = QuorumReplicatedProxy(build_proxy(), standbys=2)
        group.fail_standby(1)
        with pytest.raises(ProtocolError, match="already failed"):
            group.fail_standby(1)
        # The error did not corrupt membership: standby 0 still counts.
        assert group.alive_standbys == 1

    def test_restore_after_failover_tracks_new_primary(self):
        group = QuorumReplicatedProxy(build_proxy(), standbys=2)
        rng = random.Random(3)
        group.handle_batch(read_batch(rng))
        group.fail_standby(0)
        group.fail_over()
        group.handle_batch(read_batch(rng))
        # The replacement receives the *new* primary's state and is
        # immediately promotable.
        group.restore_standby(0)
        old_ts = group.proxy.ts
        group.fail_over()
        assert group.proxy.ts == old_ts
        assert len(group.handle_batch(read_batch(rng))) == CONFIG.r

    def test_restored_standby_snapshot_carries_pending_mutations(self):
        group = QuorumReplicatedProxy(build_proxy(), standbys=1)
        rng = random.Random(4)
        group.handle_batch(read_batch(rng))
        group.proxy.mutations.enqueue_insert(
            "brand-new", pad_value(b"v", CONFIG.value_size))
        group.fail_standby(0)
        group.restore_standby(0)
        # The promoted snapshot was captured after the enqueue.
        group.fail_over()
        assert group.proxy.mutations.has_insert("brand-new")
        assert not group.proxy.mutations.has_insert("never-seen")

    def test_failed_standby_does_not_ack(self):
        group = QuorumReplicatedProxy(build_proxy(), standbys=2)
        rng = random.Random(5)
        group.fail_standby(0)
        group.handle_batch(read_batch(rng))
        # Promotion must come from the standby that kept acknowledging,
        # not the failed one's empty blob.
        promoted = group.fail_over()
        assert promoted.ts == 1


class TestStaleSnapshotPromotion:
    def test_stale_promotion_rederives_consumed_ids(self):
        """Why interval=1 is the default: a stale snapshot deterministically
        replays storage ids the server already consumed and deleted."""
        proxy = build_proxy()
        ha = HighlyAvailableProxy(proxy, checkpoint_interval=3)
        rng = random.Random(6)
        batch = read_batch(rng)
        ha.handle_batch(batch)
        assert ha.standby_lag_batches == 1
        with pytest.raises(ProtocolError, match="lags"):
            ha.fail_over()
        stale = ha.fail_over(allow_stale=True)
        # The promoted proxy believes the batch never ran; re-running it
        # re-derives the same read ids, which the committed round already
        # deleted from the server.
        with pytest.raises(KeyNotFoundError):
            stale.handle_batch(batch)

    def test_synchronous_interval_promotion_replays_cleanly(self):
        """Control for the stale case: with interval=1 the same promotion
        plus replay is exactly the chaos harness's recovery path."""
        proxy = build_proxy()
        ha = HighlyAvailableProxy(proxy, checkpoint_interval=1)
        rng = random.Random(6)
        ha.handle_batch(read_batch(rng))
        promoted = ha.fail_over()
        batch = read_batch(rng)
        responses = promoted.handle_batch(batch)
        assert len(responses) == CONFIG.r
