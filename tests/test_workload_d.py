"""Tests for YCSB workload D (read-latest + inserts) and HotspotSampler."""

from collections import Counter

import pytest

from repro.analysis.uniformity import verify_storage_invariants
from repro.bench.harness import run_waffle_with_inserts
from repro.core.config import WaffleConfig
from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel
from repro.workloads import HotspotSampler, Operation, workload_d
from repro.workloads.ycsb import key_name


class TestHotspotSampler:
    def test_hot_set_dominates(self):
        sampler = HotspotSampler(1000, hot_fraction=0.2,
                                 hot_opn_fraction=0.8, seed=1)
        hits = sum(1 for _ in range(20_000)
                   if sampler.sample() < sampler.hot_keys)
        assert hits / 20_000 == pytest.approx(0.8, abs=0.02)

    def test_probability_sums_to_one(self):
        sampler = HotspotSampler(100, seed=2)
        assert sum(sampler.probability(i) for i in range(100)) == \
            pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HotspotSampler(0)
        with pytest.raises(ValueError):
            HotspotSampler(10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotSampler(10, hot_opn_fraction=1.5)


class TestLatestWorkload:
    def test_mix_is_95_5(self):
        workload = workload_d(500, seed=3, value_size=64)
        ops = Counter(req.op for req in workload.requests(4000))
        assert ops[Operation.READ] / 4000 == pytest.approx(0.95, abs=0.02)
        assert ops[Operation.INSERT] > 0

    def test_inserts_extend_keyspace_monotonically(self):
        workload = workload_d(100, seed=4, value_size=64)
        inserted = [req.key for req in workload.requests(2000)
                    if req.op is Operation.INSERT]
        assert inserted == sorted(inserted)
        assert inserted[0] == key_name(100)

    def test_reads_skew_to_latest(self):
        workload = workload_d(1000, seed=5, value_size=64)
        reads = [int(req.key[4:]) for req in workload.requests(8000)
                 if req.op is Operation.READ]
        newest_decile = sum(1 for idx in reads if idx >= 0.9 * 1000)
        assert newest_decile / len(reads) > 0.3

    def test_reads_always_hit_existing_records(self):
        workload = workload_d(50, seed=6, value_size=64)
        count = 50
        for req in workload.requests(3000):
            if req.op is Operation.INSERT:
                count += 1
            else:
                assert int(req.key[4:]) < count

    def test_invalid_read_proportion(self):
        from repro.workloads.ycsb import LatestWorkload
        with pytest.raises(ConfigurationError):
            LatestWorkload(10, read_proportion=1.5)


class TestWorkloadDAgainstWaffle:
    def test_insert_heavy_run_keeps_invariants(self):
        n = 300
        config = WaffleConfig(n=n, b=24, r=10, f_d=6, d=150, c=40,
                              value_size=128, seed=7)
        workload = workload_d(n, seed=8, value_size=100)
        items = dict(workload.initial_records())
        trace = workload.trace(1500)
        measurement, datastore = run_waffle_with_inserts(
            config, items, trace, CostModel(), record=True)
        assert measurement.extra["inserted"] > 0
        assert datastore.proxy.real_count == \
            n + measurement.extra["inserted"]
        verify_storage_invariants(datastore.recorder.records)
        # Inserted keys are readable.
        from repro.core.batch import ClientRequest
        inserted_key = key_name(n)  # the first insert
        response = datastore.execute_batch([
            ClientRequest(op=Operation.READ, key=inserted_key)])[0]
        assert response.value  # non-empty payload
