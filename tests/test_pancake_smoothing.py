"""Tests for Pancake's frequency-smoothing mathematics."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.pancake.smoothing import AliasSampler, SmoothedDistribution
from repro.errors import ConfigurationError


def zipf_pi(n: int, theta: float = 0.99) -> np.ndarray:
    weights = np.arange(1, n + 1, dtype=float) ** (-theta)
    return weights / weights.sum()


class TestAliasSampler:
    def test_uniform_weights(self):
        sampler = AliasSampler(np.ones(10), seed=1)
        counts = Counter(sampler.sample() for _ in range(20_000))
        for value in range(10):
            assert counts[value] / 20_000 == pytest.approx(0.1, rel=0.15)

    def test_skewed_weights(self):
        sampler = AliasSampler([8.0, 1.0, 1.0], seed=2)
        counts = Counter(sampler.sample() for _ in range(20_000))
        assert counts[0] / 20_000 == pytest.approx(0.8, rel=0.1)

    def test_zero_weight_never_sampled(self):
        sampler = AliasSampler([1.0, 0.0, 1.0], seed=3)
        assert 1 not in {sampler.sample() for _ in range(5000)}

    def test_invalid_weights(self):
        with pytest.raises(ConfigurationError):
            AliasSampler([])
        with pytest.raises(ConfigurationError):
            AliasSampler([-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            AliasSampler([0.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30)
           .filter(lambda w: sum(w) > 1e-9))
    def test_samples_in_range(self, weights):
        sampler = AliasSampler(weights, seed=4)
        assert all(0 <= sampler.sample() < len(weights) for _ in range(100))


class TestSmoothedDistribution:
    def test_replica_counts_formula(self):
        pi = zipf_pi(50)
        smoothing = SmoothedDistribution(pi, seed=1)
        expected = np.maximum(1, np.ceil(pi * 50)).astype(int)
        assert (smoothing.replicas == expected).all()

    def test_universe_padded_to_2n(self):
        smoothing = SmoothedDistribution(zipf_pi(64), seed=2)
        assert len(smoothing.universe) == 128
        assert smoothing.dummy_replicas == 128 - smoothing.replicas.sum()

    def test_fake_weights_sum_to_one(self):
        smoothing = SmoothedDistribution(zipf_pi(100), seed=3)
        assert smoothing.fake_weights.sum() == pytest.approx(1.0, abs=1e-6)

    def test_fake_weights_non_negative(self):
        smoothing = SmoothedDistribution(zipf_pi(100), seed=4)
        assert (smoothing.fake_weights >= 0).all()

    def test_per_replica_probability_uniform(self):
        """The core smoothing guarantee: every replica's stationary access
        probability equals 1/n̂ when the assumed π is correct."""
        n = 40
        smoothing = SmoothedDistribution(zipf_pi(n), seed=5)
        for key in (0, 1, n // 2, n - 1):
            for replica in range(smoothing.replica_count(key)):
                prob = smoothing.replica_access_probability(key, replica)
                assert prob == pytest.approx(1 / smoothing.n_hat, rel=1e-6)

    def test_pi_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            SmoothedDistribution([0.5, 0.1])

    def test_negative_pi_rejected(self):
        with pytest.raises(ConfigurationError):
            SmoothedDistribution([1.5, -0.5])

    def test_uniform_pi_single_replicas(self):
        smoothing = SmoothedDistribution(np.full(20, 0.05), seed=6)
        assert (smoothing.replicas == 1).all()

    def test_sample_fake_matches_weights(self):
        smoothing = SmoothedDistribution(zipf_pi(10), seed=7)
        counts = Counter(smoothing.sample_fake() for _ in range(30_000))
        # Dummy replicas carry weight 2/n̂ each; the hottest key's replicas
        # carry less.  Verify a dummy is sampled more often than the
        # hottest key's first replica.
        dummy_count = sum(v for (k, _), v in counts.items() if k < 0)
        expected_dummy = smoothing.dummy_replicas * 2 / smoothing.n_hat
        assert dummy_count / 30_000 == pytest.approx(expected_dummy, rel=0.1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 80), st.floats(0.0, 1.5))
    def test_smoothing_always_well_formed(self, n, theta):
        smoothing = SmoothedDistribution(zipf_pi(n, theta), seed=8)
        assert len(smoothing.universe) == 2 * n
        assert (smoothing.fake_weights >= 0).all()
        assert smoothing.fake_weights.sum() == pytest.approx(1.0, abs=1e-6)
