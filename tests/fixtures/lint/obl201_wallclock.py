"""Known-bad fixture: a wall-clock read (OBL201).

Wall-clock time makes chaos episodes non-replayable; protocol code must
use the sim clock (``time.perf_counter`` is allowed for local duration
measurement only).
"""

import time


def round_deadline(budget_s: float) -> float:
    return time.time() + budget_s
