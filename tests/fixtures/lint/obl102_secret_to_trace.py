# oblint-fixture-path: repro/core/planted.py
"""Known-bad fixture: a plaintext key is emitted into the trace stream.

Traces are exportable (JSONL, Prometheus) and must stay key-neutral;
logging the plaintext key re-creates the leak the datastore exists to
prevent (OBL102).
"""

from typing import Any


def leak_trace(obs: Any, key: str) -> None:
    obs.event("round.read", key=key)
