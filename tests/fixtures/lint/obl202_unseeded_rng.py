"""Known-bad fixture: an unseeded ``random.Random()`` (OBL202).

Drawing from OS entropy breaks deterministic replay; RNGs must be
seeded explicitly (see ``repro.seeding.seeded_rng``).
"""

import random


def make_rng() -> random.Random:
    return random.Random()
