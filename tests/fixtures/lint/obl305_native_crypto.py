"""Known-bad fixture: native crypto import outside ``crypto/`` (OBL305).

Native wheels are optional; only ``repro.crypto.backend`` may import
them, so the availability probe, the graceful pure fallback, and the
known-answer parity oracle always apply.
"""

from cryptography.hazmat.primitives import hashes


def fingerprint(data: bytes) -> bytes:
    digest = hashes.Hash(hashes.SHA256())
    digest.update(data)
    return digest.finalize()
