"""Known-bad fixture: ``print()`` outside the CLI/dashboard (OBL303).

Library code reports through the observability export path
(``repro.obs.export``) so output is capturable and metered.
"""


def report(lines: list[str]) -> None:
    for line in lines:
        print(line)
