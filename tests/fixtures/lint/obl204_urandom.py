"""Known-bad fixture: ``os.urandom`` outside ``repro/crypto/`` (OBL204).

OS entropy outside the crypto package cannot be replayed by the chaos
harness; non-crypto code takes bytes from a seeded RNG instead.
"""

import os


def fresh_token() -> bytes:
    return os.urandom(16)
