# oblint-fixture-path: repro/core/planted.py
"""Known-bad fixture: core code constructing a concrete backend (OBL301).

Protocol code must speak to storage through the injected
``RecordingStore``/``StorageBackend`` seam — constructing ``RedisSim``
directly bypasses the adversary-view recording that the security
arguments audit.
"""

from repro.storage.redis_sim import RedisSim


def rogue_backend() -> RedisSim:
    return RedisSim()
