# oblint-fixture-path: repro/crypto/planted.py
"""Known-bad fixture: unannotated function in a mypy-strict-gated package.

``repro/crypto/`` is inside the strict typing gate; a def with bare
parameters and no return type would fail ``mypy --strict``, and OBL501
mirrors that contract where mypy is not installed (OBL501).
"""


def stretch(material, rounds):
    return material * rounds
