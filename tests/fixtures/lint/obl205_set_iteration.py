"""Known-bad fixture: hash-order-dependent iteration over a set (OBL205).

Python string hashing is salted per process, so iterating a set of ids
yields a different order every run — any derived sequence (batch
layout, trace, report) silently loses determinism.
"""


def collect_ids() -> list[str]:
    pending = {"id-a", "id-b", "id-c"}
    out: list[str] = []
    for storage_id in pending:
        out.append(storage_id)
    return out
