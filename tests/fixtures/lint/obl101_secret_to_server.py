# oblint-fixture-path: repro/core/planted.py
"""Known-bad fixture: a plaintext key flows into a server-visible id.

This is the planted Theorem 5.1 violation: the storage id handed to the
server is derived from the plaintext key without passing through
``crypto.prf``, so the adversary-visible access sequence depends on the
query distribution (OBL101).
"""

from typing import Any


def leak_read(store: Any, key: str) -> bytes:
    storage_id = "blk:" + key
    value: bytes = store.get(storage_id)
    return value
