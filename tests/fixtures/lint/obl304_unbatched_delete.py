# oblint-fixture-path: repro/core/planted.py
"""Known-bad fixture: a store delete outside ``commit_round`` (OBL304).

Deletes that bypass the batched commit are visible to the adversary as
a lone, timing-distinguishable write — round mutations must go through
the ``commit_round(deletes, puts)`` contract.
"""

from typing import Any


def purge(store: Any, storage_id: str) -> None:
    store.delete(storage_id)
