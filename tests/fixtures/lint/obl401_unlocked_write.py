"""Known-bad fixture: lock-owning class mutating state lock-free (OBL401).

The class creates ``self._lock`` in ``__init__``, so every mutation of
its shared attributes outside a ``with self._lock:`` block is a planted
race — the lock-bypass write the concurrency pass must catch.
"""

import threading


class SharedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def bump(self) -> None:
        self.count += 1

    def bump_safely(self) -> None:
        with self._lock:
            self.count += 1
