"""Known-bad fixture: a suppression comment that gives no reason.

Every ``oblint: disable`` must say *why* the violation is safe; a bare
suppression is itself a finding (OBL001) so reviewers never meet an
unexplained escape hatch.
"""

BATCH_SIZE = 512  # oblint: disable=OBL201
