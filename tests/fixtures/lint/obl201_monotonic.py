"""Known-bad fixture: a raw monotonic read outside ``obs/`` (OBL201).

``time.monotonic`` is not wall-clock time, but it is still host time:
protocol code that branches on it stops replaying under the chaos
harness.  Observation timestamps must go through the sanctioned
``repro.obs.clock()`` funnel (itself allowed only inside ``obs/`` and
``analysis/``); protocol time comes from the sim clock.
"""

import time


def round_release_instant() -> float:
    return time.monotonic()
