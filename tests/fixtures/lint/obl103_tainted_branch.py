# oblint-fixture-path: repro/core/planted.py
"""Known-bad fixture: server I/O guarded by a key-dependent branch.

Whether the server round-trip happens at all reveals the predicate —
the classic data-dependent-branch failure class (OBL103).
"""

from typing import Any


def branchy_read(store: Any, key: str, hot_key: str) -> bytes | None:
    if key == hot_key:
        result: bytes = store.get("fixed-id")
        return result
    return None
