"""Known-bad fixture: a call through the module-level RNG (OBL203).

``random.random()`` shares one global generator across every component,
so draws interleave unpredictably between threads and test orderings.
"""

import random


def jitter() -> float:
    return random.random()
