"""Known-bad fixture: a suppression naming a rule id that does not exist.

Typos in suppressions would otherwise silently suppress nothing while
looking intentional (OBL002).
"""

BATCH_SIZE = 512  # oblint: disable=OBL999 -- misspelled rule id
