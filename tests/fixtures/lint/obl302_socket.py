"""Known-bad fixture: raw socket use outside ``repro/net/`` (OBL302).

All wire I/O goes through the net package so the chaos harness can
interpose on every connection.
"""

import socket


def dial(host: str, port: int) -> socket.socket:
    return socket.create_connection((host, port))
