"""The zero-cost-when-disabled contract of the observability layer.

A naive A/B wall-clock comparison (run ``handle_batch`` with obs off
twice and demand <3% delta) flakes on shared CI machines, because 3% is
well inside scheduler noise.  Instead this file pins the contract the
way it is actually guaranteed:

* architecturally — the disabled path allocates nothing, records nothing
  and returns a shared singleton span; and
* arithmetically — the measured cost of one ``if OBS.enabled`` guard,
  multiplied by a *generous* over-estimate of guards per round, stays
  under 3% of a measured round's wall time.

Both facts are noise-robust: the first is exact, the second compares a
nanosecond-scale branch against a millisecond-scale round.
"""

import time

from repro import obs
from repro.core.config import WaffleConfig
from repro.crypto.keys import KeyChain
from repro.obs.trace import NULL_SPAN
from repro.sim.perf import _build_proxy, _request_stream


def test_disabled_span_is_shared_singleton():
    obs.disable()
    assert obs.OBS.span("round") is NULL_SPAN
    assert obs.OBS.span("phase.derive", writes=64) is NULL_SPAN


def test_disabled_round_records_nothing():
    """A full instrumented round with obs off must not touch the
    registry or the tracer — not even to create empty series."""
    obs.enable()  # fresh registry/tracer...
    obs.disable()  # ...then off
    config = WaffleConfig.paper_defaults(n=256, seed=7)
    proxy = _build_proxy(config, KeyChain.from_seed(7))
    for batch in _request_stream(config, 3, 7):
        proxy.handle_batch(batch)
    assert len(obs.OBS.registry) == 0
    assert obs.OBS.tracer.records == []


def test_disabled_guard_overhead_under_three_percent():
    """guard_cost x guards_per_round < 3% of one round's wall time.

    Guards per round is over-counted on purpose: 8 phase checks plus the
    per-round counter block, ~8 kernel-wrapper checks, and up to four
    per-access checks for every one of the B reads and B+ writes
    (recording + storage command layers) — even though this test's proxy
    runs on an uninstrumented in-memory store, so the true count is far
    lower.
    """
    obs.disable()
    handle = obs.OBS

    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        if handle.enabled:  # the guard under test, never taken
            raise AssertionError("observability must be disabled here")
    per_guard = (time.perf_counter() - start) / reps

    config = WaffleConfig.paper_defaults(n=512, seed=13)
    proxy = _build_proxy(config, KeyChain.from_seed(13))
    best_round = float("inf")
    for batch in _request_stream(config, 8, 13):
        t0 = time.perf_counter()
        proxy.handle_batch(batch)
        best_round = min(best_round, time.perf_counter() - t0)

    guards_per_round = 8 * config.b + 64
    overhead = per_guard * guards_per_round
    assert overhead < 0.03 * best_round, (
        f"disabled-observability guard budget blown: {overhead * 1e6:.2f}us "
        f"predicted over {guards_per_round} guards vs round "
        f"{best_round * 1e6:.2f}us"
    )
