"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.visualize import line_chart, scatter_plot
from repro.errors import ConfigurationError


class TestLineChart:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"a": []})

    def test_single_series_renders(self):
        chart = line_chart({"throughput": [(1, 10.0), (2, 20.0), (4, 15.0)]},
                           title="Figure 2c")
        assert "Figure 2c" in chart
        assert "*" in chart
        assert "20" in chart  # y-max label

    def test_multiple_series_distinct_markers(self):
        chart = line_chart({
            "des": [(1, 1.0), (4, 2.0)],
            "analytic": [(1, 1.0), (4, 1.8)],
        })
        assert "*" in chart and "o" in chart
        assert "*=des" in chart and "o=analytic" in chart

    def test_extremes_plotted_at_edges(self):
        chart = line_chart({"s": [(0, 0.0), (10, 100.0)]}, width=20,
                           height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("*")    # max lands top-right
        assert rows[-1].split("|")[1][0] == "*"  # min lands bottom-left

    def test_monotone_series_renders_monotone(self):
        points = [(i, float(i)) for i in range(10)]
        chart = line_chart({"linear": points}, width=30, height=10)
        rows = [line.split("|")[1] for line in chart.splitlines()
                if "|" in line]
        columns = [row.index("*") for row in rows if "*" in row]
        assert columns == sorted(columns, reverse=True)


class TestScatter:
    def test_scatter_renders(self):
        chart = scatter_plot([(585, 1579), (2048, 8666)],
                             title="Figure 6",
                             x_label="alpha", y_label="ops")
        assert "Figure 6" in chart
        assert "alpha" in chart
