"""Tests for the span-tree profiler (build, render, snapshot, proxy)."""

import json

import pytest

from repro import obs
from repro.obs.profile import (
    ProfileNode,
    build_profile,
    profile_snapshot,
    render_profile,
)
from repro.obs.trace import Tracer


def _records_from(tracer):
    return tracer.records


class TestBuildProfile:
    def test_folds_nested_spans_by_tree_position(self):
        tracer = Tracer()
        for _ in range(3):
            round_tok = tracer.open_span("round", root=True)
            plan = tracer.open_span("phase.plan")
            tracer.record_span("parallel.chunk", 0.01)
            tracer.close_span(plan, 0.03)
            tracer.close_span(round_tok, 0.05)
        root = build_profile(_records_from(tracer))
        assert set(root.children) == {"round"}
        round_node = root.children["round"]
        assert round_node.count == 3
        assert round_node.total == pytest.approx(0.15)
        plan_node = round_node.children["phase.plan"]
        assert plan_node.count == 3
        chunk_node = plan_node.children["parallel.chunk"]
        assert chunk_node.count == 3
        assert chunk_node.total == pytest.approx(0.03)

    def test_same_name_at_different_positions_stays_separate(self):
        tracer = Tracer()
        round_tok = tracer.open_span("round", root=True)
        io = tracer.open_span("phase.server_io")
        tracer.close_span(io, 0.01)
        tracer.close_span(round_tok, 0.02)
        tracer.record_span("phase.server_io", 0.5)  # top-level orphan
        root = build_profile(_records_from(tracer))
        assert root.children["round"].children["phase.server_io"].total \
            == pytest.approx(0.01)
        assert root.children["phase.server_io"].total == pytest.approx(0.5)

    def test_missing_parent_treated_as_root_not_lost(self):
        records = [
            {"kind": "span", "name": "stranded", "dur": 0.2,
             "span_id": 7, "parent": 99, "attrs": {}},
        ]
        root = build_profile(records)
        assert root.children["stranded"].total == pytest.approx(0.2)

    def test_events_are_ignored(self):
        tracer = Tracer()
        tracer.event("storage.access", op="read")
        tracer.record_span("round", 0.1)
        root = build_profile(_records_from(tracer))
        assert set(root.children) == {"round"}

    def test_node_to_dict_is_jsonable(self):
        node = ProfileNode("round")
        node.count = 2
        node.total = 0.5
        child = node.children["phase.plan"] = ProfileNode("phase.plan")
        child.count = 2
        child.total = 0.25
        out = json.loads(json.dumps(node.to_dict()))
        assert out["count"] == 2
        assert out["children"]["phase.plan"]["seconds"] == 0.25


class TestRenderAndSnapshot:
    def _traced_run(self):
        with obs.capture() as handle:
            round_tok = handle.open_span("round", root=True)
            plan = handle.open_span("phase.plan")
            handle.close_span(plan, 0.03, labels={"system": "waffle"})
            handle.close_span(round_tok, 0.05, labels={"system": "waffle"})
        return handle

    def test_render_contains_tree_and_phase_table(self):
        handle = self._traced_run()
        text = render_profile(handle.registry, handle.tracer.records)
        assert "round" in text
        assert "phase.plan" in text
        assert "per-phase latency" in text
        assert "p99" in text

    def test_render_without_spans_says_so(self):
        registry = obs.MetricsRegistry()
        text = render_profile(registry, [])
        assert "no span records" in text

    def test_snapshot_round_trips_through_json(self):
        handle = self._traced_run()
        snap = profile_snapshot(handle.registry, handle.tracer.records)
        restored = json.loads(json.dumps(snap))
        assert restored["schema"] == "repro.profile/1"
        assert restored["tree"]["round"]["children"]["phase.plan"]["count"] \
            == 1
        assert restored["phases"]["round"]["count"] == 1
        assert restored["phases"]["phase.plan"]["count"] == 1


class TestProxyIntegration:
    @pytest.fixture(scope="class")
    def traced_proxy_run(self):
        from repro.core.batch import ClientRequest, Operation
        from repro.core.config import WaffleConfig
        from repro.core.datastore import WaffleDatastore
        from repro.crypto.keys import KeyChain

        config = WaffleConfig.paper_defaults(n=128, seed=3)
        items = {f"user{i:04d}": b"v" * 32 for i in range(128)}
        with obs.capture() as handle:
            datastore = WaffleDatastore(config, items,
                                        keychain=KeyChain.from_seed(3))
            keys = sorted(items)
            for i in range(4):
                datastore.execute_batch([
                    ClientRequest(op=Operation.READ,
                                  key=keys[(i * 7 + j) % len(keys)])
                    for j in range(config.r)])
        return handle

    def test_phases_parent_under_round(self, traced_proxy_run):
        handle = traced_proxy_run
        round_ids = {r["span_id"] for r in handle.tracer.spans("round")}
        assert len(round_ids) == 4
        for phase in ("phase.plan", "phase.server_io", "phase.decrypt",
                      "phase.cache", "phase.evict", "phase.derive"):
            spans = handle.tracer.spans(phase)
            assert spans, f"no {phase} spans"
            assert all(span["parent"] in round_ids for span in spans), phase

    def test_profile_tree_decomposes_round_time(self, traced_proxy_run):
        handle = traced_proxy_run
        root = build_profile(handle.tracer.records)
        round_node = root.children["round"]
        assert round_node.count == 4
        # Phase inclusive time is bounded by (and most of) the round.
        assert 0 < round_node.child_total <= round_node.total
        text = render_profile(handle.registry, handle.tracer.records)
        assert "phase.decrypt" in text
        assert "phase.server_io[dir=read]" in text
