"""Cross-process telemetry: worker deltas, piggyback transport, lifecycle.

Covers the PR-7 tentpole end to end: pool workers accumulate metric and
span deltas in a local :class:`TelemetryBuffer`, ship them piggybacked
on response frames, and the coordinator merges them under
``worker``-labelled ``parallel.worker.*`` names with worker-side spans
hung beneath the coordinator-side chunk spans.  Also pins the OBS
lifecycle across the pool: workers force their inherited handle off
without clobbering the coordinator's registry or tracer, and telemetry
survives a detach/re-attach cycle.
"""

import json

import pytest

from repro import obs
from repro.crypto.keys import KeyChain
from repro.obs.delta import (
    TelemetryBuffer,
    decode_delta,
    encode_delta,
    merge_delta,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.parallel import PooledCipher, PooledPrf, WorkerPool
from repro.parallel.worker import init_worker


@pytest.fixture
def pool():
    with WorkerPool(2, min_batch=1) as p:
        yield p


def _pooled_derive(pool, items=64):
    chain = KeyChain.from_seed(5)
    prf = PooledPrf(chain.prf, pool)
    return prf.derive_many([(f"key{i:04d}", i) for i in range(items)])


class TestTelemetryBuffer:
    def test_accumulates_and_drains(self):
        buf = TelemetryBuffer()
        assert not buf
        buf.inc("parallel.worker.chunks.total", 1, kind="derive")
        buf.inc("parallel.worker.chunks.total", 1, kind="derive")
        buf.observe("parallel.worker.chunk.seconds", 0.001, kind="derive")
        buf.span("parallel.worker.chunk", 0.001, kind="derive", items=4)
        assert buf
        delta = buf.drain()
        assert delta["counters"] == [
            ["parallel.worker.chunks.total", {"kind": "derive"}, 2]]
        assert delta["observations"] == [
            ["parallel.worker.chunk.seconds", {"kind": "derive"}, [0.001]]]
        assert delta["spans"] == [
            ["parallel.worker.chunk", 0.001, {"kind": "derive", "items": 4}]]

    def test_drain_resets_for_exactly_once_shipping(self):
        buf = TelemetryBuffer()
        buf.inc("x", 3)
        buf.drain()
        assert not buf
        assert buf.drain() == {"counters": [], "observations": [],
                               "spans": []}

    def test_codec_round_trips(self):
        buf = TelemetryBuffer()
        buf.inc("c", 2, kind="encrypt")
        buf.observe("h", 0.5)
        frame = encode_delta(buf.drain(), "1234")
        decoded = decode_delta(frame)
        assert decoded["worker"] == "1234"
        assert decoded["counters"] == [["c", {"kind": "encrypt"}, 2]]
        assert decoded["observations"] == [["h", {}, [0.5]]]

    def test_merge_labels_metrics_with_worker_and_parents_spans(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        parent = tracer.record_span("parallel.chunk", 0.01, kind="derive")
        buf = TelemetryBuffer()
        buf.inc("parallel.worker.items.total", 7, kind="derive")
        buf.observe("parallel.worker.chunk.seconds", 0.002, kind="derive")
        buf.span("parallel.worker.chunk", 0.002, kind="derive", items=7)
        merge_delta(registry, tracer,
                    decode_delta(encode_delta(buf.drain(), "42")),
                    parent=parent)
        counter = registry.counter("parallel.worker.items.total",
                                   kind="derive", worker="42")
        assert counter.value == 7
        (span,) = tracer.spans("parallel.worker.chunk")
        assert span["parent"] == parent
        assert span["attrs"]["worker"] == "42"

    def test_merge_is_pure_increment(self):
        """Two deltas with the same labels accumulate — the property that
        makes a lost (killed-worker) delta an undercount, never a
        double count."""
        registry = MetricsRegistry()
        tracer = Tracer()
        for _ in range(2):
            buf = TelemetryBuffer()
            buf.inc("parallel.worker.chunks.total", 1, kind="derive")
            merge_delta(registry, tracer,
                        decode_delta(encode_delta(buf.drain(), "9")))
        assert registry.counter("parallel.worker.chunks.total",
                                kind="derive", worker="9").value == 2


class TestPooledTelemetry:
    def test_disabled_run_ships_no_telemetry(self, pool):
        obs.enable()  # reset to a fresh registry/tracer...
        obs.disable()  # ...then switch off
        _pooled_derive(pool)
        assert len(obs.OBS.registry) == 0
        assert obs.OBS.tracer.records == []

    def test_worker_metrics_merge_with_worker_labels(self, pool):
        with obs.capture() as handle:
            _pooled_derive(pool)
        merged = {
            name: dict(labels)
            for name, labels, _ in handle.registry
            if name.startswith("parallel.worker.")
        }
        assert merged, "no parallel.worker.* metrics arrived"
        names = set(merged)
        assert "parallel.worker.chunks.total" in names
        assert "parallel.worker.items.total" in names
        assert "parallel.worker.chunk.seconds" in names
        assert all("worker" in labels for labels in merged.values())
        # Every shipped item is accounted for exactly once.
        total_items = sum(
            metric.value for name, labels, metric in handle.registry
            if name == "parallel.worker.items.total")
        assert total_items == 64

    def test_worker_spans_parent_under_chunk_spans(self, pool):
        with obs.capture() as handle:
            _pooled_derive(pool)
        chunk_ids = {r["span_id"]
                     for r in handle.tracer.spans("parallel.chunk")}
        worker_spans = handle.tracer.spans("parallel.worker.chunk")
        assert worker_spans
        assert all(span["parent"] in chunk_ids for span in worker_spans)
        # One coordinator-side chunk span per worker-side chunk span:
        # deltas merged exactly once.
        assert len(worker_spans) == len(chunk_ids)
        chunks_counted = sum(
            metric.value for name, _, metric in handle.registry
            if name == "parallel.worker.chunks.total")
        assert chunks_counted == len(worker_spans)

    def test_pipe_transport_ships_telemetry_too(self):
        with WorkerPool(2, min_batch=1, transport="pipe") as pipe_pool:
            with obs.capture() as handle:
                _pooled_derive(pipe_pool)
        assert any(name == "parallel.worker.chunks.total"
                   for name, _, _ in handle.registry)

    def test_encrypt_and_decrypt_paths_ship_telemetry(self, pool):
        chain = KeyChain.from_seed(6)
        cipher = PooledCipher(chain.cipher, pool)
        with obs.capture() as handle:
            blobs = cipher.encrypt_many([b"v%03d" % i for i in range(48)])
            cipher.decrypt_many(blobs)
        kinds = {
            dict(labels).get("kind")
            for name, labels, _ in handle.registry
            if name == "parallel.worker.chunks.total"
        }
        assert kinds == {"encrypt", "decrypt"}

    def test_trace_jsonl_stays_valid_and_seq_monotone(self, pool, tmp_path):
        path = tmp_path / "pooled.jsonl"
        obs.enable(trace_path=str(path))
        try:
            _pooled_derive(pool)
        finally:
            obs.disable()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines
        seqs = [line["seq"] for line in lines]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert any(line.get("name") == "parallel.worker.chunk"
                   for line in lines)


class TestObsLifecycleAcrossPool:
    def test_init_worker_forces_off_without_clobbering_handles(self):
        """A forked worker inherits ``enabled=True``; init_worker must
        switch it off while leaving the registry and tracer objects —
        shared with the coordinator pre-fork — untouched."""
        obs.enable()
        registry = obs.OBS.registry
        tracer = obs.OBS.tracer
        registry.counter("pre.fork").inc()
        try:
            init_worker()
            assert obs.OBS.enabled is False
            assert obs.OBS.registry is registry
            assert obs.OBS.tracer is tracer
            assert registry.counter("pre.fork").value == 1
        finally:
            obs.disable()

    def test_detach_and_reattach_restores_telemetry(self, pool):
        from repro.parallel import attach_pool, detach_pool

        proxy = type("P", (), {})()
        proxy.keychain = KeyChain.from_seed(7)
        attach_pool(proxy, pool)
        detach_pool(proxy)
        # Detached: plain kernels, no pool traffic, no telemetry.
        with obs.capture() as handle:
            proxy.keychain.prf.derive_many([("k", 1)] * 8)
        assert not any(name.startswith("parallel.")
                       for name, _, _ in handle.registry)
        # Re-attached: telemetry flows again.
        attach_pool(proxy, pool)
        with obs.capture() as handle:
            proxy.keychain.prf.derive_many(
                [(f"k{i}", i) for i in range(32)])
        assert any(name == "parallel.worker.chunks.total"
                   for name, _, _ in handle.registry)

    def test_mid_run_enable_is_honored_per_dispatch(self, pool):
        """The telemetry flag is read from OBS.enabled at dispatch time,
        not frozen at pool construction."""
        obs.disable()
        _pooled_derive(pool)  # cold run, telemetry off
        with obs.capture() as handle:
            _pooled_derive(pool)  # same pool, telemetry on
        assert any(name == "parallel.worker.chunks.total"
                   for name, _, _ in handle.registry)
