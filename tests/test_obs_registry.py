"""Tests for the metrics registry (counters, gauges, histograms)."""

import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_name,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == 7.0


class TestHistogramReservoir:
    def test_exact_percentiles_small_n(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.mean == pytest.approx(50.5)
        assert hist.percentile(0.50) == 50.0
        assert hist.percentile(0.99) == 99.0
        assert hist.min == 1.0 and hist.max == 100.0

    def test_reservoir_bounds_memory(self):
        hist = Histogram(reservoir_size=64)
        for value in range(10_000):
            hist.observe(float(value))
        assert hist.count == 10_000
        assert len(hist._samples) == 64
        # The sample stays representative: median within the bulk.
        assert 1_000 < hist.percentile(0.5) < 9_000

    def test_reservoir_rng_is_private(self):
        """Observing must not consume draws from the global rng
        (trace-neutrality: instrumentation cannot perturb workloads)."""
        import random

        random.seed(123)
        expected = random.random()
        random.seed(123)
        hist = Histogram(reservoir_size=2)
        for value in range(1000):
            hist.observe(float(value))
        assert random.random() == expected

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.percentile(0.99) == 0.0
        assert hist.mean == 0.0
        assert hist.snapshot()["count"] == 0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)


class TestHistogramBuckets:
    def test_cumulative_bucket_counts(self):
        hist = Histogram(mode="buckets", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        counts = dict(hist.bucket_counts())
        assert counts[1.0] == 1
        assert counts[10.0] == 3
        assert counts[100.0] == 4
        assert counts[math.inf] == 5

    def test_percentile_resolves_to_bucket_bound(self):
        hist = Histogram(mode="buckets", buckets=(1.0, 10.0))
        for _ in range(9):
            hist.observe(0.5)
        hist.observe(5.0)
        assert hist.percentile(0.5) == 1.0
        assert hist.percentile(0.99) == 10.0

    def test_bucket_counts_rejected_for_reservoir(self):
        with pytest.raises(ValueError):
            Histogram().bucket_counts()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Histogram(mode="tdigest")


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("requests.total", system="waffle")
        b = registry.counter("requests.total", system="waffle")
        assert a is b

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("requests.total", system="waffle").inc(3)
        registry.counter("requests.total", system="pancake").inc(5)
        snap = registry.snapshot()["counters"]
        assert snap["requests.total{system=pancake}"] == 5
        assert snap["requests.total{system=waffle}"] == 3

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", a="1", b="2")
        b = registry.counter("x", b="2", a="1")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric.name")
        with pytest.raises(ValueError):
            registry.gauge("metric.name")
        with pytest.raises(ValueError):
            registry.histogram("metric.name")

    def test_iteration_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        names = [name for name, _, _ in registry]
        assert names == sorted(names)

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2}
        assert snap["histograms"]["h"]["count"] == 1

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.clear()
        assert len(registry) == 0

    def test_render_name(self):
        assert render_name("plain", ()) == "plain"
        assert render_name("x", (("a", "1"),)) == "x{a=1}"


class TestSubMillisecondBuckets:
    """The fixed bucket preset the worker-telemetry merge uses."""

    def test_strictly_ascending(self):
        from repro.obs.registry import SUB_MS_BUCKETS

        assert list(SUB_MS_BUCKETS) == sorted(SUB_MS_BUCKETS)
        assert len(set(SUB_MS_BUCKETS)) == len(SUB_MS_BUCKETS)

    def test_covers_microseconds_to_seconds(self):
        from repro.obs.registry import SUB_MS_BUCKETS

        assert SUB_MS_BUCKETS[0] <= 1e-6
        assert SUB_MS_BUCKETS[-1] >= 1.0
        # Sub-millisecond resolution: at least 8 bounds under 1 ms, so
        # worker chunk timings (tens to hundreds of µs) do not all land
        # in one bucket the way DEFAULT_BUCKETS would put them.
        assert sum(1 for b in SUB_MS_BUCKETS if b < 1e-3) >= 8

    def test_resolves_worker_chunk_scale_timings(self):
        from repro.obs.registry import SUB_MS_BUCKETS

        hist = Histogram(mode="buckets", buckets=SUB_MS_BUCKETS)
        for value in (50e-6, 200e-6, 900e-6):
            hist.observe(value)
        assert hist.count == 3
        assert 0 < hist.percentile(0.5) < 1e-3
