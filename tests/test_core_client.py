"""Tests for the buffered client facade."""

import pytest

from repro.core.client import WaffleClient
from repro.errors import ProtocolError


@pytest.fixture
def client(small_datastore) -> WaffleClient:
    return WaffleClient(small_datastore)


class TestBuffering:
    def test_results_pending_until_flush(self, client):
        result = client.get("user00000001")
        assert not result.done
        with pytest.raises(ProtocolError):
            _ = result.value
        client.flush()
        assert result.done
        assert result.value == b"value-1"

    def test_auto_flush_at_r_requests(self, client):
        r = client.datastore.config.r
        results = [client.get(f"user{i:08d}") for i in range(r)]
        assert all(result.done for result in results)
        assert len(client) == 0

    def test_flush_empty_is_noop(self, client):
        assert client.flush() == 0
        assert client.datastore.proxy.totals.rounds == 0

    def test_partial_flush(self, client):
        client.get("user00000001")
        client.get("user00000002")
        assert client.flush() == 2

    def test_put_then_get_ordering(self, client):
        put = client.put("user00000001", b"NEW")
        get = client.get("user00000001")
        client.flush()
        assert put.value == b"NEW"
        assert get.value == b"NEW"


class TestImmediateApi:
    def test_get_now(self, client):
        assert client.get_now("user00000005") == b"value-5"

    def test_put_now_then_get_now(self, client):
        client.put_now("user00000005", b"X")
        assert client.get_now("user00000005") == b"X"

    def test_get_now_flushes_pending(self, client):
        pending = client.get("user00000001")
        value = client.get_now("user00000002")
        assert value == b"value-2"
        assert pending.done  # swept up in the same flush
