"""The multi-core round engine (`repro.parallel`).

The contract under test is DESIGN.md §10's determinism guarantee:
parallel execution is a pure wall-clock optimization, byte-invisible on
the adversary channel and in client responses.  Pooled kernels must
produce exactly the inline kernels' output (including the AEAD rng
stream), the pipelined store must present the serial operation order to
the backend, shard-parallel partitions must match their serial twins,
and checkpoints must reduce pooled wrappers back to plain kernels.

A single two-worker pool (``min_batch=1``, forcing even tiny batches
through the chunked dispatch path) is shared module-wide: forking
workers per test would dominate the suite's runtime, and sharing also
exercises the key-agnostic worker cache across keychains.
"""

from __future__ import annotations

import hashlib
import pickle
import random

import pytest

from repro import obs
from repro.core.config import WaffleConfig
from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf
from repro.parallel import (
    PipelinedStore,
    PooledCipher,
    PooledPrf,
    WorkerPool,
    attach_pool,
    detach_pool,
)
from repro.parallel.worker import pack_frames, unpack_frames
from repro.sim.perf import (
    _build_proxy,
    _request_stream,
    _trace_digest,
    compare_shard_traces,
)
from repro.storage.memory import InMemoryStore


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(2, min_batch=1) as shared:
        yield shared


def _run_rounds(proxy, rounds: int = 3, seed: int = 11) -> str:
    responses = hashlib.sha256()
    config = proxy.config
    for batch in _request_stream(config, rounds, seed):
        for resp in proxy.handle_batch(batch):
            responses.update(resp.key.encode() + b"\x00" + resp.value)
    return responses.hexdigest()


def _small_config(seed: int = 11) -> WaffleConfig:
    return WaffleConfig(n=96, b=16, r=6, f_d=3, d=12, c=24,
                        value_size=128, seed=seed)


class TestFrames:
    def test_pack_unpack_roundtrip(self):
        frames = [b"", b"x", b"hello" * 100, bytes(range(256))]
        assert unpack_frames(pack_frames(frames)) == frames

    def test_empty_payload(self):
        assert unpack_frames(pack_frames([])) == []


class TestPooledKernels:
    def test_pooled_prf_matches_inline(self, pool):
        inline = Prf(b"prf-secret-for-parallel-test")
        pooled = PooledPrf(Prf(b"prf-secret-for-parallel-test"), pool)
        pairs = [(f"user{i:08d}", i * 7 + 3) for i in range(97)]
        assert pooled.derive_many(pairs) == inline.derive_many(pairs)
        # Scalar passthroughs hit the inner kernel directly.
        assert pooled.derive("k", 5) == inline.derive("k", 5)
        assert pooled.derive_bytes(b"sub") == inline.derive_bytes(b"sub")

    def test_pooled_encrypt_is_byte_identical(self, pool):
        # Two ciphers with identically-seeded nonce rngs; the pooled
        # cipher must consume its stream draw-for-draw like inline.
        inline = KeyChain.from_seed(41, rng=random.Random(99)).cipher
        pooled = PooledCipher(
            KeyChain.from_seed(41, rng=random.Random(99)).cipher, pool)
        plaintexts = [b"%04d" % i + b"." * 60 for i in range(80)]
        expected = inline.encrypt_many(plaintexts)
        assert pooled.encrypt_many(plaintexts) == expected
        # And again: the streams must still agree after one batch.
        assert pooled.encrypt_many(plaintexts) == \
            inline.encrypt_many(plaintexts)

    def test_pooled_decrypt_roundtrip(self, pool):
        cipher = KeyChain.from_seed(42).cipher
        pooled = PooledCipher(cipher, pool)
        plaintexts = [b"secret-%05d" % i for i in range(64)]
        blobs = cipher.encrypt_many(plaintexts)
        assert pooled.decrypt_many(blobs) == plaintexts

    def test_worker_exception_propagates(self, pool):
        cipher = KeyChain.from_seed(43).cipher
        pooled = PooledCipher(cipher, pool)
        blobs = cipher.encrypt_many([b"x" * 32 for _ in range(8)])
        tampered = blobs[:3] + [blobs[3][:-1] + bytes([blobs[3][-1] ^ 1])] \
            + blobs[4:]
        with pytest.raises(Exception):
            pooled.decrypt_many(tampered)

    def test_small_batches_stay_inline(self):
        with WorkerPool(2, min_batch=64) as lazy:
            assert not lazy.offloads(10)
            assert lazy.offloads(64)
            inline = KeyChain.from_seed(44, rng=random.Random(7)).cipher
            pooled = PooledCipher(
                KeyChain.from_seed(44, rng=random.Random(7)).cipher, lazy)
            plaintexts = [b"tiny-%d" % i for i in range(3)]
            assert pooled.encrypt_many(plaintexts) == \
                inline.encrypt_many(plaintexts)

    def test_single_worker_pool_is_inline(self):
        single = WorkerPool(1)
        assert not single.offloads(10_000)
        with pytest.raises(RuntimeError):
            single.run("derive", (b"k",), [b"frame"])
        single.close()

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(2, min_batch=0)
        with pytest.raises(ValueError):
            WorkerPool(2, chunk_items=0)


class TestAttachDetach:
    def test_attach_is_idempotent(self, pool):
        proxy = _build_proxy(_small_config(), KeyChain.from_seed(11))
        plain_prf = proxy.keychain.prf
        plain_cipher = proxy.keychain.cipher
        attach_pool(proxy, pool)
        attach_pool(proxy, pool)  # re-attach must not nest wrappers
        assert isinstance(proxy.keychain.prf, PooledPrf)
        assert proxy.keychain.prf.inner is plain_prf
        assert isinstance(proxy.keychain.cipher, PooledCipher)
        assert proxy.keychain.cipher.inner is plain_cipher
        detach_pool(proxy)
        assert proxy.keychain.prf is plain_prf
        assert proxy.keychain.cipher is plain_cipher
        detach_pool(proxy)  # no-op on plain kernels

    def test_checkpoint_reduces_to_plain_kernels(self, pool):
        # repro.ha.checkpoint pickles the proxy keychain; pooled wrappers
        # must come back as their (byte-identical) inner kernels, never
        # dragging executor handles into the snapshot.
        chain = KeyChain.from_seed(45)
        chain.prf = PooledPrf(chain.prf, pool)
        chain.cipher = PooledCipher(chain.cipher, pool)
        restored = pickle.loads(pickle.dumps(chain))
        assert isinstance(restored.prf, Prf)
        assert isinstance(restored.cipher, AuthenticatedCipher)
        reference = KeyChain.from_seed(45)
        assert restored.prf.derive("k", 9) == reference.prf.derive("k", 9)
        blob = reference.cipher.encrypt(b"v" * 16)
        assert restored.cipher.decrypt(blob) == b"v" * 16


class TestEndToEndDeterminism:
    def test_proxy_rounds_identical_across_worker_counts(self, pool):
        config = _small_config()
        serial = _build_proxy(config, KeyChain.from_seed(11), record=True)
        serial_responses = _run_rounds(serial)
        pooled = _build_proxy(config, KeyChain.from_seed(11), record=True)
        attach_pool(pooled, pool)
        pooled_responses = _run_rounds(pooled)
        assert pooled_responses == serial_responses
        assert _trace_digest(pooled.store.records) == \
            _trace_digest(serial.store.records)

    def test_shard_parallel_matches_serial(self):
        report = compare_shard_traces(partitions=2, shard_workers=2,
                                      n_per_partition=96, rounds=3)
        assert report["identical"], report


class TestPipelinedStore:
    def test_trace_identical_to_serial(self):
        config = _small_config(seed=17)
        serial = _build_proxy(config, KeyChain.from_seed(17), record=True)
        serial_responses = _run_rounds(serial, seed=17)

        pipelined = _build_proxy(config, KeyChain.from_seed(17), record=True)
        recorder = pipelined.store
        wrapper = PipelinedStore(recorder)
        pipelined.store = wrapper
        try:
            pipelined_responses = _run_rounds(pipelined, seed=17)
        finally:
            wrapper.close()
        assert pipelined_responses == serial_responses
        assert _trace_digest(recorder.records) == \
            _trace_digest(serial.store.records)

    def test_error_surfaces_at_barrier(self):
        class FailingStore(InMemoryStore):
            def commit_round(self, deletes, puts):
                raise RuntimeError("server rejected the round")

        store = PipelinedStore(FailingStore())
        store.commit_round(["id1"], [("id2", b"blob")])
        with pytest.raises(RuntimeError, match="rejected"):
            store.barrier()
        store.close()

    def test_error_surfaces_at_close(self):
        class FailingStore(InMemoryStore):
            def commit_round(self, deletes, puts):
                raise RuntimeError("late failure")

        store = PipelinedStore(FailingStore())
        store.commit_round([], [])
        with pytest.raises(RuntimeError, match="late failure"):
            store.close()

    def test_reads_wait_for_inflight_commits(self):
        inner = InMemoryStore()
        store = PipelinedStore(inner)
        try:
            store.commit_round([], [("id1", b"payload")])
            # multi_get barriers first, so the commit must be visible.
            assert store.multi_get(["id1"]) == [b"payload"]
            assert "id1" in store
            assert len(store) == 1
        finally:
            store.close()

    def test_rejects_use_after_close(self):
        store = PipelinedStore(InMemoryStore())
        store.close()
        store.close()  # idempotent
        with pytest.raises(RuntimeError):
            store.commit_round([], [])
        with pytest.raises(RuntimeError):
            store.next_round()

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PipelinedStore(InMemoryStore(), depth=0)


class TestObservability:
    def test_worker_labelled_metrics_when_enabled(self, pool):
        prf = PooledPrf(Prf(b"obs-secret"), pool)
        with obs.capture() as handle:
            prf.derive_many([("k%d" % i, i) for i in range(40)])
            names = {(name, dict(labels).get("workers"))
                     for name, labels, _ in handle.registry}
        assert ("parallel.chunks.total", "2") in names
        assert ("parallel.items.total", "2") in names
        assert ("parallel.chunk.wait.seconds", "2") in names
        assert ("parallel.serialized.bytes.total", "2") in names

    def test_zero_metrics_when_disabled(self, pool):
        assert not obs.OBS.enabled
        before = len(list(obs.OBS.registry))
        prf = PooledPrf(Prf(b"obs-secret-2"), pool)
        prf.derive_many([("k%d" % i, i) for i in range(40)])
        store = PipelinedStore(InMemoryStore())
        store.commit_round([], [])
        store.barrier()
        store.close()
        assert len(list(obs.OBS.registry)) == before

    def test_dashboard_renders_parallel_section(self, pool):
        from repro.obs.dashboard import render_dashboard

        prf = PooledPrf(Prf(b"obs-secret-3"), pool)
        with obs.capture() as handle:
            prf.derive_many([("k%d" % i, i) for i in range(40)])
            rendered = render_dashboard(handle.registry)
        assert "parallel engine (per pool size)" in rendered
        assert "workers" in rendered
