"""Tests for the multi-map extension (§8.3.2)."""

import pytest

from repro.core.config import WaffleConfig
from repro.core.multimap import MultiMapWaffle, slot_key
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError


def make_multimap(keys=8, slots=3):
    items = {
        f"row{i:04d}": tuple(b"col%d-%d" % (slot, i) for slot in range(slots))
        for i in range(keys)
    }
    config = WaffleConfig(n=keys * slots, b=8, r=3, f_d=2, d=10,
                          c=4, value_size=64, seed=9)
    return MultiMapWaffle(config, items, slots,
                          keychain=KeyChain.from_seed(2)), items


class TestMultiMap:
    def test_get_returns_all_slots(self):
        mm, items = make_multimap()
        assert mm.get("row0003") == items["row0003"]

    def test_put_overwrites_all_slots(self):
        mm, _ = make_multimap()
        mm.put("row0002", (b"a", b"b", b"c"))
        assert mm.get("row0002") == (b"a", b"b", b"c")

    def test_put_slot_updates_one_value(self):
        mm, items = make_multimap()
        mm.put_slot("row0001", 1, b"patched")
        values = mm.get("row0001")
        assert values[1] == b"patched"
        assert values[0] == items["row0001"][0]
        assert values[2] == items["row0001"][2]

    def test_put_wrong_arity_rejected(self):
        mm, _ = make_multimap()
        with pytest.raises(ConfigurationError):
            mm.put("row0001", (b"only-one",))

    def test_put_slot_out_of_range(self):
        mm, _ = make_multimap()
        with pytest.raises(ConfigurationError):
            mm.put_slot("row0001", 7, b"x")

    def test_mismatched_tuple_lengths_rejected(self):
        config = WaffleConfig(n=6, b=4, r=1, f_d=1, d=4, c=1,
                              value_size=64, seed=1)
        with pytest.raises(ConfigurationError):
            MultiMapWaffle(config, {"a": (b"1", b"2"), "b": (b"1",)}, 2)

    def test_n_must_count_slots(self):
        config = WaffleConfig(n=5, b=4, r=1, f_d=1, d=4, c=1,
                              value_size=64, seed=1)
        with pytest.raises(ConfigurationError):
            MultiMapWaffle(config, {"a": (b"1", b"2")}, 2)

    def test_slot_keys_unique_and_stable(self):
        assert slot_key("k", 0) != slot_key("k", 1)
        assert slot_key("k", 0) == slot_key("k", 0)

    def test_build_rescales_config(self):
        items = {f"r{i}": (b"a", b"b") for i in range(20)}
        base = WaffleConfig.paper_defaults(n=2**14)
        mm = MultiMapWaffle.build(items, slots=2, base_config=base)
        assert mm.datastore.config.n == 40

    def test_slots_hit_storage_as_correlated_requests(self):
        """A multi-map get issues one sub-request per slot in one batch."""
        mm, _ = make_multimap()
        rounds_before = mm.datastore.proxy.totals.rounds
        mm.get("row0000")
        assert mm.datastore.proxy.totals.rounds == rounds_before + 1
        assert mm.datastore.proxy.last_stats.requests == mm.slots
