"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.workloads.ycsb import key_name


def make_items(n: int, value: bytes = b"value-%d") -> dict[str, bytes]:
    """N distinct key-value pairs using the canonical key naming."""
    return {key_name(i): value % i for i in range(n)}


@pytest.fixture
def small_config() -> WaffleConfig:
    """A tiny but fully featured configuration (N=200)."""
    return WaffleConfig(n=200, b=20, r=8, f_d=4, d=50, c=30,
                        value_size=64, seed=101)


@pytest.fixture
def small_items() -> dict[str, bytes]:
    return make_items(200)


@pytest.fixture
def small_datastore(small_config, small_items) -> WaffleDatastore:
    return WaffleDatastore(small_config, small_items,
                           keychain=KeyChain.from_seed(7), log_ids=True)
