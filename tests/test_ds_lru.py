"""Unit and property tests for the LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ds.lru import LruCache


class TestLruBasics:
    def test_put_get(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_eviction_order_is_lru(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        cache.get("a")  # refresh "a" -> LRU is now "b"
        assert cache.evict() == ("b", "b")

    def test_peek_does_not_touch_recency(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        cache.peek("a")
        assert cache.evict() == ("a", "a")

    def test_touch_updates_recency(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        cache.touch("a")
        assert cache.evict() == ("b", "b")

    def test_put_never_evicts(self):
        cache = LruCache(2)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        assert cache.over_capacity() == 3

    def test_remove(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.remove("a") == 1
        assert "a" not in cache
        with pytest.raises(KeyError):
            cache.remove("a")

    def test_evict_empty_raises(self):
        with pytest.raises(KeyError):
            LruCache(2).evict()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1)

    def test_zero_capacity_everything_over(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert cache.over_capacity() == 1

    def test_keys_in_lru_order(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        cache.get("a")
        assert list(cache.keys()) == ["b", "c", "a"]


class TestGetIfPresent:
    """The single-lookup fast path must keep get/peek recency semantics."""

    def test_hit_returns_value_and_touches_recency(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        assert cache.get_if_present("a") == "a"
        # Exactly like get(): "a" is now most recent, so "b" evicts first.
        assert cache.evict() == ("b", "b")

    def test_miss_returns_default_without_side_effects(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        assert cache.get_if_present("zzz") is None
        sentinel = object()
        assert cache.get_if_present("zzz", sentinel) is sentinel
        assert list(cache.keys()) == ["a", "b", "c"]  # recency untouched

    def test_falsy_values_distinguishable_from_miss(self):
        cache = LruCache(2)
        cache.put("empty", b"")
        cache.put("none", None)
        sentinel = object()
        assert cache.get_if_present("empty", sentinel) == b""
        assert cache.get_if_present("none", sentinel) is None
        assert cache.get_if_present("gone", sentinel) is sentinel

    def test_agrees_with_contains_plus_get(self):
        """get_if_present(k) ≡ (cache.get(k) if k in cache else default),
        including the recency effect, across a mixed workload."""
        import random
        fast, slow = LruCache(8), LruCache(8)
        rng = random.Random(17)
        miss = object()
        for step in range(2000):
            key = rng.randrange(24)
            if rng.random() < 0.5:
                fast.put(key, step)
                slow.put(key, step)
            else:
                got_fast = fast.get_if_present(key, miss)
                got_slow = slow.get(key) if key in slow else miss
                assert got_fast == got_slow
            assert list(fast.keys()) == list(slow.keys())

    def test_touch_if_present(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        assert cache.touch_if_present("a") is True
        assert cache.touch_if_present("zzz") is False
        assert list(cache.keys()) == ["b", "c", "a"]

    def test_peek_still_does_not_touch_recency(self):
        """The new accessors must not have changed peek-vs-get semantics."""
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        cache.peek("a")
        cache.get_if_present("b")
        assert cache.evict() == ("a", "a")


class TestGetIfPresentMany:
    def test_matches_scalar_results_and_recency(self):
        """The bulk probe ≡ a get_if_present loop: same values, same
        final recency order (hits bumped in input order)."""
        import random
        bulk, scalar = LruCache(16), LruCache(16)
        rng = random.Random(23)
        miss = object()
        for name in range(16):
            bulk.put(name, name * 10)
            scalar.put(name, name * 10)
        for _ in range(200):
            probes = [rng.randrange(32) for _ in range(rng.randrange(1, 9))]
            got_bulk = bulk.get_if_present_many(probes, miss)
            got_scalar = [scalar.get_if_present(key, miss) for key in probes]
            assert got_bulk == got_scalar
            assert list(bulk.keys()) == list(scalar.keys())

    def test_duplicate_probes_bump_in_order(self):
        cache = LruCache(3)
        for name in "abc":
            cache.put(name, name)
        assert cache.get_if_present_many(["a", "b", "a"]) == ["a", "b", "a"]
        # "a" was touched last, so "c" is now least recent.
        assert cache.evict() == ("c", "c")

    def test_default_for_misses(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.get_if_present_many(["a", "x"], default=-1) == [1, -1]
        assert cache.get_if_present_many([]) == []

    def test_misses_leave_no_trace(self):
        cache = LruCache(2)
        cache.put("a", 1)
        before = list(cache.keys())
        cache.get_if_present_many(["x", "y", "z"])
        assert list(cache.keys()) == before
        assert len(cache) == 1


class TestLruProperties:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["put", "get", "touch", "evict"]),
                      st.integers(0, 12)),
            max_size=200,
        )
    )
    def test_matches_reference_model(self, operations):
        """The cache agrees with a list-based reference implementation."""
        cache = LruCache(5)
        order: list[int] = []  # least recent first
        values: dict[int, int] = {}
        for i, (op, key) in enumerate(operations):
            if op == "put":
                if key in values:
                    order.remove(key)
                order.append(key)
                values[key] = i
                cache.put(key, i)
            elif op == "get" and key in values:
                order.remove(key)
                order.append(key)
                assert cache.get(key) == values[key]
            elif op == "touch" and key in values:
                order.remove(key)
                order.append(key)
                cache.touch(key)
            elif op == "evict" and values:
                expected = order.pop(0)
                evicted_key, evicted_value = cache.evict()
                assert evicted_key == expected
                assert evicted_value == values.pop(expected)
        assert list(cache.keys()) == order


class TestLruStress:
    def test_long_churn_against_ordered_reference(self):
        """20k mixed operations against the list-based reference model."""
        import random
        cache = LruCache(64)
        order: list[int] = []
        values: dict[int, int] = {}
        rng = random.Random(200)
        for step in range(20_000):
            roll = rng.random()
            key = rng.randrange(200)
            if roll < 0.5:
                if key in values:
                    order.remove(key)
                order.append(key)
                values[key] = step
                cache.put(key, step)
            elif roll < 0.7 and key in values:
                order.remove(key)
                order.append(key)
                assert cache.get(key) == values[key]
            elif roll < 0.9 and values:
                expected = order.pop(0)
                got_key, got_value = cache.evict()
                assert got_key == expected
                assert got_value == values.pop(expected)
            elif key in values:
                order.remove(key)
                order.append(key)
                cache.touch(key)
        assert list(cache.keys()) == order
