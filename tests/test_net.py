"""Tests for the network substrate: protocol, server, remote store, and
Waffle over a real socket."""

import random

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError, ProtocolError
from repro.net import RemoteStore, StorageServer
from repro.net.protocol import decode_message, encode_message
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim


class TestProtocolEncoding:
    @pytest.mark.parametrize("value", [
        None,
        "hello",
        b"\x00\xffbytes",
        0,
        -(2**40),
        2**40,
        [],
        ["GET", "key"],
        ["PIPELINE", ["SET", "k", b"v"], ["GET", "k"]],
        [b"a", 1, None, ["nested", [b"deep"]]],
    ])
    def test_roundtrip(self, value):
        assert decode_message(encode_message(value)) == value

    def test_error_travels(self):
        wire = decode_message(encode_message(KeyNotFoundError("k")))
        with pytest.raises(KeyNotFoundError):
            wire.raise_()

    def test_duplicate_error_travels(self):
        wire = decode_message(encode_message(DuplicateKeyError("k")))
        with pytest.raises(DuplicateKeyError):
            wire.raise_()

    def test_unencodable_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(object())
        with pytest.raises(ProtocolError):
            encode_message(True)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(encode_message(1) + b"x")

    def test_truncated_rejected(self):
        with pytest.raises(Exception):
            decode_message(encode_message("hello")[:-2])


@pytest.fixture
def server():
    with StorageServer(RedisSim()) as srv:
        yield srv


@pytest.fixture
def remote(server):
    with RemoteStore(server.address) as store:
        yield store


class TestRemoteStore:
    def test_put_get_delete(self, remote):
        remote.put("k", b"v")
        assert remote.get("k") == b"v"
        assert "k" in remote
        assert len(remote) == 1
        remote.delete("k")
        assert "k" not in remote

    def test_missing_key_error_propagates(self, remote):
        with pytest.raises(KeyNotFoundError):
            remote.get("ghost")

    def test_write_once_error_propagates(self):
        with StorageServer(RedisSim(write_once=True)) as server:
            with RemoteStore(server.address) as remote:
                remote.put("k", b"v")
                with pytest.raises(DuplicateKeyError):
                    remote.put("k", b"v2")

    def test_pipelined_batches(self, remote):
        items = [(f"k{i}", b"v%d" % i) for i in range(50)]
        remote.multi_put(items)
        assert remote.multi_get([k for k, _ in items]) == \
            [v for _, v in items]
        remote.multi_delete([k for k, _ in items])
        assert len(remote) == 0

    def test_empty_batches(self, remote):
        assert remote.multi_get([]) == []
        remote.multi_put([])
        remote.multi_delete([])

    def test_binary_safety(self, remote):
        payload = bytes(range(256)) * 4
        remote.put("bin", payload)
        assert remote.get("bin") == payload

    def test_two_clients_share_state(self, server):
        with RemoteStore(server.address) as a, \
                RemoteStore(server.address) as b:
            a.put("shared", b"from-a")
            assert b.get("shared") == b"from-a"


class TestWaffleOverTheWire:
    def test_waffle_runs_against_remote_server(self):
        """The full proxy protocol over a real TCP connection, with the
        adversary recorder on the *server* side — where the adversary
        actually sits."""
        from repro.analysis.uniformity import verify_storage_invariants
        from repro.core.batch import ClientRequest
        from repro.core.config import WaffleConfig
        from repro.core.datastore import WaffleDatastore
        from repro.crypto.keys import KeyChain
        from repro.workloads.trace import Operation
        from tests.conftest import make_items

        n = 120
        config = WaffleConfig(n=n, b=16, r=6, f_d=4, d=40, c=20,
                              value_size=64, seed=31)
        server_side = RecordingStore(RedisSim(write_once=True))
        with StorageServer(server_side) as server:
            with RemoteStore(server.address) as remote:
                items = make_items(n)
                datastore = WaffleDatastore(config, items, store=remote,
                                            record=False,
                                            keychain=KeyChain.from_seed(32))
                reference = dict(items)
                rng = random.Random(33)
                for _ in range(10):
                    batch, expected = [], []
                    for _ in range(config.r):
                        key = f"user{rng.randrange(n):08d}"
                        if rng.random() < 0.5:
                            batch.append(ClientRequest(op=Operation.READ,
                                                       key=key))
                            expected.append(reference[key])
                        else:
                            value = b"w%d" % rng.randrange(10**6)
                            batch.append(ClientRequest(
                                op=Operation.WRITE, key=key, value=value))
                            reference[key] = value
                            expected.append(value)
                    responses = datastore.execute_batch(batch)
                    assert [r.value for r in responses] == expected
        # The server-side adversary saw a write-once/read-once id stream.
        verify_storage_invariants(server_side.records)
        reads = [r for r in server_side.records if r.op == "read"]
        assert len(reads) == 10 * config.b


from hypothesis import given, settings, strategies as st

wire_values = st.recursive(
    st.none() | st.text(max_size=20) | st.binary(max_size=40)
    | st.integers(-(2**62), 2**62),
    lambda children: st.lists(children, max_size=6),
    max_leaves=20,
)


class TestProtocolProperties:
    @settings(max_examples=120, deadline=None)
    @given(wire_values)
    def test_any_value_tree_roundtrips(self, value):
        from repro.net.protocol import decode_message, encode_message
        assert decode_message(encode_message(value)) == value

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=1, max_size=80))
    def test_random_bytes_never_crash_decoder(self, noise):
        """Garbage input raises a clean ProtocolError (or decodes to a
        value if it happens to be well-formed) — never an unhandled
        struct/index error."""
        from repro.errors import ProtocolError
        from repro.net.protocol import decode_message
        try:
            decode_message(noise)
        except ProtocolError:
            pass
        except UnicodeDecodeError:
            pass  # valid frame shape, invalid UTF-8 payload: acceptable
