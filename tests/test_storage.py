"""Tests for the storage substrate: memory store, RedisSim, recorder,
sharded store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DuplicateKeyError, KeyNotFoundError, ProtocolError
from repro.storage import (
    InMemoryStore,
    RecordingStore,
    RedisSim,
    ShardedStore,
)


@pytest.fixture(params=["memory", "redis"])
def store(request):
    if request.param == "memory":
        return InMemoryStore()
    return RedisSim()


class TestBackendContract:
    """Behaviour every backend must share."""

    def test_put_get_delete(self, store):
        store.put("k", b"v")
        assert store.get("k") == b"v"
        assert "k" in store
        assert len(store) == 1
        store.delete("k")
        assert "k" not in store
        assert len(store) == 0

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get("missing")

    def test_delete_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.delete("missing")

    def test_overwrite_allowed_by_default(self, store):
        store.put("k", b"v1")
        store.put("k", b"v2")
        assert store.get("k") == b"v2"

    def test_multi_operations_roundtrip(self, store):
        items = [(f"k{i}", b"v%d" % i) for i in range(20)]
        store.multi_put(items)
        keys = [key for key, _ in items]
        assert store.multi_get(keys) == [value for _, value in items]
        store.multi_delete(keys[:10])
        assert len(store) == 10


class TestWriteOnceMode:
    @pytest.mark.parametrize("factory", [InMemoryStore, RedisSim])
    def test_duplicate_write_rejected(self, factory):
        store = factory(write_once=True)
        store.put("k", b"v")
        with pytest.raises(DuplicateKeyError):
            store.put("k", b"v2")

    def test_rewrite_allowed_after_delete(self):
        store = RedisSim(write_once=True)
        store.put("k", b"v")
        store.delete("k")
        store.put("k", b"v2")  # a fresh id lifecycle
        assert store.get("k") == b"v2"


class TestRedisCommands:
    def test_exists_and_dbsize(self):
        redis = RedisSim()
        assert redis.execute(("EXISTS", "k")) == 0
        redis.execute(("SET", "k", b"v"))
        assert redis.execute(("EXISTS", "k")) == 1
        assert redis.execute(("DBSIZE",)) == 1

    def test_mget_mset(self):
        redis = RedisSim()
        redis.execute(("MSET", "a", b"1", "b", b"2"))
        assert redis.execute(("MGET", "a", "b")) == [b"1", b"2"]

    def test_mset_odd_args_rejected(self):
        with pytest.raises(ProtocolError):
            RedisSim().execute(("MSET", "a"))

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            RedisSim().execute(("FLUSHALL",))

    def test_pipeline_returns_replies_in_order(self):
        redis = RedisSim()
        pipe = redis.pipeline()
        pipe.enqueue(("SET", "a", b"1")).enqueue(("GET", "a"))
        pipe.enqueue(("EXISTS", "b"))
        assert pipe.flush() == [b"OK", b"1", 0]
        assert len(pipe) == 0

    def test_command_count(self):
        redis = RedisSim()
        redis.put("a", b"1")
        redis.get("a")
        assert redis.command_count == 2


class TestRecordingStore:
    def test_records_every_access(self):
        recorder = RecordingStore(RedisSim())
        recorder.put("a", b"1")
        recorder.get("a")
        recorder.delete("a")
        assert [(r.op, r.storage_id) for r in recorder.records] == [
            ("write", "a"), ("read", "a"), ("delete", "a"),
        ]

    def test_rounds_advance(self):
        recorder = RecordingStore(RedisSim())
        recorder.put("a", b"1")
        recorder.next_round()
        recorder.get("a")
        assert recorder.records[0].round == 0
        assert recorder.records[1].round == 1

    def test_sequence_numbers_are_global(self):
        recorder = RecordingStore(RedisSim())
        recorder.multi_put([("a", b"1"), ("b", b"2")])
        recorder.multi_get(["a", "b"])
        assert [r.seq for r in recorder.records] == [0, 1, 2, 3]

    def test_disable_recording(self):
        recorder = RecordingStore(RedisSim())
        recorder.enabled = False
        recorder.put("a", b"1")
        assert recorder.records == []
        recorder.enabled = True
        recorder.get("a")
        assert len(recorder.records) == 1

    def test_clear_records_keeps_counters(self):
        recorder = RecordingStore(RedisSim())
        recorder.put("a", b"1")
        recorder.next_round()
        recorder.clear_records()
        recorder.get("a")
        assert recorder.records[0].round == 1
        assert recorder.records[0].seq == 1

    def test_contains_and_len_do_not_record(self):
        recorder = RecordingStore(RedisSim())
        recorder.put("a", b"1")
        _ = "a" in recorder
        _ = len(recorder)
        assert len(recorder.records) == 1


class TestShardedStore:
    def test_requires_shards(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            ShardedStore([])

    def test_routing_is_stable(self):
        store = ShardedStore([InMemoryStore() for _ in range(4)])
        assert store.shard_index("key-1") == store.shard_index("key-1")

    def test_operations_span_shards(self):
        shards = [InMemoryStore() for _ in range(4)]
        store = ShardedStore(shards)
        items = [(f"k{i}", b"v%d" % i) for i in range(100)]
        store.multi_put(items)
        assert len(store) == 100
        assert sum(len(s) > 0 for s in shards) > 1  # actually distributed
        assert store.multi_get([k for k, _ in items]) == [v for _, v in items]
        store.multi_delete([k for k, _ in items[:50]])
        assert len(store) == 50

    def test_single_key_operations(self):
        store = ShardedStore([InMemoryStore(), InMemoryStore()])
        store.put("x", b"1")
        assert store.get("x") == b"1"
        assert "x" in store
        store.delete("x")
        assert "x" not in store

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.binary(max_size=16), max_size=40))
    def test_sharded_equals_flat(self, items):
        """A sharded store is observably identical to a flat store."""
        flat = InMemoryStore()
        sharded = ShardedStore([InMemoryStore() for _ in range(3)])
        flat.multi_put(items.items())
        sharded.multi_put(items.items())
        keys = list(items)
        assert sharded.multi_get(keys) == flat.multi_get(keys)
        assert len(sharded) == len(flat)


class TestStorageHypothesis:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["put", "get", "delete"]),
        st.text(min_size=1, max_size=6),
        st.binary(max_size=12)), max_size=120))
    def test_redis_sim_matches_dict_model(self, operations):
        """RedisSim agrees with a plain dict under any command sequence."""
        store = RedisSim()
        model: dict[str, bytes] = {}
        for op, key, value in operations:
            if op == "put":
                store.put(key, value)
                model[key] = value
            elif op == "get":
                if key in model:
                    assert store.get(key) == model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        store.get(key)
            else:
                if key in model:
                    store.delete(key)
                    del model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        store.delete(key)
        assert len(store) == len(model)
        if model:
            keys = sorted(model)
            assert store.multi_get(keys) == [model[k] for k in keys]
