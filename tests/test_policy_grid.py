"""Policy grid: every dummy-policy × fake-policy combination upholds the
storage invariants, and each policy's own α guarantee (or documented
non-guarantee) is exactly what the config reports."""

import random

import pytest

from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.workloads.trace import Operation
from tests.conftest import make_items


GRID = [
    ("reshuffle", "least_recent"),
    ("round_robin", "least_recent"),
    ("reshuffle", "uniform"),
    ("round_robin", "uniform"),
]


@pytest.mark.parametrize("dummy_policy,fake_policy", GRID)
class TestPolicyGrid:
    def run(self, dummy_policy, fake_policy, rounds=200, seed=7):
        config = WaffleConfig(n=300, b=24, r=10, f_d=4, d=100, c=40,
                              value_size=64, seed=seed,
                              dummy_policy=dummy_policy,
                              fake_real_policy=fake_policy)
        datastore = WaffleDatastore(config, make_items(300),
                                    keychain=KeyChain.from_seed(seed),
                                    log_ids=True)
        rng = random.Random(seed)
        for _ in range(rounds):
            batch = []
            for _ in range(config.r):
                key = f"user{rng.randrange(300):08d}"
                if rng.random() < 0.3:
                    batch.append(ClientRequest(
                        op=Operation.WRITE, key=key,
                        value=b"w%d" % rng.randrange(10**6)))
                else:
                    batch.append(ClientRequest(op=Operation.READ, key=key))
            datastore.execute_batch(batch)
        return config, datastore

    def test_storage_invariants(self, dummy_policy, fake_policy):
        _, datastore = self.run(dummy_policy, fake_policy, rounds=120)
        verify_storage_invariants(datastore.recorder.records)

    def test_linearizability(self, dummy_policy, fake_policy):
        config = WaffleConfig(n=120, b=16, r=6, f_d=4, d=40, c=20,
                              value_size=64, seed=3,
                              dummy_policy=dummy_policy,
                              fake_real_policy=fake_policy)
        datastore = WaffleDatastore(config, make_items(120),
                                    keychain=KeyChain.from_seed(3))
        reference = dict(make_items(120))
        rng = random.Random(4)
        for _ in range(40):
            batch, expected = [], []
            for _ in range(config.r):
                key = f"user{rng.randrange(120):08d}"
                if rng.random() < 0.5:
                    value = b"w%d" % rng.randrange(10**6)
                    batch.append(ClientRequest(op=Operation.WRITE, key=key,
                                               value=value))
                    reference[key] = value
                    expected.append(value)
                else:
                    batch.append(ClientRequest(op=Operation.READ, key=key))
                    expected.append(reference[key])
            responses = datastore.execute_batch(batch)
            assert [r.value for r in responses] == expected

    def test_alpha_guarantee_matches_policy(self, dummy_policy, fake_policy):
        config, datastore = self.run(dummy_policy, fake_policy)
        report = full_report(datastore.recorder.records,
                             datastore.proxy.id_log)
        assert report.min_beta >= config.beta_bound()
        if fake_policy == "least_recent":
            assert report.max_alpha <= config.alpha_bound_effective()
        # uniform fake selection carries no alpha guarantee (the
        # Challenge-2 ablation); nothing to assert beyond invariants.
