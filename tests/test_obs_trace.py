"""Tests for the structured tracing layer (spans, events, sinks)."""

import json

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer


class TestTracer:
    def test_span_context_manager_records_duration(self):
        tracer = Tracer()
        with tracer.span("round", system="waffle") as span:
            span.set(requests=8)
        (record,) = tracer.spans("round")
        assert record["kind"] == "span"
        assert record["dur"] >= 0.0
        assert record["attrs"] == {"system": "waffle", "requests": 8}

    def test_span_records_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("phase.decrypt"):
                raise RuntimeError("boom")
        (record,) = tracer.spans("phase.decrypt")
        assert record["attrs"]["error"] == "RuntimeError"

    def test_events_and_filtering(self):
        tracer = Tracer()
        tracer.event("storage.access", op="read", id="abc")
        tracer.event("ha.failover")
        tracer.record_span("round", 0.5)
        assert len(tracer.events()) == 2
        assert len(tracer.events("ha.failover")) == 1
        assert len(tracer.spans()) == 1

    def test_sequence_numbers_are_monotone(self):
        tracer = Tracer()
        for _ in range(5):
            tracer.event("tick")
        assert [r["seq"] for r in tracer.records] == [0, 1, 2, 3, 4]

    def test_buffer_cap_drops_oldest(self):
        tracer = Tracer(max_records=10)
        for i in range(15):
            tracer.event("tick", i=i)
        assert len(tracer.records) <= 10
        assert tracer.dropped > 0
        # The newest record always survives.
        assert tracer.records[-1]["attrs"]["i"] == 14

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=str(path))
        tracer.event("storage.access", op="write", id="x", round=3)
        tracer.record_span("round", 0.01, system="waffle")
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["name"] == "storage.access"
        assert lines[1]["dur"] == 0.01

    def test_subscribe_and_unsubscribe(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.event("a")
        tracer.unsubscribe(seen.append)
        tracer.event("b")
        assert len(seen) == 1
        tracer.unsubscribe(seen.append)  # absent: no-op


class TestObservabilityHandle:
    def test_disabled_span_is_shared_null_singleton(self):
        obs.disable()
        assert obs.OBS.span("round") is NULL_SPAN
        assert obs.OBS.span("other", x=1) is NULL_SPAN
        with obs.OBS.span("round") as span:
            span.set(anything=1)  # all no-ops

    def test_disabled_helpers_record_nothing(self):
        obs.enable()  # reset to fresh registry/tracer...
        obs.disable()  # ...then switch off
        obs.OBS.event("storage.access", op="read")
        obs.OBS.observe_span("round", 0.5)
        assert len(obs.OBS.tracer.records) == 0
        assert len(obs.OBS.registry) == 0

    def test_capture_enables_and_disables(self):
        obs.disable()
        with obs.capture() as handle:
            assert handle is obs.OBS
            assert handle.enabled
            with handle.span("round", system="waffle"):
                pass
            handle.observe_span("phase.plan", 0.002,
                                labels={"system": "waffle"})
        assert not obs.OBS.enabled
        assert len(obs.OBS.tracer.spans("round")) == 1
        hist = obs.OBS.registry.histogram("phase.plan.seconds",
                                          system="waffle")
        assert hist.count == 1

    def test_observe_kernel_records_three_series(self):
        with obs.capture() as handle:
            handle.observe_kernel("prf.derive_many", 0.004, items=128)
        snap = handle.registry.snapshot()
        assert snap["counters"]["kernel.prf.derive_many.calls.total"] == 1
        assert snap["counters"]["kernel.prf.derive_many.items.total"] == 128
        assert snap["histograms"]["kernel.prf.derive_many.seconds"]["count"] == 1

    def test_enable_reset_semantics(self):
        obs.enable()
        obs.OBS.registry.counter("x").inc()
        obs.disable()
        obs.enable(reset=False)
        assert obs.OBS.registry.counter("x").value == 1
        obs.disable()
        obs.enable()  # reset=True default
        assert obs.OBS.registry.counter("x").value == 0
        obs.disable()
