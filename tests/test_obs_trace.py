"""Tests for the structured tracing layer (spans, events, sinks)."""

import json
import math
import threading

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer, jsonl_line


class TestTracer:
    def test_span_context_manager_records_duration(self):
        tracer = Tracer()
        with tracer.span("round", system="waffle") as span:
            span.set(requests=8)
        (record,) = tracer.spans("round")
        assert record["kind"] == "span"
        assert record["dur"] >= 0.0
        assert record["attrs"] == {"system": "waffle", "requests": 8}

    def test_span_records_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("phase.decrypt"):
                raise RuntimeError("boom")
        (record,) = tracer.spans("phase.decrypt")
        assert record["attrs"]["error"] == "RuntimeError"

    def test_events_and_filtering(self):
        tracer = Tracer()
        tracer.event("storage.access", op="read", id="abc")
        tracer.event("ha.failover")
        tracer.record_span("round", 0.5)
        assert len(tracer.events()) == 2
        assert len(tracer.events("ha.failover")) == 1
        assert len(tracer.spans()) == 1

    def test_sequence_numbers_are_monotone(self):
        tracer = Tracer()
        for _ in range(5):
            tracer.event("tick")
        assert [r["seq"] for r in tracer.records] == [0, 1, 2, 3, 4]

    def test_buffer_cap_drops_oldest(self):
        tracer = Tracer(max_records=10)
        for i in range(15):
            tracer.event("tick", i=i)
        assert len(tracer.records) <= 10
        assert tracer.dropped > 0
        # The newest record always survives.
        assert tracer.records[-1]["attrs"]["i"] == 14

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=str(path))
        tracer.event("storage.access", op="write", id="x", round=3)
        tracer.record_span("round", 0.01, system="waffle")
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["name"] == "storage.access"
        assert lines[1]["dur"] == 0.01

    def test_subscribe_and_unsubscribe(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.event("a")
        tracer.unsubscribe(seen.append)
        tracer.event("b")
        assert len(seen) == 1
        tracer.unsubscribe(seen.append)  # absent: no-op


class TestSpanTree:
    def test_open_close_assigns_parentage(self):
        tracer = Tracer()
        round_tok = tracer.open_span("round", root=True)
        plan_tok = tracer.open_span("phase.plan")
        tracer.close_span(plan_tok, 0.01)
        tracer.close_span(round_tok, 0.02)
        (plan,) = tracer.spans("phase.plan")
        (root,) = tracer.spans("round")
        assert plan["parent"] == root["span_id"] == round_tok
        assert root["parent"] is None

    def test_record_span_parents_under_innermost_open(self):
        tracer = Tracer()
        round_tok = tracer.open_span("round", root=True)
        inner = tracer.record_span("parallel.chunk", 0.005)
        explicit = tracer.record_span("parallel.worker.chunk", 0.004,
                                      parent=inner)
        tracer.close_span(round_tok, 0.01)
        (chunk,) = tracer.spans("parallel.chunk")
        (worker,) = tracer.spans("parallel.worker.chunk")
        assert chunk["parent"] == round_tok
        assert worker["parent"] == inner
        assert explicit != inner

    def test_close_pops_orphans_left_by_exceptions(self):
        tracer = Tracer()
        round_tok = tracer.open_span("round", root=True)
        tracer.open_span("phase.plan")  # never closed (exception path)
        tracer.close_span(round_tok, 0.02)
        (root,) = tracer.spans("round")
        assert root["parent"] is None
        # A following round is unaffected.
        second = tracer.open_span("round", root=True)
        tracer.close_span(second, 0.01)
        assert tracer.spans("round")[1]["parent"] is None

    def test_root_open_resets_a_corrupted_stack(self):
        tracer = Tracer()
        tracer.open_span("round")  # abandoned entirely
        round_tok = tracer.open_span("round", root=True)
        child = tracer.open_span("phase.plan")
        tracer.close_span(child, 0.01)
        tracer.close_span(round_tok, 0.02)
        (plan,) = tracer.spans("phase.plan")
        assert plan["parent"] == round_tok

    def test_span_ids_are_unique_across_records(self):
        tracer = Tracer()
        for _ in range(5):
            tok = tracer.open_span("round", root=True)
            tracer.record_span("leaf", 0.001)
            tracer.close_span(tok, 0.002)
        ids = [r["span_id"] for r in tracer.spans()]
        assert len(ids) == len(set(ids)) == 10

    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        main_tok = tracer.open_span("round", root=True)
        results = {}

        def other_thread():
            tok = tracer.open_span("round", root=True)
            results["leaf"] = tracer.record_span("leaf", 0.001)
            tracer.close_span(tok, 0.002)

        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        tracer.close_span(main_tok, 0.01)
        # The other thread's leaf parents under *its* round, and the
        # main thread's round still closes at the root.
        leaf = next(r for r in tracer.spans("leaf"))
        other_round = next(r for r in tracer.spans("round")
                           if r["span_id"] != main_tok)
        assert leaf["parent"] == other_round["span_id"]
        main_round = next(r for r in tracer.spans("round")
                          if r["span_id"] == main_tok)
        assert main_round["parent"] is None


class TestJsonlEncoding:
    def test_non_finite_floats_encode_as_strings(self):
        line = jsonl_line({"kind": "event", "attrs": {
            "rate": math.inf, "drop": -math.inf, "skew": math.nan,
            "nested": [1.0, math.inf], "ok": 0.5}})
        parsed = json.loads(line)  # must not raise
        assert parsed["attrs"]["rate"] == "+Inf"
        assert parsed["attrs"]["drop"] == "-Inf"
        assert parsed["attrs"]["skew"] == "NaN"
        assert parsed["attrs"]["nested"] == [1.0, "+Inf"]
        assert parsed["attrs"]["ok"] == 0.5
        assert "Infinity" not in line

    def test_file_sink_round_trips_inf(self, tmp_path):
        """A zero-width throughput window observes ``inf``; the streamed
        trace must still parse line by line."""
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=str(path))
        try:
            obs.OBS.event("throughput.window", ops_per_second=math.inf)
        finally:
            obs.disable()
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["attrs"]["ops_per_second"] == "+Inf"

    def test_write_trace_jsonl_round_trips_non_finite(self, tmp_path):
        from repro.obs.export import write_trace_jsonl

        records = [{"kind": "event", "name": "meter",
                    "attrs": {"rate": math.inf, "jitter": math.nan}}]
        path = tmp_path / "export.jsonl"
        assert write_trace_jsonl(records, path) == 1
        (parsed,) = [json.loads(line)
                     for line in path.read_text().splitlines()]
        assert parsed["attrs"] == {"rate": "+Inf", "jitter": "NaN"}


class TestObservabilityHandle:
    def test_disabled_span_is_shared_null_singleton(self):
        obs.disable()
        assert obs.OBS.span("round") is NULL_SPAN
        assert obs.OBS.span("other", x=1) is NULL_SPAN
        with obs.OBS.span("round") as span:
            span.set(anything=1)  # all no-ops

    def test_disabled_helpers_record_nothing(self):
        obs.enable()  # reset to fresh registry/tracer...
        obs.disable()  # ...then switch off
        obs.OBS.event("storage.access", op="read")
        obs.OBS.observe_span("round", 0.5)
        assert len(obs.OBS.tracer.records) == 0
        assert len(obs.OBS.registry) == 0

    def test_capture_enables_and_disables(self):
        obs.disable()
        with obs.capture() as handle:
            assert handle is obs.OBS
            assert handle.enabled
            with handle.span("round", system="waffle"):
                pass
            handle.observe_span("phase.plan", 0.002,
                                labels={"system": "waffle"})
        assert not obs.OBS.enabled
        assert len(obs.OBS.tracer.spans("round")) == 1
        hist = obs.OBS.registry.histogram("phase.plan.seconds",
                                          system="waffle")
        assert hist.count == 1

    def test_observe_kernel_records_three_series(self):
        with obs.capture() as handle:
            handle.observe_kernel("prf.derive_many", 0.004, items=128)
        snap = handle.registry.snapshot()
        assert snap["counters"]["kernel.prf.derive_many.calls.total"] == 1
        assert snap["counters"]["kernel.prf.derive_many.items.total"] == 128
        assert snap["histograms"]["kernel.prf.derive_many.seconds"]["count"] == 1

    def test_enable_reset_semantics(self):
        obs.enable()
        obs.OBS.registry.counter("x").inc()
        obs.disable()
        obs.enable(reset=False)
        assert obs.OBS.registry.counter("x").value == 1
        obs.disable()
        obs.enable()  # reset=True default
        assert obs.OBS.registry.counter("x").value == 0
        obs.disable()
