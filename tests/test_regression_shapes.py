"""Golden-shape regression tests.

The benchmark suite regenerates every paper figure at full (scaled)
size; these tests pin the *shapes* of the headline results at a reduced
size so an accidental regression (a cost-model edit, a protocol change)
fails fast in `pytest tests/` rather than only in a benchmark run.
Bands are deliberately wide — they encode orderings and rough factors,
not point estimates.
"""

import pytest

from repro.bench import experiments as exp
from repro.core.config import SecurityLevel, WaffleConfig
from repro.sim.costmodel import CostModel


N = 2**12


@pytest.fixture(scope="module")
def fig2_rows():
    return exp.fig2ab_baselines(n=N, rounds=40, taostore_requests=60)


class TestHeadlineShapes:
    def test_cost_of_privacy_band(self, fig2_rows):
        by = {(r["workload"], r["system"]): r for r in fig2_rows}
        for workload in ("YCSB-A", "YCSB-C"):
            ratio = (by[(workload, "insecure")]["throughput_ops"]
                     / by[(workload, "waffle")]["throughput_ops"])
            assert 4.0 < ratio < 11.0  # paper 5.8-6.04 at full scale

    def test_pancake_gap_band(self, fig2_rows):
        by = {(r["workload"], r["system"]): r for r in fig2_rows}
        for workload in ("YCSB-A", "YCSB-C"):
            ratio = (by[(workload, "waffle")]["throughput_ops"]
                     / by[(workload, "pancake")]["throughput_ops"])
            assert 1.1 < ratio < 2.2  # paper 1.455-1.577 at full scale

    def test_taostore_gap_band(self, fig2_rows):
        by = {(r["workload"], r["system"]): r for r in fig2_rows}
        ratio = (by[("YCSB-C", "waffle")]["throughput_ops"]
                 / by[("YCSB-C", "taostore")]["throughput_ops"])
        assert ratio > 30  # paper 102 at full scale (grows with log N)

    def test_latency_ordering(self, fig2_rows):
        by = {(r["workload"], r["system"]): r for r in fig2_rows}
        chain = [by[("YCSB-C", s)]["latency_ms"]
                 for s in ("insecure", "waffle", "pancake", "taostore")]
        assert chain == sorted(chain)
        assert chain[-1] > 100  # TaoStore in the hundreds of ms


class TestBoundRegression:
    """The theory pins that must never drift."""

    @pytest.mark.parametrize("level,alpha,beta", [
        (SecurityLevel.HIGH, 165, 161),
        (SecurityLevel.MEDIUM, 1000, 5),
        (SecurityLevel.LOW, 999999, 4),
    ])
    def test_table2_theory_exact(self, level, alpha, beta):
        config = WaffleConfig.security_preset(level, n=10**6)
        assert config.alpha_bound() == alpha
        assert config.beta_bound() == beta

    def test_default_bandwidth_overhead(self):
        config = WaffleConfig.paper_defaults(n=2**20)
        # (f_D + f_R)/R with the paper's defaults: (500+1000)/1000 = 1.5x.
        assert config.bandwidth_overhead() == pytest.approx(1.5)

    def test_core_curve_anchors(self):
        cost = CostModel()
        assert cost.core_efficiency(1) == 1.0
        assert 1.6 < cost.core_efficiency(4) < 2.0
        assert cost.core_efficiency(8) < cost.core_efficiency(4)
