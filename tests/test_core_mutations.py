"""Tests for the mutation queue."""

import pytest

from repro.core.mutations import MutationQueue
from repro.errors import ProtocolError


class TestMutationQueue:
    def test_drain_respects_limits(self):
        queue = MutationQueue()
        for i in range(5):
            queue.enqueue_insert(f"k{i}", b"v")
            queue.enqueue_delete(f"d{i}")
        inserts, deletes = queue.drain(insert_limit=2, delete_limit=3)
        assert len(inserts) == 2
        assert len(deletes) == 3
        assert queue.pending_inserts == 3
        assert queue.pending_deletes == 2

    def test_fifo_order(self):
        queue = MutationQueue()
        queue.enqueue_insert("a", b"1")
        queue.enqueue_insert("b", b"2")
        inserts, _ = queue.drain(insert_limit=10, delete_limit=10)
        assert [key for key, _ in inserts] == ["a", "b"]

    def test_duplicate_insert_rejected(self):
        queue = MutationQueue()
        queue.enqueue_insert("a", b"1")
        with pytest.raises(ProtocolError):
            queue.enqueue_insert("a", b"2")

    def test_duplicate_delete_rejected(self):
        queue = MutationQueue()
        queue.enqueue_delete("a")
        with pytest.raises(ProtocolError):
            queue.enqueue_delete("a")

    def test_drain_empty(self):
        assert MutationQueue().drain(5, 5) == ([], [])

    def test_zero_limits(self):
        queue = MutationQueue()
        queue.enqueue_insert("a", b"1")
        inserts, deletes = queue.drain(insert_limit=0, delete_limit=0)
        assert inserts == [] and deletes == []
        assert queue.pending_inserts == 1
