"""Tests for the CLI experiment runner."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_bounds_default(self, capsys):
        assert main(["bounds", "--n", "1048576"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 7.1" in out

    def test_bounds_table2_high_exact(self, capsys):
        assert main(["bounds", "--n", "1000000", "--level", "high"]) == 0
        out = capsys.readouterr().out
        assert ": 165" in out
        assert ": 161" in out

    def test_run_fig2c_small(self, capsys):
        assert main(["run", "fig2c", "--n", "1024", "--rounds", "5"]) == 0
        out = capsys.readouterr().out
        assert "cores" in out
        assert "throughput_ops" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "fig2d", "--n", "1024", "--rounds", "5",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        assert {"cache_pct", "throughput_ops"} <= set(rows[0])

    def test_run_dict_experiment(self, capsys):
        assert main(["run", "ablation-fake-policy", "--n", "512",
                     "--rounds", "120"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "least_recent" in payload and "uniform" in payload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figZZ"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliChart:
    def test_chart_rendered_for_series_experiment(self, capsys):
        from repro.cli import main
        assert main(["run", "fig2c", "--n", "1024", "--rounds", "5",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[throughput_ops vs cores]" in out

    def test_chart_flag_harmless_for_table_experiment(self, capsys):
        from repro.cli import main
        assert main(["run", "table2", "--n", "2048", "--rounds", "30",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "alpha_theory" in out
