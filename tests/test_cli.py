"""Tests for the CLI experiment runner."""

import json
import types

import pytest

from repro.cli import EXIT_CHAOS, EXIT_LINT, EXIT_USAGE, EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_bounds_default(self, capsys):
        assert main(["bounds", "--n", "1048576"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 7.1" in out

    def test_bounds_table2_high_exact(self, capsys):
        assert main(["bounds", "--n", "1000000", "--level", "high"]) == 0
        out = capsys.readouterr().out
        assert ": 165" in out
        assert ": 161" in out

    def test_run_fig2c_small(self, capsys):
        assert main(["run", "fig2c", "--n", "1024", "--rounds", "5"]) == 0
        out = capsys.readouterr().out
        assert "cores" in out
        assert "throughput_ops" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "fig2d", "--n", "1024", "--rounds", "5",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        assert {"cache_pct", "throughput_ops"} <= set(rows[0])

    def test_run_dict_experiment(self, capsys):
        assert main(["run", "ablation-fake-policy", "--n", "512",
                     "--rounds", "120"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "least_recent" in payload and "uniform" in payload

    def _parallel_report(self):
        return {
            "schema": "repro.parallel/2",
            "cpu_count": 4,
            "config": {"n": 64, "b": 8, "r": 3, "f_d": 1,
                       "value_size": 64, "rounds": 2},
            "measured": {
                1: {"rounds_per_sec": 10.0, "us_per_request": 9.0,
                    "speedup": 1.0},
                2: {"rounds_per_sec": 17.0, "us_per_request": 5.0,
                    "speedup": 1.7},
            },
            "modeled_speedup": {1: 1.0, 2: 1.8},
            "transports": {
                "pipe": {"workers": 2, "rounds_per_sec": 12.0,
                         "speedup": 1.2},
                "shm": {"workers": 2, "rounds_per_sec": 17.0,
                        "speedup": 1.7},
            },
            "backends": {
                "pure": {"2": {"rounds_per_sec": 17.0, "speedup": 1.7}},
            },
            "digests_identical": True,
            "backend_equivalence": {"identical": True},
            "shard_equivalence": {"identical": True},
            "small_shape_equivalence": {"identical": True},
        }

    def test_bench_parallel_renders_sweep(self, capsys, monkeypatch, tmp_path):
        import repro.sim.perf as perf

        seen = {}

        def fake(worker_counts, **kwargs):
            seen["worker_counts"] = worker_counts
            seen.update(kwargs)
            return self._parallel_report()

        monkeypatch.setattr(perf, "run_parallel_benchmark", fake)
        out_path = tmp_path / "parallel.json"
        assert main(["bench", "--parallel", "--workers", "1,2",
                     "--n", "64", "--rounds", "2",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert seen == {"worker_counts": (1, 2), "n": 64, "rounds": 2,
                        "backends": None}
        assert "workers=2" in out
        assert "transport=shm" in out
        assert "backend=pure" in out
        assert "digests_identical=True" in out
        assert "backend_matrix_identical=True" in out
        assert json.loads(out_path.read_text())["schema"] == \
            "repro.parallel/2"

    def test_bench_wallclock_path(self, capsys, monkeypatch):
        import repro.sim.perf as perf

        report = {
            "kernels": {"prf": {"speedup": 1.4}},
            "end_to_end": {"rounds_per_sec_speedup": 2.1},
            "trace_equivalence": {"identical": True},
        }
        monkeypatch.setattr(perf, "run_wallclock_benchmark",
                            lambda **kwargs: report)
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        assert "2.10x" in out
        assert "kernel prf: 1.40x" in out

    def test_bench_bad_worker_list_rejected(self):
        for bad in ("zero,one", "0,2", ""):
            with pytest.raises(SystemExit) as excinfo:
                main(["bench", "--parallel", "--workers", bad])
            assert excinfo.value.code == EXIT_USAGE

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "figZZ"])
        assert excinfo.value.code == EXIT_USAGE

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == EXIT_USAGE


class TestExitCodes:
    """The CLI's exit codes are a contract (scripts and CI dispatch on
    them): 0 success, 1 lint findings, 2 chaos violation, 64 bad usage.
    """

    def test_constants_are_distinct_and_pinned(self):
        assert (EXIT_LINT, EXIT_CHAOS, EXIT_USAGE) == (1, 2, 64)

    def test_usage_error_in_subparser_exits_64(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--bogus-flag"])
        assert excinfo.value.code == EXIT_USAGE

    def test_lint_clean_file_exits_0(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_finding_exits_1(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\n\n\ndef f() -> float:\n"
                         "    return time.time()\n")
        assert main(["lint", str(dirty)]) == EXIT_LINT
        assert "OBL201" in capsys.readouterr().out

    def test_lint_report_out_writes_json_artifact(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\n\n\ndef f() -> float:\n"
                         "    return time.time()\n")
        artifact = tmp_path / "report.json"
        assert main(["lint", str(dirty), "--report-out",
                     str(artifact)]) == EXIT_LINT
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["errors"] == 1

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("OBL101", "OBL201", "OBL301", "OBL401", "OBL501"):
            assert rule_id in out

    def test_chaos_replay_violation_exits_2(self, tmp_path, monkeypatch,
                                            capsys):
        import repro.testing as testing

        class FakeEpisode:
            seed = 7
            ha_mode = "replicated"

            @staticmethod
            def from_json(path):
                return FakeEpisode()

        fake_result = types.SimpleNamespace(
            ok=False, rounds_committed=3, failovers=1, aborted_attempts=0,
            violations=[])
        monkeypatch.setattr(testing, "Episode", FakeEpisode)
        monkeypatch.setattr(testing, "run_episode", lambda e: fake_result)
        reproducer = tmp_path / "episode.json"
        reproducer.write_text("{}")
        assert main(["chaos", "--replay", str(reproducer)]) == EXIT_CHAOS
        assert "FAILED" in capsys.readouterr().out

    def test_chaos_replay_clean_exits_0(self, tmp_path, monkeypatch,
                                        capsys):
        import repro.testing as testing

        class FakeEpisode:
            seed = 7
            ha_mode = "quorum"

            @staticmethod
            def from_json(path):
                return FakeEpisode()

        fake_result = types.SimpleNamespace(
            ok=True, rounds_committed=3, failovers=0, aborted_attempts=0,
            violations=[])
        monkeypatch.setattr(testing, "Episode", FakeEpisode)
        monkeypatch.setattr(testing, "run_episode", lambda e: fake_result)
        reproducer = tmp_path / "episode.json"
        reproducer.write_text("{}")
        assert main(["chaos", "--replay", str(reproducer)]) == 0
        assert "OK" in capsys.readouterr().out


class TestCliChart:
    def test_chart_rendered_for_series_experiment(self, capsys):
        from repro.cli import main
        assert main(["run", "fig2c", "--n", "1024", "--rounds", "5",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[throughput_ops vs cores]" in out

    def test_chart_flag_harmless_for_table_experiment(self, capsys):
        from repro.cli import main
        assert main(["run", "table2", "--n", "2048", "--rounds", "30",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "alpha_theory" in out
