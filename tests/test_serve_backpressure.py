"""Backpressure properties: bounded queues, retryable shedding, clean traces.

Three invariants under seeded burst load:

1. the pending queue never exceeds its cap (``high_water <= queue_cap``);
2. every shed request surfaces as a retryable
   :class:`~repro.errors.OverloadedError`, never a silent drop or a
   fatal error;
3. shedding happens *before* the proxy — the adversary-visible storage
   trace of the admitted requests is byte-identical to a serial replay,
   so admission control adds no side channel.
"""

from __future__ import annotations

import asyncio

from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.errors import OverloadedError, is_retryable
from repro.seeding import seeded_rng
from repro.serve import AsyncFrontend, OnFillPolicy
from repro.sim.perf import _trace_digest
from repro.workloads.ycsb import key_name


def _twin_datastore(seed: int = 101) -> WaffleDatastore:
    config = WaffleConfig(n=200, b=20, r=8, f_d=4, d=50, c=30,
                          value_size=64, seed=seed)
    items = {key_name(i): b"value-%d" % i for i in range(200)}
    return WaffleDatastore(config, items,
                           keychain=KeyChain.from_seed(7), log_ids=True)


def _burst(frontend: AsyncFrontend, n_requests: int, seed: int):
    """Fire a seeded burst; return (values, outcomes) after drain."""
    rng = seeded_rng(seed, stream=0)
    keys = [key_name(rng.randrange(200)) for _ in range(n_requests)]

    async def drive():
        await frontend.start()
        tasks = [asyncio.ensure_future(frontend.get(key)) for key in keys]
        await asyncio.sleep(0)
        await frontend.close()
        return await asyncio.gather(*tasks, return_exceptions=True)

    return keys, asyncio.run(drive())


class TestQueueBound:
    def test_high_water_never_exceeds_cap(self):
        datastore = _twin_datastore()
        frontend = AsyncFrontend(datastore, policy=OnFillPolicy(8),
                                 queue_cap=16)
        _, outcomes = _burst(frontend, 100, seed=5)
        stats = frontend.stats()
        assert stats["high_water"] <= 16
        assert stats["depth"] == 0  # fully drained at close
        assert stats["shed"] > 0  # the burst genuinely overflowed
        assert stats["admitted"] + stats["shed"] == 100

    def test_every_request_is_accounted_for(self):
        datastore = _twin_datastore()
        frontend = AsyncFrontend(datastore, policy=OnFillPolicy(8),
                                 queue_cap=16)
        _, outcomes = _burst(frontend, 100, seed=5)
        completed = [o for o in outcomes if isinstance(o, bytes)]
        shed = [o for o in outcomes if isinstance(o, OverloadedError)]
        assert len(completed) + len(shed) == 100
        assert not [o for o in outcomes
                    if isinstance(o, Exception)
                    and not isinstance(o, OverloadedError)]

    def test_nothing_shed_under_the_cap(self):
        datastore = _twin_datastore()
        frontend = AsyncFrontend(datastore, policy=OnFillPolicy(8),
                                 queue_cap=256)
        _, outcomes = _burst(frontend, 64, seed=5)
        assert all(isinstance(o, bytes) for o in outcomes)
        assert frontend.stats()["shed"] == 0


class TestShedSemantics:
    def test_shed_requests_are_retryable_overloaded(self):
        datastore = _twin_datastore()
        frontend = AsyncFrontend(datastore, policy=OnFillPolicy(8),
                                 queue_cap=8)
        _, outcomes = _burst(frontend, 48, seed=11)
        shed = [o for o in outcomes if isinstance(o, Exception)]
        assert shed, "burst should overflow a cap of 8"
        for error in shed:
            assert isinstance(error, OverloadedError)
            assert is_retryable(error)
            assert "retry" in str(error)

    def test_shed_then_retry_succeeds(self):
        """The retry contract: the same request admitted a moment later."""
        datastore = _twin_datastore()

        async def scenario():
            frontend = AsyncFrontend(datastore, policy=OnFillPolicy(4),
                                     queue_cap=4)
            await frontend.start()
            first = [asyncio.ensure_future(frontend.get(key_name(i)))
                     for i in range(4)]
            await asyncio.sleep(0)
            # Queue is at cap: this one must shed...
            try:
                await frontend.get(key_name(7))
            except OverloadedError:
                shed_once = True
            else:
                shed_once = False
            await asyncio.gather(*first)  # round fires, queue drains
            # ...and the retry goes through against the emptied queue,
            # drained by close() as a final partial round.
            retry = asyncio.ensure_future(frontend.get(key_name(7)))
            await asyncio.sleep(0)
            await frontend.close()
            return shed_once, await retry

        shed_once, value = asyncio.run(scenario())
        assert shed_once
        assert value == b"value-7"


class TestTraceNeutrality:
    def test_shedding_leaves_the_trace_serial_identical(self):
        """Admitted rounds replayed serially on a twin digest equal."""
        concurrent = _twin_datastore()
        serial = _twin_datastore()
        partitions: list[list] = []

        def spy(requests):
            partitions.append(list(requests))
            return concurrent.execute_batch(requests)

        frontend = AsyncFrontend(execute=spy, r=8,
                                 policy=OnFillPolicy(8), queue_cap=16)
        _, outcomes = _burst(frontend, 100, seed=23)
        assert frontend.stats()["shed"] > 0

        for batch in partitions:
            serial.execute_batch(batch)
        assert _trace_digest(concurrent.recorder.records) == \
            _trace_digest(serial.recorder.records)

    def test_shed_requests_never_reach_storage(self):
        """Record count is a function of rounds executed, not offered load."""
        overloaded = _twin_datastore()
        frontend = AsyncFrontend(overloaded, policy=OnFillPolicy(8),
                                 queue_cap=16)
        _burst(frontend, 100, seed=23)
        rounds = frontend.stats()["rounds"]

        # A lighter run with the same number of *rounds* leaves exactly
        # as many records: offered-but-shed load is storage-invisible.
        calm = _twin_datastore()
        calm_frontend = AsyncFrontend(calm, policy=OnFillPolicy(8),
                                      queue_cap=4096)
        _burst(calm_frontend, rounds * 8, seed=23)
        assert calm_frontend.stats()["rounds"] == rounds
        assert len(overloaded.recorder.records) == \
            len(calm.recorder.records)
