"""Shared-memory transport: frame codec pins, segment lifecycle, leaks.

Three contracts this file freezes:

* **Codec rejection** — a payload that ends inside a 4-byte length
  prefix, or whose frame declares more bytes than remain, raises
  :class:`~repro.errors.FrameError` instead of silently misparsing.  A
  short frame fed onward would hand the crypto kernels misaligned
  inputs, so truncation must be loud.
* **Segment economy** — ``SegmentPool`` reuses released segments; the
  steady state of a long pooled run allocates nothing new.
* **No leaks** — a closed pool leaves nothing under ``/dev/shm`` with
  its name prefix, including after worker processes are killed
  mid-flight (POSIX shared memory outlives processes; only an explicit
  unlink removes it, so leak coverage needs the crash path, not just
  the clean one).
"""

from __future__ import annotations

import os
import pathlib
import signal
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.crypto.prf import Prf
from repro.errors import FrameError, ProtocolError
from repro.parallel import SegmentPool, WorkerPool, iter_frames
from repro.parallel.worker import (
    pack_frames,
    pack_frames_into,
    packed_size,
    run_chunk_shm,
    unpack_frames,
)

SHM_DIR = pathlib.Path("/dev/shm")


def _leftovers(prefix: str) -> list[str]:
    """Names still present under /dev/shm for a pool's prefix."""
    if not SHM_DIR.is_dir():  # pragma: no cover - non-POSIX-shm host
        pytest.skip("/dev/shm not available on this platform")
    return sorted(p.name for p in SHM_DIR.glob(prefix + "*"))


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------
class TestFrameCodecRejection:
    FRAMES = [b"", b"a", b"frame-two", b"\x00" * 100]

    def test_roundtrip(self):
        assert unpack_frames(pack_frames(self.FRAMES)) == self.FRAMES
        assert unpack_frames(b"") == []

    def test_tuple_frames_pack_contiguously(self):
        parts = [(b"nonce0000nonce00", b"payload"), (b"", b"x"), b"plain"]
        flat = [b"nonce0000nonce00payload", b"x", b"plain"]
        assert pack_frames(parts) == pack_frames(flat)
        assert packed_size(parts) == len(pack_frames(flat))

    def test_pack_into_matches_pack(self):
        buf = bytearray(packed_size(self.FRAMES))
        written = pack_frames_into(self.FRAMES, memoryview(buf))
        assert written == len(buf)
        assert bytes(buf) == pack_frames(self.FRAMES)

    def test_iter_frames_is_zero_copy(self):
        payload = memoryview(pack_frames([b"abc", b"defg"]))
        views = list(iter_frames(payload))
        assert all(isinstance(view, memoryview) for view in views)
        assert [bytes(view) for view in views] == [b"abc", b"defg"]

    def test_partial_length_prefix_rejected(self):
        payload = pack_frames([b"intact"]) + b"\x00\x01"
        with pytest.raises(FrameError, match="inside a frame length prefix"):
            unpack_frames(payload)

    def test_frame_longer_than_payload_rejected(self):
        payload = pack_frames([b"intact"]) + (900).to_bytes(4, "big") + b"xy"
        with pytest.raises(FrameError, match="declares 900 bytes"):
            unpack_frames(payload)

    def test_truncated_mid_frame_rejected(self):
        payload = pack_frames([b"a-frame-that-gets-cut"])
        with pytest.raises(FrameError, match="declares"):
            unpack_frames(payload[:-3])

    def test_frame_error_is_fatal_protocol_error(self):
        # Retrying a truncated chunk would re-feed garbage to the
        # kernels; the taxonomy must classify it as non-retryable.
        from repro.errors import is_retryable

        assert issubclass(FrameError, ProtocolError)
        assert not is_retryable(FrameError("short"))


# ---------------------------------------------------------------------------
# Segment pool
# ---------------------------------------------------------------------------
class TestSegmentPool:
    def test_sizes_are_power_of_two_pages(self):
        with SegmentPool() as pool:
            assert pool.acquire(1).size == 4096
            assert pool.acquire(4096).size == 4096
            assert pool.acquire(4097).size == 8192
            assert pool.acquire(100_000).size == 131072

    def test_release_reuses_segment(self):
        with SegmentPool() as pool:
            first = pool.acquire(1000)
            pool.release(first)
            assert pool.acquire(500).name == first.name

    def test_best_fit_prefers_smallest_sufficient(self):
        with SegmentPool() as pool:
            small = pool.acquire(1000)
            large = pool.acquire(50_000)
            pool.release(large)
            pool.release(small)
            assert pool.acquire(800).name == small.name
            assert pool.acquire(40_000).name == large.name

    def test_close_unlinks_everything(self):
        pool = SegmentPool()
        pool.acquire(1000)
        held = pool.acquire(20_000)
        pool.release(held)
        assert _leftovers(pool.prefix)
        pool.close()
        assert _leftovers(pool.prefix) == []
        pool.close()  # idempotent

    def test_closed_pool_rejects_acquire(self):
        pool = SegmentPool()
        segment = pool.acquire(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.acquire(1)
        pool.release(segment)  # late release after close is a no-op


# ---------------------------------------------------------------------------
# Transport end-to-end
# ---------------------------------------------------------------------------
def _derive_frames(count: int) -> list[bytes]:
    return [f"key{i:04d}".encode() + b"\x00" + str(i).encode()
            for i in range(count)]


class TestShmTransport:
    MATERIAL = (b"prf", b"pure", b"shm-transport-secret")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            WorkerPool(2, transport="carrier-pigeon")

    def test_shm_matches_pipe_and_inline(self):
        frames = _derive_frames(100)
        oracle = Prf(self.MATERIAL[2])
        expected = [
            oracle.derive_bytes(frame).hex()[:32].encode("ascii")
            for frame in frames
        ]
        for transport in ("shm", "pipe"):
            with WorkerPool(2, min_batch=1, transport=transport) as pool:
                assert pool.run("derive", self.MATERIAL, frames) == expected

    def test_steady_state_allocates_nothing(self):
        """After the first round, chunk traffic rides the free-list."""
        frames = _derive_frames(120)
        with WorkerPool(2, min_batch=1) as pool:
            pool.run("derive", self.MATERIAL, frames)
            created = {seg.name for seg in pool._segments._all}
            for _ in range(3):
                pool.run("derive", self.MATERIAL, frames)
            assert {seg.name for seg in pool._segments._all} == created

    def test_undersized_response_cap_is_loud(self):
        """The worker re-checks the coordinator's sizing: a cap bug is an
        explicit FrameError, never an out-of-bounds segment write."""
        frames = _derive_frames(8)
        with SegmentPool() as segments:
            request = segments.acquire(packed_size(frames))
            pack_frames_into(frames, request.buf)
            response = segments.acquire(64)
            with pytest.raises(FrameError, match="coordinator sized"):
                run_chunk_shm("derive", self.MATERIAL, request.name,
                              packed_size(frames), response.name, 16)

    def test_clean_close_leaves_no_shm(self):
        pool = WorkerPool(2, min_batch=1)
        prefix = pool._segments.prefix
        pool.run("derive", self.MATERIAL, _derive_frames(64))
        assert _leftovers(prefix)
        pool.close()
        assert _leftovers(prefix) == []

    def test_worker_death_mid_chunk_leaves_no_shm(self):
        """Killing every worker between chunks breaks the pool, but the
        coordinator still owns the segments: close() unlinks them all."""
        pool = WorkerPool(2, min_batch=1)
        prefix = pool._segments.prefix
        pool.run("derive", self.MATERIAL, _derive_frames(64))
        victims = list(pool._executor._processes.keys())
        assert victims, "expected live worker processes"
        for pid in victims:
            os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        with pytest.raises(BrokenProcessPool):
            # The kill can race the submit; keep dispatching until the
            # executor notices its workers are gone.
            while time.monotonic() < deadline:
                pool.run("derive", self.MATERIAL, _derive_frames(64))
        pool.close()
        assert _leftovers(prefix) == []
