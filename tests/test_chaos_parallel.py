"""Determinism under parallelism: chaos episodes with the worker pool.

The chaos harness already pins that a fixed episode is deterministic
(same faults, same trace, same responses) when run twice.  This suite
pins the stronger property DESIGN.md §10 claims for the parallel
engine: neither the *worker count* nor the *crypto backend* is an
input — the same episodes, run with the batched crypto routed through
pools of different sizes (``min_batch=1``, so even chaos-sized batches
cross the process boundary) and through every importable backend, must
produce identical oracles, identical collapsed traces, and identical
fault/failover accounting.  Failovers matter here: promotion restores
a checkpoint whose unpickling reduced the pooled kernels to plain
ones (and, for a native backend, re-resolved it through the registry),
and the runner re-attaches the pool — byte equality across worker
counts and backends proves that round trip is lossless.

A small deterministic slice runs in tier-1; the 50-episode sweep
carries the ``chaos`` marker for CI's dedicated step (or locally via
``pytest -m chaos tests/test_chaos_parallel.py``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.crypto.backend import available_backend_names
from repro.parallel import WorkerPool
from repro.testing import generate_episode, run_episode

ADVERSE = {"fault_rate": 0.1, "crash_rate": 0.1, "mutation_rate": 0.15}


def _signature(result):
    return {
        "trace": [(r.op, r.storage_id, r.round)
                  for r in result.collapsed_records],
        "rounds": result.rounds_committed,
        "failovers": result.failovers,
        "aborted": result.aborted_attempts,
        "faults": result.faults_injected,
        "violations": [str(v) for v in result.violations],
    }


def _run_with_workers(episodes, worker_counts=(1, 4)):
    """Each episode once per worker count; returns signatures per count."""
    signatures = {}
    for workers in worker_counts:
        with WorkerPool(workers, min_batch=1) as pool:
            signatures[workers] = [
                _signature(run_episode(episode, parallel_pool=pool))
                for episode in episodes
            ]
    return signatures


# ---------------------------------------------------------------------------
# Tier-1 slice
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("ha_mode", ["replicated", "quorum"])
def test_pooled_episode_matches_inline(ha_mode):
    episode = generate_episode(seed=77, ha_mode=ha_mode, **ADVERSE)
    signatures = _run_with_workers([episode], worker_counts=(1, 2))
    inline, pooled = signatures[1][0], signatures[2][0]
    assert inline["violations"] == []
    assert pooled == inline


def test_pooled_failover_episode_is_clean():
    """A known crashy script: the pool survives promotion re-attachment."""
    episode = generate_episode(seed=2, ha_mode="replicated",
                               fault_rate=0.15, crash_rate=0.1)
    with WorkerPool(2, min_batch=1) as pool:
        result = run_episode(episode, parallel_pool=pool)
    assert result.ok, "; ".join(str(v) for v in result.violations[:5])
    assert result.failovers > 0


@pytest.mark.parametrize("backend", available_backend_names())
def test_backend_times_workers_matches_inline_pure(backend):
    """The backend x worker matrix: every importable backend, serial and
    pooled, reproduces the serial-pure signature byte for byte — an
    adverse episode exercises faults and failover, so the equality also
    covers checkpoint restore re-resolving a native backend."""
    episode = generate_episode(seed=77, ha_mode="replicated", **ADVERSE)
    reference = _signature(run_episode(episode, crypto_backend="pure"))
    assert reference["violations"] == []
    for workers in (1, 2):
        with WorkerPool(workers, min_batch=1) as pool:
            signature = _signature(run_episode(
                episode, parallel_pool=pool, crypto_backend=backend))
        assert signature == reference, f"{backend} x {workers} diverged"


def test_pooled_episodes_leave_no_shm():
    """Chaos traffic rides shared-memory segments; after the pool closes
    nothing may remain under /dev/shm (checkpoint/failover churn must
    not strand a segment)."""
    shm_dir = pathlib.Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-POSIX-shm host
        pytest.skip("/dev/shm not available on this platform")
    episode = generate_episode(seed=2, ha_mode="replicated",
                               fault_rate=0.15, crash_rate=0.1)
    with WorkerPool(2, min_batch=1) as pool:
        prefix = pool._segments.prefix
        run_episode(episode, parallel_pool=pool)
        assert list(shm_dir.glob(prefix + "*")), \
            "episode was expected to move chunks through shared memory"
    assert list(shm_dir.glob(prefix + "*")) == []


# ---------------------------------------------------------------------------
# The 50-episode sweep (CI's dedicated chaos step)
# ---------------------------------------------------------------------------
@pytest.mark.chaos
def test_sweep_50_episodes_identical_across_worker_counts():
    episodes = [
        generate_episode(seed=3000 + index,
                         ha_mode="quorum" if index % 3 == 0 else "replicated",
                         **ADVERSE)
        for index in range(50)
    ]
    signatures = _run_with_workers(episodes, worker_counts=(1, 4))
    clean = sum(1 for sig in signatures[1] if not sig["violations"])
    assert clean == len(episodes), \
        f"only {clean}/{len(episodes)} episodes clean inline"
    assert signatures[4] == signatures[1]
    # The sweep is only meaningful if adversity fired while pooled.
    assert sum(sig["failovers"] for sig in signatures[4]) > 0
    assert sum(sum(sig["faults"].values()) for sig in signatures[4]) > 0
