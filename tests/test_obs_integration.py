"""End-to-end observability: instrumentation wiring and exporters.

Covers the per-round metrics emitted by the Waffle proxy, the kernel
profiling hooks, the net/closed-loop/HA instrumentation, the trace-
neutrality oracle across all four systems, and the three exporters
(Prometheus text, JSONL traces, terminal dashboard) plus the CLI
``obs`` subcommand.
"""

import json

from repro import obs
from repro.core.config import WaffleConfig
from repro.crypto.keys import KeyChain
from repro.obs.registry import MetricsRegistry
from repro.sim.perf import _build_proxy, _request_stream


class TestProxyInstrumentation:
    def test_round_counters_match_proxy_totals(self):
        config = WaffleConfig.paper_defaults(n=256, seed=11)
        rounds = 5
        with obs.capture() as handle:
            proxy = _build_proxy(config, KeyChain.from_seed(11))
            for batch in _request_stream(config, rounds, 11):
                proxy.handle_batch(batch)
        snap = handle.registry.snapshot()
        counters = snap["counters"]
        w = "{system=waffle}"
        assert counters["rounds.total" + w] == rounds
        assert counters["requests.total" + w] == rounds * config.r
        # Every round reads exactly B ids, split real/fake-real/fake-dummy.
        assert counters["server.reads.total" + w] == rounds * config.b
        assert (counters["batch.real.total" + w]
                + counters["batch.fake_real.total" + w]
                + counters["batch.fake_dummy.total" + w]) == rounds * config.b
        assert counters["server.writes.total" + w] == rounds * config.b
        assert counters["rounds.total" + w] == proxy.totals.rounds

    def test_phase_spans_cover_every_round(self):
        config = WaffleConfig.paper_defaults(n=256, seed=11)
        rounds = 4
        with obs.capture() as handle:
            proxy = _build_proxy(config, KeyChain.from_seed(11))
            for batch in _request_stream(config, rounds, 11):
                proxy.handle_batch(batch)
        hists = handle.registry.snapshot()["histograms"]
        w = "{system=waffle}"
        assert hists["round.seconds" + w]["count"] == rounds
        for phase in ("plan", "decrypt", "cache", "evict", "derive"):
            assert hists[f"phase.{phase}.seconds" + w]["count"] == rounds
        for direction in ("read", "write"):
            key = "phase.server_io.seconds{dir=%s,system=waffle}" % direction
            assert hists[key]["count"] == rounds
        # The trace stream carries the same spans with attributes.
        round_spans = handle.tracer.spans("round")
        assert len(round_spans) == rounds
        assert all(s["attrs"]["system"] == "waffle" for s in round_spans)
        assert all(s["attrs"]["requests"] == config.r for s in round_spans)

    def test_kernel_profiling_hooks(self):
        from repro.crypto.aead import AuthenticatedCipher
        from repro.crypto.prf import Prf
        from repro.ds.treap import Treap

        with obs.capture() as handle:
            prf = Prf(b"kernel-test-secret")
            prf.derive_many([("k", 1), ("j", 2)])
            cipher = AuthenticatedCipher(enc_key=b"enc-key-kernel",
                                         mac_key=b"mac-key-kernel")
            blobs = cipher.encrypt_many([b"a", b"b", b"c"])
            cipher.decrypt_many(blobs)
            tree = Treap(seed=1)
            for i in range(8):
                tree.insert(f"k{i}", (i, i, f"k{i}"))
            tree.pop_min_many(4)
        counters = handle.registry.snapshot()["counters"]
        assert counters["kernel.prf.derive_many.calls.total"] == 1
        assert counters["kernel.prf.derive_many.items.total"] == 2
        assert counters["kernel.aead.encrypt_many.items.total"] == 3
        assert counters["kernel.aead.decrypt_many.items.total"] == 3
        assert counters["kernel.treap.pop_min_many.items.total"] == 4
        hists = handle.registry.snapshot()["histograms"]
        assert hists["kernel.aead.encrypt_many.seconds"]["count"] == 1

    def test_storage_access_events_stream(self):
        from repro.storage.memory import InMemoryStore
        from repro.storage.recording import RecordingStore

        with obs.capture() as handle:
            store = RecordingStore(InMemoryStore())
            store.put("a", b"1")
            store.get("a")
            store.delete("a")
        events = handle.tracer.events("storage.access")
        assert [e["attrs"]["op"] for e in events] == \
            ["write", "read", "delete"]
        counters = handle.registry.snapshot()["counters"]
        assert counters["storage.accesses.total{op=read}"] == 1


class TestTraceNeutrality:
    def test_all_four_systems_identical_with_obs_on(self):
        """ISSUE acceptance: fixed-seed adversary-visible digests are
        byte-identical with observability fully enabled, for Waffle and
        all three baselines."""
        from repro.sim.perf import compare_obs_traces

        out = compare_obs_traces(n=64, rounds=3, seed=5)
        for system in ("waffle", "pancake", "pathoram", "taostore"):
            assert out[system]["identical"], f"{system} trace diverged"
        assert out["identical"]
        assert not obs.OBS.enabled  # leaves observability off


class TestOtherLayers:
    def test_net_server_dispatch_metrics(self):
        from repro.net.server import StorageServer

        server = StorageServer()
        try:
            with obs.capture() as handle:
                server._dispatch(["DBSIZE"])
                server._dispatch(["PIPELINE", ["SET", "k", b"v"],
                                  ["GET", "k"]])
            counters = handle.registry.snapshot()["counters"]
            assert counters["net.requests.total{command=DBSIZE}"] == 1
            assert counters["net.requests.total{command=PIPELINE}"] == 1
            # The RedisSim behind the server counts per-command too.
            assert counters[
                "storage.commands.total{backend=redis_sim,command=SET}"] == 1
            spans = handle.tracer.spans("net.request")
            assert len(spans) == 2
            assert spans[1]["attrs"]["commands"] == 2
        finally:
            server.stop()

    def test_closedloop_sim_metrics(self):
        from repro.sim.closedloop import simulate_closed_loop

        with obs.capture() as handle:
            result = simulate_closed_loop(round_time_s=0.01,
                                          batch_capacity=4, clients=8,
                                          duration_s=1.0)
        snap = handle.registry.snapshot()
        counters = snap["counters"]
        assert counters["closedloop.rounds.total{clock=sim}"] == result.rounds
        assert counters["closedloop.requests.total{clock=sim}"] == \
            result.requests
        hist = snap["histograms"]["closedloop.latency.seconds{clock=sim}"]
        assert hist["count"] == result.requests
        assert handle.tracer.events("closedloop.done")

    def test_ha_checkpoint_and_failover_metrics(self):
        from repro.ha.replicated import HighlyAvailableProxy

        config = WaffleConfig.paper_defaults(n=128, seed=5)
        proxy = _build_proxy(config, KeyChain.from_seed(5))
        with obs.capture() as handle:
            ha = HighlyAvailableProxy(proxy)
            for batch in _request_stream(config, 2, 5):
                ha.handle_batch(batch)
            ha.fail_over()
        counters = handle.registry.snapshot()["counters"]
        assert counters["ha.snapshots.total"] == 2
        assert counters["ha.failovers.total"] == 1
        assert len(handle.tracer.spans("ha.checkpoint")) == 2
        assert len(handle.tracer.events("ha.failover")) == 1


class TestExporters:
    def _populated_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests.total", system="waffle").inc(7)
        registry.gauge("cache.size").set(3)
        registry.histogram("round.seconds").observe(0.25)
        registry.histogram("lat", mode="buckets",
                           buckets=(0.1, 1.0)).observe(0.5)
        return registry

    def test_prometheus_rendering(self, tmp_path):
        from repro.obs.export import render_prometheus, write_prometheus

        registry = self._populated_registry()
        text = render_prometheus(registry)
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{system="waffle"} 7' in text
        assert "# TYPE cache_size gauge" in text
        assert "# TYPE round_seconds summary" in text
        assert 'round_seconds{quantile="0.5"} 0.25' in text
        assert "round_seconds_count 1" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, path)
        assert path.read_text() == text

    def test_write_trace_jsonl(self, tmp_path):
        from repro.obs.export import write_trace_jsonl

        records = [{"kind": "event", "name": "x", "attrs": {}, "seq": 0},
                   {"kind": "span", "name": "round", "dur": 0.1,
                    "attrs": {}, "seq": 1}]
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(records, path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == records

    def test_dashboard_renders_all_sections(self):
        from repro.analysis.monitor import AlphaMonitor
        from repro.obs.dashboard import render_dashboard

        config = WaffleConfig.paper_defaults(n=128, seed=3)
        with obs.capture() as handle:
            proxy = _build_proxy(config, KeyChain.from_seed(3))
            for batch in _request_stream(config, 3, 3):
                proxy.handle_batch(batch)
            monitor = AlphaMonitor(alpha_budget=50, window_rounds=2)
            text = render_dashboard(handle.registry, monitor=monitor)
        assert "waffle" in text
        assert "throughput / latency" in text
        assert "batch composition" in text
        assert "kernel profile" in text
        assert "alpha-budget status" in text
        assert "OK" in text


class TestCli:
    def test_cli_obs_smoke(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        rc = main(["obs", "--n", "128", "--rounds", "4", "--window", "2",
                   "--trace-out", str(trace), "--prom-out", str(prom)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro observability" in out
        assert "alpha-budget status" in out
        assert prom.read_text().startswith("# TYPE")
        assert sum(1 for _ in trace.open()) > 0
        assert not obs.OBS.enabled
