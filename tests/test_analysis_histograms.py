"""Tests for α-histogram construction and comparison."""

from collections import Counter

import pytest

from repro.analysis.histograms import (
    alpha_histogram,
    histogram_difference,
    render_histogram,
)


class TestAlphaHistogram:
    def test_counts_values(self):
        hist = alpha_histogram([0, 0, 1, 3, 3, 3])
        assert hist == Counter({0: 2, 1: 1, 3: 3})

    def test_empty(self):
        assert alpha_histogram([]) == Counter()


class TestHistogramDifference:
    def test_identical_histograms(self):
        hist = Counter({0: 100, 1: 50})
        comparison = histogram_difference(hist, Counter(hist))
        assert comparison.total_difference == 0
        assert comparison.differing_fraction == 0.0
        assert comparison.mean_bucket_difference == 0.0

    def test_disjoint_histograms(self):
        comparison = histogram_difference(Counter({0: 10}), Counter({5: 10}))
        assert comparison.total_difference == 20
        assert comparison.differing_fraction == 1.0
        assert comparison.buckets == 2

    def test_partial_overlap(self):
        first = Counter({0: 100, 1: 100})
        second = Counter({0: 90, 1: 110})
        comparison = histogram_difference(first, second)
        assert comparison.total_difference == 20
        assert comparison.differing_fraction == pytest.approx(0.05)
        assert comparison.mean_bucket_difference == pytest.approx(10.0)

    def test_empty_histograms(self):
        comparison = histogram_difference(Counter(), Counter())
        assert comparison.buckets == 0
        assert comparison.differing_fraction == 0.0

    def test_differing_fraction_matches_paper_semantics(self):
        """'x% of requests differ in their αs' = total variation."""
        first = Counter({0: 990, 1: 10})
        second = Counter({0: 980, 1: 20})
        comparison = histogram_difference(first, second)
        assert comparison.differing_fraction == pytest.approx(0.01)


class TestRendering:
    def test_render_nonempty(self):
        out = render_histogram(Counter({0: 5, 2: 10}))
        assert "alpha=" in out and "#" in out

    def test_render_empty(self):
        assert "empty" in render_histogram(Counter())

    def test_render_truncates(self):
        hist = Counter({i: 1 for i in range(100)})
        out = render_histogram(hist, max_rows=5)
        assert "more buckets" in out
