"""Tests for the Pancake proxy."""

import random
from collections import Counter

import numpy as np
import pytest

from repro.baselines.pancake import PancakeProxy
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation, TraceRequest


def zipf_pi(n: int, theta: float = 0.99) -> np.ndarray:
    weights = np.arange(1, n + 1, dtype=float) ** (-theta)
    return weights / weights.sum()


def build(n=50, batch_size=20, seed=1, store=None, theta=0.99):
    keys = [f"user{i:08d}" for i in range(n)]
    items = {key: b"val-%d" % i for i, key in enumerate(keys)}
    store = store if store is not None else RedisSim()
    proxy = PancakeProxy(keys, items, zipf_pi(n, theta), store,
                         batch_size=batch_size, seed=seed,
                         keychain=KeyChain.from_seed(seed))
    return proxy, keys, items


class TestCorrectness:
    def test_read_returns_value(self):
        proxy, keys, items = build()
        assert proxy.execute(TraceRequest(Operation.READ, keys[3])) == \
            items[keys[3]]

    def test_write_then_read(self):
        proxy, keys, _ = build()
        proxy.execute(TraceRequest(Operation.WRITE, keys[3], b"NEW"))
        assert proxy.execute(TraceRequest(Operation.READ, keys[3])) == b"NEW"

    def test_linearizable_random_history(self):
        proxy, keys, items = build(n=30, batch_size=10, seed=2)
        reference = dict(items)
        rng = random.Random(3)
        for step in range(400):
            key = keys[rng.randrange(30)]
            if rng.random() < 0.5:
                value = proxy.execute(TraceRequest(Operation.READ, key))
                assert value == reference[key], step
            else:
                value = b"w%d" % step
                proxy.execute(TraceRequest(Operation.WRITE, key, value))
                reference[key] = value

    def test_update_propagates_through_replicas(self):
        """The updateCache eventually rewrites every replica; reads keep
        returning the newest value throughout."""
        proxy, keys, _ = build(n=20, batch_size=10, seed=4)
        hot = keys[0]  # most replicas under Zipf
        proxy.execute(TraceRequest(Operation.WRITE, hot, b"FINAL"))
        for _ in range(200):
            proxy.process_batch()
        assert proxy.execute(TraceRequest(Operation.READ, hot)) == b"FINAL"

    def test_unknown_key_rejected(self):
        from repro.errors import ProtocolError
        proxy, _, _ = build()
        proxy.submit(TraceRequest(Operation.READ, "ghost"))
        with pytest.raises(ProtocolError):
            for _ in range(50):
                proxy.process_batch()

    def test_invalid_construction(self):
        keys = ["a", "b"]
        items = {"a": b"1", "b": b"2"}
        with pytest.raises(ConfigurationError):
            PancakeProxy(keys, items, [0.5, 0.5], RedisSim(), batch_size=0)
        with pytest.raises(ConfigurationError):
            PancakeProxy(keys, items, [0.5, 0.5], RedisSim(), delta=1.5)
        with pytest.raises(ConfigurationError):
            PancakeProxy(["a"], items, [1.0], RedisSim())


class TestSmoothingBehaviour:
    def test_server_frequency_smoothed_under_assumed_distribution(self):
        """When queries follow the assumed π, per-replica access counts on
        the server are near-uniform (Pancake's core guarantee)."""
        n = 30
        recorder = RecordingStore(RedisSim())
        proxy, keys, _ = build(n=n, batch_size=10, seed=5, store=recorder)
        rng = np.random.default_rng(6)
        pi = zipf_pi(n)
        trace_keys = rng.choice(n, size=4000, p=pi)
        for index in trace_keys:
            proxy.submit(TraceRequest(Operation.READ, keys[int(index)]))
        while proxy.pending():
            proxy.process_batch()
        counts = Counter(r.storage_id for r in recorder.records
                         if r.op == "read")
        values = np.array(list(counts.values()), dtype=float)
        # Coefficient of variation stays small for a smoothed store.
        assert values.std() / values.mean() < 0.35

    def test_static_ids_repeat(self):
        """Pancake ids are static — the property Waffle removes."""
        recorder = RecordingStore(RedisSim())
        proxy, keys, _ = build(n=20, batch_size=10, seed=7, store=recorder)
        for _ in range(100):
            proxy.execute(TraceRequest(Operation.READ, keys[0]))
        reads = Counter(r.storage_id for r in recorder.records
                        if r.op == "read")
        assert reads.most_common(1)[0][1] > 1

    def test_update_cache_grows_under_write_burst(self):
        """The Θ(N) updateCache limitation: writing many cold keys parks
        one pending update per key."""
        n = 60
        proxy, keys, _ = build(n=n, batch_size=10, seed=8, theta=1.2)
        multi_replica = [
            key for i, key in enumerate(keys)
            if proxy.smoothing.replica_count(i) > 1
        ]
        for key in multi_replica:
            proxy.submit(TraceRequest(Operation.WRITE, key, b"new"))
        while proxy.pending():
            proxy.process_batch()
        assert proxy.stats.max_update_cache >= max(1, len(multi_replica) // 2)

    def test_batch_reads_equal_writes(self):
        proxy, keys, _ = build(n=20, batch_size=15, seed=9)
        proxy.submit(TraceRequest(Operation.READ, keys[0]))
        proxy.process_batch()
        assert proxy.stats.server_reads == proxy.stats.server_writes
