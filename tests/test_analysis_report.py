"""Tests for the security audit report generator."""

import random

import pytest

from repro.analysis.report import security_audit
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError
from repro.workloads.trace import Operation
from tests.conftest import make_items


def run_deployment(rounds=60, record=True, log_ids=True):
    n = 200
    config = WaffleConfig(n=n, b=20, r=8, f_d=4, d=60, c=30,
                          value_size=64, seed=5)
    datastore = WaffleDatastore(config, make_items(n), record=record,
                                keychain=KeyChain.from_seed(6),
                                log_ids=log_ids)
    rng = random.Random(7)
    for _ in range(rounds):
        datastore.execute_batch([
            ClientRequest(op=Operation.READ,
                          key=f"user{rng.randrange(n):08d}")
            for _ in range(config.r)
        ])
    return datastore


class TestSecurityAudit:
    def test_clean_deployment_passes(self):
        result = security_audit(run_deployment())
        assert result.passed
        assert "**Verdict: PASS**" in result.markdown
        assert "α,β-uniformity" in result.markdown
        assert "normalized access entropy" in result.markdown

    def test_report_contains_configuration(self):
        datastore = run_deployment()
        result = security_audit(datastore)
        assert f"N={datastore.config.n}" in result.markdown
        assert "bandwidth overhead" in result.markdown

    def test_recorder_required(self):
        datastore = run_deployment(record=False)
        with pytest.raises(ConfigurationError):
            security_audit(datastore)

    def test_tampered_trace_fails_invariants(self):
        datastore = run_deployment(rounds=10)
        # Forge an adversary-visible double read of one id.
        records = datastore.recorder.records
        first_read = next(r for r in records if r.op == "read")
        from repro.storage.recording import AccessRecord
        records.append(AccessRecord("read", first_read.storage_id,
                                    datastore.recorder.round, 10**9))
        result = security_audit(datastore)
        assert not result.invariants_ok
        assert not result.passed
        assert "VIOLATION" in result.markdown

    def test_audit_without_id_log_skips_beta(self):
        datastore = run_deployment(rounds=20, log_ids=False)
        result = security_audit(datastore)
        assert result.beta_ok  # vacuous
        assert "log_ids=True" in result.markdown


class TestCliAudit:
    def test_cli_audit_passes(self, capsys):
        from repro.cli import main
        assert main(["audit", "--n", "512", "--rounds", "40"]) == 0
        out = capsys.readouterr().out
        assert "Verdict: PASS" in out
