"""Tests for key-chain derivation."""

import pytest

from repro.crypto.keys import KeyChain


class TestKeyChain:
    def test_same_master_same_derivations(self):
        a = KeyChain(master=b"master-secret")
        b = KeyChain(master=b"master-secret")
        assert a.prf.derive("k", 3) == b.prf.derive("k", 3)
        assert a.cipher.decrypt(b.cipher.encrypt(b"v")) == b"v"

    def test_distinct_masters_diverge(self):
        a = KeyChain(master=b"master-a")
        b = KeyChain(master=b"master-b")
        assert a.prf.derive("k", 0) != b.prf.derive("k", 0)

    def test_random_master_by_default(self):
        assert KeyChain().prf.derive("k", 0) != KeyChain().prf.derive("k", 0)

    def test_from_seed_reproducible(self):
        assert (KeyChain.from_seed(42).prf.derive("k", 1)
                == KeyChain.from_seed(42).prf.derive("k", 1))
        assert (KeyChain.from_seed(42).prf.derive("k", 1)
                != KeyChain.from_seed(43).prf.derive("k", 1))

    def test_empty_master_rejected(self):
        with pytest.raises(ValueError):
            KeyChain(master=b"")

    def test_prf_and_cipher_keys_independent(self):
        chain = KeyChain(master=b"m")
        # Decrypting with a chain whose PRF matches but master differs fails,
        # demonstrating domain separation end to end.
        assert chain.prf.derive("k", 0) == KeyChain(master=b"m").prf.derive("k", 0)
