"""Unit and property tests for the PRF."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.prf import Prf


@pytest.fixture
def prf() -> Prf:
    return Prf(b"test-secret")


class TestPrfBasics:
    def test_deterministic(self, prf):
        assert prf.derive("k1", 5) == prf.derive("k1", 5)

    def test_distinct_timestamps_distinct_ids(self, prf):
        assert prf.derive("k1", 1) != prf.derive("k1", 2)

    def test_distinct_keys_distinct_ids(self, prf):
        assert prf.derive("k1", 1) != prf.derive("k2", 1)

    def test_fixed_output_length(self, prf):
        ids = {prf.derive(f"key-{i}", i) for i in range(50)}
        assert {len(sid) for sid in ids} == {32}

    def test_distinct_secrets_diverge(self):
        a, b = Prf(b"secret-a"), Prf(b"secret-b")
        assert a.derive("k", 0) != b.derive("k", 0)

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"")

    def test_prefix_ambiguity_resolved(self, prf):
        # "k1" + ts 23 must not collide with "k12" + ts 3.
        assert prf.derive("k1", 23) != prf.derive("k12", 3)

    def test_derive_bytes_deterministic(self, prf):
        assert prf.derive_bytes(b"x") == prf.derive_bytes(b"x")
        assert prf.derive_bytes(b"x") != prf.derive_bytes(b"y")


class TestPrfProperties:
    @given(st.text(min_size=1, max_size=40), st.integers(0, 2**40))
    def test_output_is_hex_and_stable(self, key, ts):
        prf = Prf(b"property-secret")
        out = prf.derive(key, ts)
        assert len(out) == 32
        int(out, 16)  # valid hex
        assert out == prf.derive(key, ts)

    @given(
        st.lists(
            st.tuples(st.text(min_size=1, max_size=20), st.integers(0, 10**6)),
            min_size=2, max_size=50, unique=True,
        )
    )
    def test_no_collisions_across_inputs(self, inputs):
        prf = Prf(b"collision-secret")
        outputs = [prf.derive(key, ts) for key, ts in inputs]
        assert len(set(outputs)) == len(outputs)
