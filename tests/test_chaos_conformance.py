"""Chaos conformance: the system survives adversity with invariants intact.

Tier-1 runs a bounded matrix (every HA mode × adversity profile, a few
seeds each — fast enough for every CI run).  The large seeded sweep
(100+ episodes) carries the ``chaos`` marker; CI runs it in a dedicated
step, and locally::

    pytest -m chaos tests/test_chaos_conformance.py
"""

from __future__ import annotations

import pytest

from repro.testing import generate_episode, run_episode, run_sweep


def _assert_clean(result):
    assert result.ok, "; ".join(str(v) for v in result.violations[:5])


# ---------------------------------------------------------------------------
# Bounded tier-1 matrix
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("ha_mode", ["replicated", "quorum"])
@pytest.mark.parametrize("profile", [
    pytest.param({"fault_rate": 0.0, "crash_rate": 0.0}, id="calm"),
    pytest.param({"fault_rate": 0.15, "crash_rate": 0.0}, id="faulty"),
    pytest.param({"fault_rate": 0.0, "crash_rate": 0.25}, id="crashy"),
    pytest.param({"fault_rate": 0.08, "crash_rate": 0.08,
                  "mutation_rate": 0.2}, id="mutating"),
])
@pytest.mark.parametrize("seed", [0, 1])
def test_episode_matrix(ha_mode, profile, seed):
    episode = generate_episode(seed=seed * 37 + 5, ha_mode=ha_mode,
                               **profile)
    _assert_clean(run_episode(episode))


def test_faults_actually_fire():
    """The matrix is only meaningful if adversity really happens."""
    episode = generate_episode(seed=2, ha_mode="replicated",
                               fault_rate=0.15, crash_rate=0.1)
    result = run_episode(episode)
    _assert_clean(result)
    assert result.aborted_attempts > 0
    assert result.failovers >= result.aborted_attempts
    assert sum(result.faults_injected.values()) == result.aborted_attempts


def test_quorum_standby_churn_episode():
    episode = generate_episode(seed=3, ha_mode="quorum",
                               standby_churn_rate=0.2, fault_rate=0.08,
                               crash_rate=0.08)
    result = run_episode(episode)
    _assert_clean(result)
    assert any(op["type"] in ("fail_standby", "restore_standby", "crash")
               for op in episode.ops)


def test_mutations_survive_failover():
    """An insert enqueued right before a crash must not be lost."""
    result = None
    # Find a seed whose script has an insert immediately before a crash;
    # generation is deterministic, so this scan is too.
    for seed in range(200):
        episode = generate_episode(seed=seed, ha_mode="replicated",
                                   crash_rate=0.2, mutation_rate=0.3)
        ops = [op["type"] for op in episode.ops]
        if any(a == "insert" and b == "crash"
               for a, b in zip(ops, ops[1:])):
            result = run_episode(episode)
            break
    assert result is not None, "no insert-then-crash script found"
    _assert_clean(result)


def test_determinism_same_episode_same_trace():
    episode = generate_episode(seed=4, ha_mode="replicated",
                               fault_rate=0.1, crash_rate=0.1)
    a = run_episode(episode)
    b = run_episode(episode)
    assert [(r.op, r.storage_id, r.round) for r in a.collapsed_records] == \
           [(r.op, r.storage_id, r.round) for r in b.collapsed_records]
    assert a.rounds_committed == b.rounds_committed
    assert a.faults_injected == b.faults_injected


def test_replay_prefix_observed_on_commit_faults():
    """At least one aborted attempt should abort *after* its read burst,
    exercising the non-trivial (non-empty-prefix) branch of the replay
    invariant."""
    seen_partial_progress = False
    for seed in range(60):
        episode = generate_episode(seed=seed, ha_mode="replicated",
                                   fault_rate=0.18)
        result = run_episode(episode)
        _assert_clean(result)
        if any(not a.ok and a.end_seq > a.start_seq
               for a in result.attempts):
            seen_partial_progress = True
            break
    assert seen_partial_progress


# ---------------------------------------------------------------------------
# The large seeded sweep (CI's dedicated chaos step)
# ---------------------------------------------------------------------------
@pytest.mark.chaos
def test_sweep_100_episodes_zero_violations():
    report = run_sweep(episodes=100, base_seed=1000)
    assert report.ok, report.describe()
    # The sweep must have exercised the machinery it claims to cover.
    assert report.episodes == 100
    assert report.failovers > 0
    assert report.aborted_attempts > 0
    assert set(report.faults_injected) == {"drop", "error", "partial",
                                           "timeout"}


@pytest.mark.chaos
def test_sweep_deep_episodes():
    """Fewer, longer episodes: more rounds for α/β structure to emerge."""
    report = run_sweep(episodes=16, base_seed=7000, steps=40)
    assert report.ok, report.describe()
    assert report.rounds_committed > 16 * 20
