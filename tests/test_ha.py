"""Tests for proxy checkpointing and primary-secondary failover."""

import random

import pytest

from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import pad_value
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, ProtocolError
from repro.ha import HighlyAvailableProxy, capture_proxy, restore_proxy
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation
from tests.conftest import make_items


CONFIG = WaffleConfig(n=200, b=20, r=8, f_d=4, d=60, c=30,
                      value_size=64, seed=5)


def build_proxy(log_ids: bool = False):
    recorder = RecordingStore(RedisSim(write_once=True))
    proxy = WaffleProxy(CONFIG, store=recorder,
                        keychain=KeyChain.from_seed(6), log_ids=log_ids)
    items = {k: pad_value(v, CONFIG.value_size)
             for k, v in make_items(CONFIG.n).items()}
    proxy.initialize(items)
    return proxy, recorder


def random_batch(rng, write_fraction=0.4):
    batch = []
    for _ in range(CONFIG.r):
        key = f"user{rng.randrange(CONFIG.n):08d}"
        if rng.random() < write_fraction:
            batch.append(ClientRequest(op=Operation.WRITE, key=key,
                                       value=b"w%08d" % rng.randrange(10**8)))
        else:
            batch.append(ClientRequest(op=Operation.READ, key=key))
    return batch


class TestCheckpoint:
    def test_uninitialized_proxy_rejected(self):
        proxy = WaffleProxy(CONFIG, store=RedisSim(write_once=True))
        with pytest.raises(ProtocolError):
            capture_proxy(proxy)

    def test_restored_proxy_is_behaviourally_identical(self):
        """The acid test: from one checkpoint, the original and the
        restored proxy produce identical responses AND identical server
        access sequences for the same future batches."""
        proxy, recorder = build_proxy()
        rng = random.Random(7)
        for _ in range(10):
            proxy.handle_batch(random_batch(rng))

        blob = capture_proxy(proxy)
        # Clone the entire server so the twin acts on an identical world.
        import copy
        twin_store = RecordingStore(copy.deepcopy(recorder._inner))
        twin = restore_proxy(blob, twin_store)

        rng_a, rng_b = random.Random(8), random.Random(8)
        for _ in range(10):
            responses_a = proxy.handle_batch(random_batch(rng_a))
            responses_b = twin.handle_batch(random_batch(rng_b))
            assert [r.value for r in responses_a] == \
                   [r.value for r in responses_b]
        ids_a = [r.storage_id for r in recorder.records]
        ids_b = [r.storage_id for r in twin_store.records]
        assert ids_a[-200:] == ids_b[-200:]

    def test_checkpoint_excludes_server(self):
        # At realistic value sizes the blob (cache + metadata) is far
        # smaller than the outsourced data, because the server is not
        # part of the checkpoint.
        config = WaffleConfig(n=200, b=20, r=8, f_d=4, d=60, c=30,
                              value_size=1024, seed=5)
        recorder = RecordingStore(RedisSim(write_once=True))
        proxy = WaffleProxy(config, store=recorder,
                            keychain=KeyChain.from_seed(6))
        proxy.initialize({k: pad_value(v, config.value_size)
                          for k, v in make_items(config.n).items()})
        blob = capture_proxy(proxy)
        server_bytes = sum(len(v) for v in recorder._inner._data.values())
        assert len(blob) < server_bytes / 2

    def test_restore_preserves_counters(self):
        proxy, recorder = build_proxy()
        rng = random.Random(9)
        for _ in range(5):
            proxy.handle_batch(random_batch(rng))
        restored = restore_proxy(capture_proxy(proxy), recorder)
        assert restored.ts == proxy.ts
        assert restored.totals.rounds == proxy.totals.rounds
        assert len(restored.cache) == len(proxy.cache)
        assert list(restored.cache.keys()) == list(proxy.cache.keys())


class TestFailover:
    def test_interval_validation(self):
        proxy, _ = build_proxy()
        with pytest.raises(ConfigurationError):
            HighlyAvailableProxy(proxy, checkpoint_interval=0)

    def test_failover_preserves_linearizability(self):
        proxy, recorder = build_proxy()
        ha = HighlyAvailableProxy(proxy)
        reference = dict(make_items(CONFIG.n))
        rng = random.Random(11)

        def run_batches(count):
            for _ in range(count):
                batch, expected = [], []
                for _ in range(CONFIG.r):
                    key = f"user{rng.randrange(CONFIG.n):08d}"
                    if rng.random() < 0.4:
                        value = b"w%08d" % rng.randrange(10**8)
                        batch.append(ClientRequest(op=Operation.WRITE,
                                                   key=key, value=value))
                        reference[key] = value
                        expected.append(value)
                    else:
                        batch.append(ClientRequest(op=Operation.READ,
                                                   key=key))
                        expected.append(reference[key])
                padded = [
                    ClientRequest(op=req.op, key=req.key,
                                  value=pad_value(req.value, CONFIG.value_size),
                                  request_id=req.request_id)
                    if req.value is not None else req
                    for req in batch
                ]
                responses = ha.handle_batch(padded)
                from repro.core.datastore import unpad_value
                got = [unpad_value(r.value) for r in responses]
                assert got == expected

        run_batches(15)
        ha.fail_over()
        run_batches(15)
        ha.fail_over()
        run_batches(15)
        assert ha.failovers == 2

    def test_failover_preserves_storage_invariants_and_bounds(self):
        proxy, recorder = build_proxy(log_ids=True)
        ha = HighlyAvailableProxy(proxy)
        rng = random.Random(13)
        for burst in range(4):
            for _ in range(40):
                ha.handle_batch(random_batch(rng, write_fraction=0.3))
            ha.fail_over()
        verify_storage_invariants(recorder.records)
        report = full_report(recorder.records, ha.proxy.id_log)
        assert report.max_alpha <= CONFIG.alpha_bound_effective()
        assert report.min_beta >= CONFIG.beta_bound()

    def test_lagging_standby_refused(self):
        proxy, _ = build_proxy()
        ha = HighlyAvailableProxy(proxy, checkpoint_interval=5)
        rng = random.Random(17)
        ha.handle_batch(random_batch(rng))  # 1 < 5: no snapshot shipped
        with pytest.raises(ProtocolError):
            ha.fail_over()

    def test_lagging_standby_promotable_explicitly(self):
        proxy, _ = build_proxy()
        ha = HighlyAvailableProxy(proxy, checkpoint_interval=5)
        rng = random.Random(19)
        ha.handle_batch(random_batch(rng))
        promoted = ha.fail_over(allow_stale=True)
        assert promoted.ts < proxy.ts  # it is genuinely behind

    def test_synchronous_interval_never_lags(self):
        proxy, _ = build_proxy()
        ha = HighlyAvailableProxy(proxy, checkpoint_interval=1)
        rng = random.Random(23)
        for _ in range(5):
            ha.handle_batch(random_batch(rng))
            assert ha.standby_lag_batches == 0

    def test_snapshot_shipping_respects_interval(self):
        proxy, _ = build_proxy()
        ha = HighlyAvailableProxy(proxy, checkpoint_interval=3)
        rng = random.Random(29)
        baseline = ha.snapshots_shipped
        for _ in range(9):
            ha.handle_batch(random_batch(rng))
        assert ha.snapshots_shipped == baseline + 3


class TestQuorumReplication:
    def build_group(self, standbys=2, quorum=None):
        from repro.ha.quorum import QuorumReplicatedProxy
        proxy, recorder = build_proxy(log_ids=True)
        return QuorumReplicatedProxy(proxy, standbys=standbys,
                                     quorum=quorum), recorder

    def test_validation(self):
        from repro.ha.quorum import QuorumReplicatedProxy
        proxy, _ = build_proxy()
        with pytest.raises(ConfigurationError):
            QuorumReplicatedProxy(proxy, standbys=0)
        with pytest.raises(ConfigurationError):
            QuorumReplicatedProxy(proxy, standbys=2, quorum=5)

    def test_batches_replicate_to_quorum(self):
        group, _ = self.build_group()
        rng = random.Random(31)
        for _ in range(5):
            group.handle_batch(random_batch(rng))
        assert group.acknowledged_batches == 5
        assert group.alive_standbys == 2

    def test_promotion_after_primary_death(self):
        group, recorder = self.build_group()
        rng = random.Random(37)
        for _ in range(20):
            group.handle_batch(random_batch(rng))
        ts_before = group.proxy.ts
        group.fail_over()
        assert group.proxy.ts == ts_before  # synchronous: nothing lost
        for _ in range(20):
            group.handle_batch(random_batch(rng))
        verify_storage_invariants(recorder.records)

    def test_survives_one_standby_failure(self):
        group, _ = self.build_group(standbys=2)  # group 3, quorum 2
        group.fail_standby(0)
        rng = random.Random(41)
        group.handle_batch(random_batch(rng))  # still 2 of 2 quorum
        assert group.acknowledged_batches == 1

    def test_refuses_batches_below_quorum(self):
        group, _ = self.build_group(standbys=2, quorum=3)
        group.fail_standby(0)
        group.fail_standby(1)
        rng = random.Random(43)
        with pytest.raises(ProtocolError):
            group.handle_batch(random_batch(rng))

    def test_standby_restore_rejoins(self):
        group, _ = self.build_group(standbys=2, quorum=3)
        group.fail_standby(0)
        group.restore_standby(0)
        rng = random.Random(47)
        group.handle_batch(random_batch(rng))
        assert group.acknowledged_batches == 1

    def test_double_failure_of_same_standby_rejected(self):
        group, _ = self.build_group()
        group.fail_standby(0)
        with pytest.raises(ProtocolError):
            group.fail_standby(0)

    def test_no_alive_standby_no_promotion(self):
        group, _ = self.build_group(standbys=1, quorum=1)
        group.fail_standby(0)
        with pytest.raises(ProtocolError):
            group.fail_over()

    def test_invariants_across_promotions_and_failures(self):
        group, recorder = self.build_group(standbys=3, quorum=2)
        rng = random.Random(53)
        for _ in range(15):
            group.handle_batch(random_batch(rng))
        group.fail_standby(1)
        group.fail_over()
        for _ in range(15):
            group.handle_batch(random_batch(rng))
        group.restore_standby(1)
        group.fail_over()
        for _ in range(15):
            group.handle_batch(random_batch(rng))
        verify_storage_invariants(recorder.records)
        report = full_report(recorder.records, group.proxy.id_log)
        assert report.max_alpha <= CONFIG.alpha_bound_effective()
        assert report.min_beta >= CONFIG.beta_bound()
