"""Tests for recursive PathORAM."""

import random

import pytest

from repro.baselines.pathoram_recursive import RecursivePathOram
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim


def build(n=128, seed=1, store=None, **kwargs):
    items = {f"user{i:08d}": b"val-%d" % i for i in range(n)}
    store = store if store is not None else RedisSim()
    oram = RecursivePathOram(dict(items), store, seed=seed,
                             keychain=KeyChain.from_seed(seed), **kwargs)
    return oram, items


class TestCorrectness:
    def test_get_initial_values(self):
        oram, items = build()
        for key in list(items)[::16]:
            assert oram.get(key) == items[key]

    def test_put_then_get(self):
        oram, _ = build()
        oram.put("user00000007", b"NEW")
        assert oram.get("user00000007") == b"NEW"

    def test_missing_key(self):
        oram, _ = build()
        with pytest.raises(KeyNotFoundError):
            oram.get("ghost")

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            RecursivePathOram({}, RedisSim())
        with pytest.raises(ConfigurationError):
            RecursivePathOram({"a": b"1"}, RedisSim(), pack_factor=0)

    def test_random_history_matches_reference(self):
        oram, items = build(n=64, seed=3)
        reference = dict(items)
        rng = random.Random(4)
        keys = list(items)
        for step in range(150):
            key = keys[rng.randrange(len(keys))]
            if rng.random() < 0.5:
                assert oram.get(key) == reference[key], step
            else:
                value = b"w%d" % step
                oram.put(key, value)
                reference[key] = value


class TestRecursionProperties:
    def test_client_state_sublinear(self):
        """The whole point: client-side position entries ≪ N."""
        oram, _ = build(n=512, pack_factor=16, client_threshold=8)
        assert oram.client_state_entries < 512 / 4

    def test_small_dataset_stays_client_side(self):
        oram, _ = build(n=32, pack_factor=16, client_threshold=16)
        # 2 blocks <= threshold: no recursion level created.
        assert oram.position_map._oram is None

    def test_access_touches_data_and_map_trees(self):
        recorder = RecordingStore(RedisSim())
        oram, _ = build(n=512, store=recorder, pack_factor=16,
                        client_threshold=8)
        recorder.clear_records()
        oram.get("user00000005")
        ids = {r.storage_id.split(":")[0] for r in recorder.records}
        assert "roram" in ids      # data tree touched
        assert "oram" in ids       # position-map tree touched

    def test_recursion_costs_more_per_access(self):
        """Recursive accesses move strictly more buckets than flat ones —
        the log-factor cost Waffle's intro weighs against."""
        from repro.baselines.pathoram import PathOram

        flat_recorder = RecordingStore(RedisSim())
        items = {f"user{i:08d}": b"v" for i in range(512)}
        flat = PathOram(dict(items), flat_recorder,
                        keychain=KeyChain.from_seed(9), seed=9)
        flat_recorder.clear_records()
        flat.get("user00000001")
        flat_ops = len(flat_recorder.records)

        rec_recorder = RecordingStore(RedisSim())
        recursive, _ = build(n=512, store=rec_recorder, pack_factor=16,
                             client_threshold=8)
        rec_recorder.clear_records()
        recursive.get("user00000001")
        recursive_ops = len(rec_recorder.records)
        assert recursive_ops > 1.5 * flat_ops

    def test_stash_bounded_over_run(self):
        oram, items = build(n=256, seed=5, pack_factor=16,
                            client_threshold=8)
        rng = random.Random(6)
        keys = list(items)
        for _ in range(300):
            oram.get(keys[rng.randrange(len(keys))])
        assert oram.stash_size <= 60
