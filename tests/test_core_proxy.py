"""Tests for the Waffle proxy (Algorithm 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.uniformity import (
    full_report,
    measure_alpha,
    verify_storage_invariants,
)
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.datastore import WaffleDatastore, pad_value
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, ProtocolError
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation
from tests.conftest import make_items


def read(key: str) -> ClientRequest:
    return ClientRequest(op=Operation.READ, key=key)


def write(key: str, value: bytes) -> ClientRequest:
    return ClientRequest(op=Operation.WRITE, key=key, value=value)


def build_proxy(config: WaffleConfig, items=None, **kwargs):
    items = items if items is not None else make_items(config.n)
    recorder = RecordingStore(RedisSim(write_once=True))
    proxy = WaffleProxy(config, store=recorder,
                        keychain=KeyChain.from_seed(3), **kwargs)
    padded = {k: pad_value(v, config.value_size) for k, v in items.items()}
    proxy.initialize(padded)
    return proxy, recorder


class TestInitialization:
    def test_server_holds_uncached_reals_plus_dummies(self, small_config):
        proxy, recorder = build_proxy(small_config)
        cfg = small_config
        assert len(proxy.store) == cfg.n - cfg.c + cfg.d
        assert len(proxy.cache) == cfg.c

    def test_wrong_item_count_rejected(self, small_config):
        proxy = WaffleProxy(small_config, store=RedisSim(write_once=True))
        with pytest.raises(ConfigurationError):
            proxy.initialize({"k": b"v"})

    def test_double_initialize_rejected(self, small_config):
        proxy, _ = build_proxy(small_config)
        with pytest.raises(ProtocolError):
            proxy.initialize({})

    def test_dummy_prefix_keys_rejected(self, small_config):
        proxy = WaffleProxy(small_config, store=RedisSim(write_once=True))
        items = make_items(small_config.n - 1)
        items["\x00dummy:evil"] = b"x"
        with pytest.raises(ConfigurationError):
            proxy.initialize(items)

    def test_uninitialized_batch_rejected(self, small_config):
        proxy = WaffleProxy(small_config, store=RedisSim(write_once=True))
        with pytest.raises(ProtocolError):
            proxy.handle_batch([])

    def test_initialization_writes_recorded(self, small_config):
        _, recorder = build_proxy(small_config)
        writes = [r for r in recorder.records if r.op == "write"]
        assert len(writes) == small_config.n - small_config.c + small_config.d


class TestBatchShape:
    def test_every_round_reads_and_writes_exactly_b(self, small_config):
        proxy, _ = build_proxy(small_config)
        rng = random.Random(5)
        for _ in range(30):
            batch = [read(f"user{rng.randrange(small_config.n):08d}")
                     for _ in range(small_config.r)]
            proxy.handle_batch(batch)
            stats = proxy.last_stats
            assert stats.server_reads == small_config.b
            assert stats.server_writes == small_config.b
            assert stats.server_deletes == small_config.b
            assert (stats.unique_real_reads + stats.fake_real_reads
                    + stats.fake_dummy_reads) == small_config.b
            assert stats.fake_dummy_reads == small_config.f_d

    def test_cache_returns_to_capacity_each_round(self, small_config):
        proxy, _ = build_proxy(small_config)
        rng = random.Random(6)
        for _ in range(20):
            batch = [write(f"user{rng.randrange(small_config.n):08d}",
                           b"w") for _ in range(small_config.r)]
            proxy.handle_batch(batch)
            assert len(proxy.cache) == small_config.c
        assert proxy.totals.max_transient_cache <= (small_config.c
                                                    + small_config.r)

    def test_duplicate_requests_deduplicated(self, small_config):
        proxy, _ = build_proxy(small_config)
        # Pick a key that is not in the cache so it needs a server fetch.
        uncached = next(
            key for key in make_items(small_config.n) if key not in proxy.cache
        )
        batch = [read(uncached) for _ in range(small_config.r)]
        responses = proxy.handle_batch(batch)
        assert proxy.last_stats.unique_real_reads == 1
        assert len({resp.value for resp in responses}) == 1

    def test_oversized_batch_rejected(self, small_config):
        proxy, _ = build_proxy(small_config)
        batch = [read("user00000000")] * (small_config.r + 1)
        with pytest.raises(ProtocolError):
            proxy.handle_batch(batch)

    def test_unknown_key_rejected(self, small_config):
        proxy, _ = build_proxy(small_config)
        with pytest.raises(ProtocolError):
            proxy.handle_batch([read("stranger")])

    def test_partial_batch_allowed(self, small_config):
        proxy, _ = build_proxy(small_config)
        responses = proxy.handle_batch([read("user00000000")])
        assert len(responses) == 1
        assert proxy.last_stats.server_reads == small_config.b

    def test_empty_batch_still_runs_fakes(self, small_config):
        proxy, _ = build_proxy(small_config)
        assert proxy.handle_batch([]) == []
        stats = proxy.last_stats
        assert stats.server_reads == small_config.b
        assert stats.unique_real_reads == 0
        assert stats.fake_real_reads == small_config.b - small_config.f_d


class TestStorageInvariants:
    def test_ids_write_once_read_once(self, small_config):
        proxy, recorder = build_proxy(small_config)
        rng = random.Random(7)
        for _ in range(60):
            batch = []
            for _ in range(small_config.r):
                key = f"user{rng.randrange(small_config.n):08d}"
                if rng.random() < 0.5:
                    batch.append(read(key))
                else:
                    batch.append(write(key, b"w%d" % rng.randrange(999)))
            proxy.handle_batch(batch)
        verify_storage_invariants(recorder.records)

    def test_ids_never_reused_across_rounds(self, small_config):
        proxy, recorder = build_proxy(small_config)
        rng = random.Random(8)
        for _ in range(40):
            proxy.handle_batch([
                read(f"user{rng.randrange(small_config.n):08d}")
                for _ in range(small_config.r)
            ])
        reads = [r.storage_id for r in recorder.records if r.op == "read"]
        assert len(reads) == len(set(reads))

    def test_server_size_bounded(self, small_config):
        proxy, _ = build_proxy(small_config)
        rng = random.Random(9)
        for _ in range(40):
            proxy.handle_batch([
                read(f"user{rng.randrange(small_config.n):08d}")
                for _ in range(small_config.r)
            ])
            assert len(proxy.store) == (small_config.n - small_config.c
                                        + small_config.d)


class TestLinearizability:
    def test_read_after_write_same_batch(self, small_config):
        proxy, _ = build_proxy(small_config)
        key = "user00000001"
        batch = [write(key, b"NEW"), read(key)]
        responses = proxy.handle_batch(batch)
        assert responses[1].value.startswith(b"\x00\x00\x00\x03NEW") or \
            b"NEW" in responses[1].value

    def test_read_before_write_same_batch_sees_old(self, small_config,
                                                   small_items):
        proxy, _ = build_proxy(small_config, items=small_items)
        key = next(k for k in small_items if k not in proxy.cache)
        batch = [read(key), write(key, b"NEW")]
        responses = proxy.handle_batch(batch)
        assert small_items[key] in responses[0].value
        follow_up = proxy.handle_batch([read(key)])
        assert b"NEW" in follow_up[0].value

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31), st.integers(1, 60))
    def test_random_histories_match_reference(self, seed, rounds):
        """Any random interleaving of reads/writes matches a plain dict."""
        config = WaffleConfig(n=60, b=12, r=5, f_d=2, d=20, c=10,
                              value_size=64, seed=seed)
        items = make_items(60)
        datastore = WaffleDatastore(config, items,
                                    keychain=KeyChain.from_seed(seed))
        reference = dict(items)
        rng = random.Random(seed)
        for _ in range(min(rounds, 40)):
            batch, expected = [], []
            for _ in range(config.r):
                key = f"user{rng.randrange(60):08d}"
                if rng.random() < 0.5:
                    batch.append(ClientRequest(op=Operation.READ, key=key))
                    expected.append(reference[key])
                else:
                    value = b"w%d" % rng.randrange(10**6)
                    batch.append(ClientRequest(op=Operation.WRITE, key=key,
                                               value=value))
                    reference[key] = value
                    expected.append(value)
            responses = datastore.execute_batch(batch)
            assert [resp.value for resp in responses] == expected


class TestSecurityBounds:
    def run_rounds(self, config, rounds, seed=11):
        proxy, recorder = build_proxy(config, log_ids=True)
        rng = random.Random(seed)
        for _ in range(rounds):
            proxy.handle_batch([
                read(f"user{rng.randrange(config.n):08d}")
                for _ in range(config.r)
            ])
        return proxy, recorder

    def test_alpha_beta_within_bounds_reshuffle(self):
        config = WaffleConfig(n=400, b=40, r=16, f_d=8, d=160, c=120,
                              value_size=64, seed=13)
        proxy, recorder = self.run_rounds(config, rounds=250)
        report = full_report(recorder.records, proxy.id_log)
        assert report.max_alpha <= config.alpha_bound_effective()
        assert report.min_beta >= config.beta_bound()

    def test_alpha_within_paper_bound_round_robin(self):
        config = WaffleConfig(n=400, b=40, r=16, f_d=8, d=160, c=120,
                              value_size=64, seed=13,
                              dummy_policy="round_robin")
        proxy, recorder = self.run_rounds(config, rounds=250)
        report = measure_alpha(recorder.records)
        assert report.max_alpha <= config.alpha_bound()

    def test_uniform_fake_policy_violates_alpha(self):
        """The Challenge-2 ablation: random fake selection has no α bound."""
        base = dict(n=400, b=40, r=16, f_d=8, d=160, c=120,
                    value_size=64, seed=13)
        lra = WaffleConfig(**base)
        uniform = WaffleConfig(**base, fake_real_policy="uniform")
        _, rec_lra = self.run_rounds(lra, rounds=300)
        _, rec_uni = self.run_rounds(uniform, rounds=300)
        alpha_lra = measure_alpha(rec_lra.records).max_alpha
        alpha_uni = measure_alpha(rec_uni.records).max_alpha
        assert alpha_uni > alpha_lra

    def test_small_cache_rewrite_path(self):
        """C smaller than r + f_R: fetched objects are re-written
        immediately (§6.2) and every invariant still holds."""
        config = WaffleConfig(n=400, b=40, r=16, f_d=8, d=160, c=8,
                              value_size=64, seed=17)
        proxy, recorder = self.run_rounds(config, rounds=100)
        verify_storage_invariants(recorder.records)
        for stats in proxy.totals.stats_by_round:
            assert stats.server_reads == config.b
            assert stats.server_writes == config.b


class TestCacheBehaviour:
    def test_cache_hit_served_without_new_id(self, small_config):
        proxy, recorder = build_proxy(small_config)
        cached_key = next(iter(proxy.cache.keys()))
        before = len(recorder.records)
        responses = proxy.handle_batch([read(cached_key)])
        assert len(responses) == 1
        assert proxy.last_stats.cache_hits == 1
        assert proxy.last_stats.unique_real_reads == 0
        # The round still performs B reads/writes (all fakes).
        assert len(recorder.records) - before == 3 * small_config.b

    def test_write_to_cached_key_stays_local(self, small_config):
        proxy, _ = build_proxy(small_config)
        cached_key = next(iter(proxy.cache.keys()))
        proxy.handle_batch([write(cached_key, b"local")])
        assert proxy.last_stats.unique_real_reads == 0
        assert b"local" in proxy.cache.peek(cached_key)
