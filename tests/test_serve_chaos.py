"""Chaos coverage for the serving stack: faults, oracles, live timing.

The serving episode family splices a :class:`FaultyTransport` under the
async frontend's datastore and drives it with seeded open-loop
arrivals; the differential oracle then judges the committed trace
exactly like the batch-mode chaos harness does — replay prefixes,
batch shape, uniformity.  The live timing check replays the PR-7
load-inference attack against a real server on the real clock.
"""

from __future__ import annotations

import pytest

from repro.testing.oracle import check_timing_channel
from repro.testing.serving import (
    ServingEpisode,
    live_timing_report,
    run_serving_episode,
    run_serving_sweep,
)


class TestServingEpisode:
    def test_poisson_on_fill_episode_is_clean(self):
        result = run_serving_episode(ServingEpisode(seed=3))
        assert result.ok, result.violations
        assert result.completed == result.episode.requests
        assert result.rounds_committed > 0
        assert result.report is not None
        assert result.report.alphas  # uniformity oracle actually ran

    def test_flash_crowd_max_wait_episode_is_clean(self):
        result = run_serving_episode(ServingEpisode(
            seed=9, workload="flash_crowd", policy="max_wait"))
        assert result.ok, result.violations
        assert result.completed == result.episode.requests

    def test_faults_actually_fire_and_recover(self):
        """Across a seed range, some episode must abort and retry."""
        aborted = 0
        reconnects = 0
        for seed in range(6):
            result = run_serving_episode(ServingEpisode(
                seed=seed, fault_rate=0.12))
            assert result.ok, (seed, result.violations)
            aborted += result.aborted_attempts
            reconnects += result.reconnects
        assert aborted > 0, "fault plan never fired; chaos is vacuous"
        assert reconnects >= aborted

    def test_aborted_attempts_are_replay_prefixes(self):
        """Aborted attempts retry the same batch and stay prefix-sized.

        The episode's own judgement runs :func:`check_replay_prefix` on
        the raw recorder trace (a clean result proves byte-level prefix
        equality); here we additionally assert the attempt log's
        structure — every aborted attempt has a committing winner for
        the same batch, and never recorded more than the winner.
        """
        for seed in range(8):
            result = run_serving_episode(ServingEpisode(
                seed=seed, fault_rate=0.15))
            assert result.ok, (seed, result.violations)
            if result.aborted_attempts == 0:
                continue
            committed = {a.batch_index: a for a in result.attempts if a.ok}
            aborted = [a for a in result.attempts if not a.ok]
            assert aborted
            for attempt in aborted:
                winner = committed[attempt.batch_index]
                assert attempt.attempt_index < winner.attempt_index
                assert (attempt.end_seq - attempt.start_seq) <= \
                    (winner.end_seq - winner.start_seq)
            return
        pytest.fail("no episode aborted at fault_rate=0.15 across 8 seeds")

    def test_shedding_under_tiny_queue_is_not_a_violation(self):
        result = run_serving_episode(ServingEpisode(
            seed=5, queue_cap=4, rate=5000.0))
        assert result.ok, result.violations
        assert result.shed > 0
        assert result.completed + result.shed == result.episode.requests

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_serving_episode(ServingEpisode(seed=1, workload="zipfian"))


class TestServingSweep:
    def test_small_sweep_is_clean(self):
        report = run_serving_sweep(episodes=4, base_seed=40, requests=24)
        assert report.ok, report.describe()
        assert report.episodes == 4
        assert report.completed + report.shed == 4 * 24
        assert report.rounds_committed > 0
        assert "serving episodes" in report.describe()

    @pytest.mark.chaos
    def test_full_sweep_is_clean(self):
        report = run_serving_sweep(episodes=12, base_seed=0, requests=32,
                                   fault_rate=0.08)
        assert report.ok, report.describe()
        assert report.aborted_attempts > 0, \
            "a 12-episode sweep at 8% fault rate should see aborts"


class TestLiveTimingChannel:
    def test_fixed_interval_scores_zero_on_live_server(self):
        timing = live_timing_report(seed=2, rate=500.0, duration_s=0.4)
        violations = check_timing_channel(timing)
        assert not violations, "; ".join(v.detail for v in violations)
        assert timing["fixed"]["leakage_score"] == 0.0
        assert timing["on_fill"]["leakage_score"] > 0.0
        assert timing["fixed"]["rounds"] > 0

    def test_live_report_shape_matches_oracle_contract(self):
        timing = live_timing_report(seed=4, rate=400.0, duration_s=0.3)
        for policy_key in ("on_fill", "fixed"):
            section = timing[policy_key]
            assert set(section) >= {"policy", "rounds", "leakage_score",
                                    "onset_gap", "seed"}
        assert timing["seed"] == 4
