"""Tests for WaffleConfig: validation and the Theorem 7.1/7.2 bounds.

The paper-exact pins come straight from Table 2 at N=10^6:
high → α=165, β=161; medium → α=1000, β=5; low → α=999999, β=4.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ALPHA_UNBOUNDED, SecurityLevel, WaffleConfig
from repro.errors import ConfigurationError


def make(n=1000, b=100, r=40, f_d=20, d=500, c=60, **kw) -> WaffleConfig:
    return WaffleConfig(n=n, b=b, r=r, f_d=f_d, d=d, c=c, **kw)


class TestValidation:
    def test_valid_config(self):
        make()

    @pytest.mark.parametrize("overrides", [
        dict(n=0),
        dict(b=1),
        dict(r=0),
        dict(r=101),
        dict(f_d=-1),
        dict(f_d=30, d=0),          # f_D without dummies
        dict(f_d=0, d=10),          # dummies without f_D
        dict(f_d=600, d=700),       # f_D > D... also r+f_d >= b
        dict(r=80, f_d=20),         # r + f_D == b leaves no fake reals
        dict(c=-1),
        dict(c=2000),               # cache beyond N
        dict(value_size=0),
        dict(dummy_policy="bogus"),
        dict(fake_real_policy="bogus"),
    ])
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            make(**overrides)

    def test_server_residency_constraint(self):
        # C + B - f_D must not exceed N.
        with pytest.raises(ConfigurationError):
            make(n=100, b=90, r=10, f_d=5, d=20, c=20)

    def test_no_dummies_allowed(self):
        config = make(f_d=0, d=0)
        assert config.alpha_bound() == math.ceil(999 / (100 - 40))


class TestBounds:
    def test_table2_high_security_exact(self):
        config = WaffleConfig.security_preset(SecurityLevel.HIGH, n=10**6)
        assert (config.b, config.r, config.f_d, config.d) == (10_000, 25,
                                                              3914, 4000)
        assert config.c == 990_000
        assert config.alpha_bound() == 165
        assert config.beta_bound() == 161

    def test_table2_medium_security_exact(self):
        config = WaffleConfig.security_preset(SecurityLevel.MEDIUM, n=10**6)
        assert (config.b, config.r, config.f_d) == (2500, 1000, 500)
        assert config.d == 350_000 and config.c == 20_000
        assert config.alpha_bound() == 1000
        assert config.beta_bound() == 5

    def test_table2_low_security_exact(self):
        config = WaffleConfig.security_preset(SecurityLevel.LOW, n=10**6)
        assert config.alpha_bound() == ALPHA_UNBOUNDED
        assert config.beta_bound() == 4

    def test_alpha_formula(self):
        config = make()
        assert config.alpha_bound() == math.ceil(
            max((config.n - 1) / (config.b - config.r - config.f_d),
                config.d / config.f_d))

    def test_beta_formula(self):
        config = make(c=700)
        assert config.beta_bound() == math.floor(
            config.c / (config.b - config.f_d + config.r) - 1)

    def test_beta_clamped_at_zero(self):
        assert make(c=10).beta_bound() == 0

    def test_effective_alpha_reshuffle_doubles_dummy_term(self):
        config = make(d=5000, f_d=20, dummy_policy="reshuffle")
        epoch = math.ceil(config.d / config.f_d)
        assert config.alpha_bound_effective() == max(
            math.ceil((config.n - 1) / config.f_r_min), 2 * epoch - 2)

    def test_effective_alpha_round_robin_matches_paper(self):
        config = make(dummy_policy="round_robin")
        assert config.alpha_bound_effective() == config.alpha_bound()

    def test_security_score(self):
        config = make()
        assert config.security_score() == pytest.approx(
            config.beta_bound() / config.alpha_bound())

    def test_bandwidth_overhead_constant(self):
        config = make()
        assert config.bandwidth_overhead() == pytest.approx(
            (config.f_d + config.f_r_min) / config.r)

    def test_higher_security_higher_score(self):
        high = WaffleConfig.security_preset(SecurityLevel.HIGH, n=10**6)
        medium = WaffleConfig.security_preset(SecurityLevel.MEDIUM, n=10**6)
        low = WaffleConfig.security_preset(SecurityLevel.LOW, n=10**6)
        assert high.security_score() > medium.security_score() > \
            low.security_score()


class TestPresetsAndScaling:
    def test_paper_defaults_at_paper_scale(self):
        config = WaffleConfig.paper_defaults(n=2**20)
        assert config.b == 2500
        assert config.r == 1000
        assert config.f_d == 500
        assert config.c == round(0.02 * 2**20)
        # D balances the two alpha ratios (§8.2 "Changing D").
        assert config.d == pytest.approx((config.n - 1) / config.f_r_min
                                         * config.f_d, rel=0.01)

    def test_paper_defaults_scale_down(self):
        config = WaffleConfig.paper_defaults(n=2**14)
        assert config.r / config.b == pytest.approx(0.4, abs=0.05)
        assert config.f_d / config.b == pytest.approx(0.2, abs=0.05)

    def test_scaled_preserves_ratios(self):
        base = WaffleConfig.paper_defaults(n=2**20)
        scaled = base.scaled(2**14)
        assert scaled.n == 2**14
        assert scaled.r / scaled.b == pytest.approx(base.r / base.b, abs=0.05)
        assert scaled.c / scaled.n == pytest.approx(base.c / base.n, rel=0.1)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(list(SecurityLevel)),
           st.integers(2_000, 200_000))
    def test_presets_always_valid(self, level, n):
        config = WaffleConfig.security_preset(level, n=n)
        assert config.n == n
        assert config.alpha_bound() >= 1
        assert config.beta_bound() >= 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1_000, 500_000))
    def test_defaults_always_valid(self, n):
        config = WaffleConfig.paper_defaults(n=n)
        assert config.r + config.f_d < config.b
        assert config.c + config.b - config.f_d <= config.n
