"""Tests for the simulated clock, cost model and metrics."""

import math

import pytest

from repro.sim import CostModel, LatencyRecorder, SimClock, ThroughputMeter


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_reset(self):
        clock = SimClock(start=5)
        clock.reset()
        assert clock.now == 0.0


class TestCostModel:
    def test_core_efficiency_monotone_to_four(self):
        cost = CostModel()
        effs = [cost.core_efficiency(c) for c in (1, 2, 3, 4)]
        assert effs == sorted(effs)
        assert effs[0] == 1.0

    def test_core_efficiency_peaks_at_four(self):
        cost = CostModel()
        peak = cost.core_efficiency(4)
        assert cost.core_efficiency(6) < peak
        assert cost.core_efficiency(12) < cost.core_efficiency(6)

    def test_core_efficiency_floor(self):
        cost = CostModel()
        assert cost.core_efficiency(100) >= cost.core_floor * cost.core_efficiency(4) - 1e-12

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            CostModel().core_efficiency(0)

    def test_pipelined_cheaper_than_unbatched_per_op(self):
        cost = CostModel()
        batched = cost.pipelined_round_trip_s(100, 1.0) / 100
        assert batched < cost.unbatched_op_s(1.0)

    def test_transfer_scales_linearly(self):
        cost = CostModel()
        assert cost.transfer_s(10, 1.0) == pytest.approx(10 * cost.transfer_per_kib_s)

    def test_lru_cost_grows_with_cache(self):
        cost = CostModel()
        assert cost.lru_op_s(2**20) > cost.lru_op_s(2**10)

    def test_index_cost_logarithmic(self):
        cost = CostModel()
        small, large = cost.index_op_s(2**10), cost.index_op_s(2**20)
        assert large == pytest.approx(small * (math.log2(2**20 + 2)
                                               / math.log2(2**10 + 2)))

    def test_aead_floor_for_tiny_values(self):
        cost = CostModel()
        assert cost.aead_s(1, 0.0) > 0


class TestThroughputMeter:
    def test_empty(self):
        assert ThroughputMeter().ops_per_second() == 0.0

    def test_rate(self):
        meter = ThroughputMeter()
        meter.record(0, now=0.0)
        meter.record(100, now=1.0)
        meter.record(100, now=2.0)
        assert meter.ops_per_second() == pytest.approx(100.0)

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter().record(-1, now=0.0)

    def test_single_instant_burst_is_infinite(self):
        """Ops completed in a zero-length window: the rate is unbounded,
        not zero (the old behaviour hid the burst entirely)."""
        meter = ThroughputMeter()
        meter.record(100, now=5.0)
        assert meter.ops_per_second() == math.inf
        meter.record(50, now=5.0)  # still a zero-length window
        assert meter.ops_per_second() == math.inf

    def test_zero_ops_degenerate_window_is_zero(self):
        meter = ThroughputMeter()
        meter.record(0, now=5.0)
        assert meter.ops_per_second() == 0.0


class TestLatencyRecorder:
    def test_summary_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(value / 1000)
        summary = recorder.summary()
        assert summary.count == 100
        assert summary.p50 == pytest.approx(0.050)
        assert summary.p95 == pytest.approx(0.095)
        assert summary.p99 == pytest.approx(0.099)
        assert summary.max == pytest.approx(0.100)
        assert summary.mean == pytest.approx(0.0505)

    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_latency_summary_is_exported(self):
        from repro.sim import LatencySummary

        assert type(LatencyRecorder().summary()) is LatencySummary
