"""Tests for the benchmark harness drivers."""

import pytest

from repro.bench.harness import (
    path_oram_access_time,
    run_insecure,
    run_pancake,
    run_taostore,
    run_waffle,
    waffle_round_time,
)
from repro.core.config import WaffleConfig
from repro.sim.costmodel import CostModel
from repro.workloads.ycsb import key_name, workload_a, workload_c


@pytest.fixture(scope="module")
def setup():
    n = 512
    workload = workload_a(n, seed=1, value_size=256)
    items = dict(workload.initial_records())
    config = WaffleConfig(n=n, b=32, r=12, f_d=6, d=150, c=50,
                          value_size=300, seed=2)
    trace = workload.trace(config.r * 20)
    return n, items, config, trace


class TestWaffleDriver:
    def test_produces_positive_throughput(self, setup):
        n, items, config, trace = setup
        measurement, datastore = run_waffle(config, items, trace,
                                            CostModel())
        assert measurement.throughput_ops > 0
        assert measurement.latency_s > 0
        assert measurement.requests == len(trace)
        assert measurement.rounds == 20
        assert 0 <= measurement.extra["cache_hit_rate"] <= 1

    def test_round_time_positive_and_composed(self, setup):
        n, items, config, trace = setup
        _, datastore = run_waffle(config, items, trace[: config.r],
                                  CostModel())
        stats = datastore.proxy.last_stats
        cost = CostModel()
        duration = waffle_round_time(stats, config, cost)
        assert duration > 2 * cost.rtt_s  # at least two round trips

    def test_more_cores_faster_until_four(self, setup):
        n, items, config, trace = setup
        results = {}
        for cores in (1, 4, 12):
            measurement, _ = run_waffle(config, items, trace,
                                        CostModel(cores=cores))
            results[cores] = measurement.throughput_ops
        assert results[4] > results[1]
        assert results[4] > results[12]


class TestOtherDrivers:
    def test_insecure_faster_than_waffle(self, setup):
        n, items, config, trace = setup
        waffle, _ = run_waffle(config, items, trace, CostModel())
        insecure = run_insecure(items, trace[:200], CostModel())
        assert insecure.throughput_ops > waffle.throughput_ops

    def test_pancake_slower_than_waffle(self, setup):
        n, items, config, trace = setup
        waffle, _ = run_waffle(config, items, trace, CostModel())
        workload = workload_a(n, seed=1, value_size=256)
        pi = workload._sampler.probabilities_by_index()
        keys = [key_name(i) for i in range(n)]
        pancake, proxy = run_pancake(keys, items, pi, trace[:240],
                                     CostModel(), batch_size=config.b)
        assert pancake.requests == 240
        assert waffle.throughput_ops > pancake.throughput_ops

    def test_taostore_orders_of_magnitude_slower(self, setup):
        n, items, config, trace = setup
        waffle, _ = run_waffle(config, items, trace, CostModel())
        taostore, _ = run_taostore(items, trace[:50], CostModel())
        assert waffle.throughput_ops > 20 * taostore.throughput_ops
        assert taostore.latency_s > waffle.latency_s

    def test_path_oram_access_time_grows_with_levels(self):
        cost = CostModel()
        assert path_oram_access_time(21, 4, 1.0, cost) > \
            path_oram_access_time(11, 4, 1.0, cost)


class TestPaperRatios:
    """The headline Figure 2a shape, pinned as a regression test at a
    reduced scale: ratios drift with N, so bands are generous."""

    @pytest.fixture(scope="class")
    def measurements(self):
        n = 2**12
        cost = CostModel(cores=1)
        workload = workload_c(n, seed=1, value_size=1000)
        items = dict(workload.initial_records())
        from dataclasses import replace
        base = WaffleConfig.paper_defaults(n=n, seed=3)
        b = base.b
        config = replace(base, r=round(b / 2), f_d=round(0.2 * b),
                         d=max(round(0.2 * b),
                               round((n - 1) / (b - round(b / 2)
                                                - round(0.2 * b))
                                     * round(0.2 * b))))
        trace = workload.trace(config.r * 60)
        waffle, _ = run_waffle(config, items, trace, cost)
        insecure = run_insecure(items, trace[:500], cost)
        pi = workload_c(n, seed=1, value_size=1000) \
            ._sampler.probabilities_by_index()
        keys = [key_name(i) for i in range(n)]
        pancake, _ = run_pancake(keys, items, pi, trace[: config.r * 20],
                                 cost, batch_size=config.b)
        taostore, _ = run_taostore(items, trace[:60], cost)
        return waffle, insecure, pancake, taostore

    def test_insecure_several_times_faster(self, measurements):
        waffle, insecure, _, _ = measurements
        ratio = insecure.throughput_ops / waffle.throughput_ops
        assert 4.0 < ratio < 9.0  # paper: 5.8-6.04x at full scale

    def test_waffle_beats_pancake(self, measurements):
        waffle, _, pancake, _ = measurements
        ratio = waffle.throughput_ops / pancake.throughput_ops
        # Paper: 1.455-1.577x at N=2^20.  The fixed per-batch RTT weighs
        # relatively more at this reduced scale, compressing the ratio.
        assert 1.1 < ratio < 2.0

    def test_waffle_crushes_taostore(self, measurements):
        waffle, _, _, taostore = measurements
        ratio = waffle.throughput_ops / taostore.throughput_ops
        assert ratio > 40  # paper: 102x at N=2^20 (grows with log N)

    def test_latency_ordering(self, measurements):
        waffle, insecure, pancake, taostore = measurements
        assert insecure.latency_s < waffle.latency_s
        assert waffle.latency_s < pancake.latency_s
        assert pancake.latency_s < taostore.latency_s
