"""Wall-clock regression guards for the batched fast path.

The figure benchmarks run on simulated time, so nothing there would
notice if the batched kernels silently regressed to scalar speed.  These
tests time the optimized kernels against the scalar seed implementations
preserved in :mod:`repro.sim.perf` and assert the batched path wins on a
representative round shape.

Thresholds are deliberately far below the speedups the dedicated
benchmark (`benchmarks/bench_wallclock.py`) demonstrates (~3x AEAD,
~2x end-to-end): a loaded CI worker must not flake, but losing the
optimization entirely must fail.
"""

from repro.sim.perf import (
    bench_aead_kernel,
    bench_cache_kernel,
    bench_index_kernel,
    bench_prf_kernel,
    bench_rounds,
    compare_traces,
)


class TestKernelRegression:
    def test_batched_aead_beats_scalar(self):
        row = bench_aead_kernel(batch=48, value_size=1024, repeats=3)
        assert row["encrypt_speedup"] > 1.5
        assert row["decrypt_speedup"] > 1.5

    def test_batched_prf_beats_scalar(self):
        row = bench_prf_kernel(batch=800, repeats=5)
        assert row["speedup"] > 1.05

    def test_batched_index_beats_scalar(self):
        row = bench_index_kernel(population=2048, take=256, repeats=5)
        assert row["speedup"] > 1.5

    def test_bulk_cache_probe_beats_scalar(self):
        """The bulk ``get_if_present_many`` probe must at least break
        even with the scalar ``in`` + ``get`` double descent (the
        earlier per-call ``get_if_present`` form regressed to 0.96x)."""
        row = min((bench_cache_kernel(repeats=5) for _ in range(3)),
                  key=lambda r: -r["speedup"])
        assert row["speedup"] > 1.05


class TestEndToEndRegression:
    def test_batched_round_beats_scalar_round(self):
        """One representative proxy round pipeline, both kernel sets."""
        scalar = min(
            (bench_rounds(n=512, rounds=8, scalar=True) for _ in range(2)),
            key=lambda row: row["seconds"])
        batched = min(
            (bench_rounds(n=512, rounds=8, scalar=False) for _ in range(2)),
            key=lambda row: row["seconds"])
        assert batched["rounds_per_sec"] > scalar["rounds_per_sec"]

    def test_adversary_view_is_kernel_independent(self):
        """Scalar and batched kernels must be indistinguishable to the
        server: identical access traces and identical client responses
        on a fixed-seed workload."""
        report = compare_traces(n=256, rounds=8, seed=5)
        assert report["identical"], report
