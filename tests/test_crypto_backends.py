"""Cross-backend parity: every crypto backend is byte-identical to pure.

The backend registry (:mod:`repro.crypto.backend`) promises that the
``nacl`` and ``openssl`` backends compute the *same scheme* as the pure
reference — same storage ids, same ciphertext layout, same tag-failure
behaviour — so a backend swap can never perturb the adversary-visible
trace or strand outsourced ciphertexts.  These tests hold each native
backend to the pure oracle byte for byte, and pin the registry's
resolution/fallback contract.

Native backends are exercised only where their wheel imports (the CI
``native-crypto`` job installs both); on a bare interpreter every
parity test skips with the wheel's import error as the reason.
"""

from __future__ import annotations

import pickle
import random
import warnings

import pytest

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.backend import (
    AUTO_BACKEND,
    DEFAULT_BACKEND,
    ENV_VAR,
    CryptoBackend,
    available_backend_names,
    backend_names,
    get_backend,
    make_cipher,
    make_prf,
    resolve_backend_name,
)
from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf
from repro.errors import ConfigurationError, IntegrityError

NATIVE_NAMES = tuple(n for n in backend_names() if n != "pure")

#: Secrets spanning the HMAC block-size edge cases: shorter than the
#: 64-byte SHA-256 block (padded), exactly one block, and longer (hashed
#: down first) — the three branches of RFC 2104 key preparation.
SECRETS = [
    b"k",
    b"short-secret",
    b"x" * 64,
    b"y" * 65,
    bytes(range(256)),
]


def native(name: str) -> CryptoBackend:
    """The backend for ``name``, or skip with its import failure."""
    try:
        return get_backend(name, strict=True)
    except ConfigurationError as error:
        pytest.skip(str(error))


@pytest.fixture(params=NATIVE_NAMES)
def backend(request) -> CryptoBackend:
    return native(request.param)


class TestPrfParity:
    def test_derive_matches_pure(self, backend):
        for secret in SECRETS:
            ours = backend.make_prf(secret)
            oracle = Prf(secret)
            for key, ts in [("user00000001", 0), ("user00000001", 12345),
                            ("k", 7), ("", 0), ("k1", 2), ("k12", 2)]:
                assert ours.derive(key, ts) == oracle.derive(key, ts), \
                    (backend.name, secret, key, ts)

    def test_derive_many_matches_scalar_and_pure(self, backend):
        prf = backend.make_prf(b"parity-secret")
        oracle = Prf(b"parity-secret")
        pairs = [(f"key{i:04d}", i * 17) for i in range(64)]
        batch = prf.derive_many(pairs)
        assert batch == oracle.derive_many(pairs)
        assert batch == [prf.derive(k, t) for k, t in pairs]

    def test_derive_bytes_matches_pure(self, backend):
        for secret in SECRETS:
            ours = backend.make_prf(secret)
            oracle = Prf(secret)
            for data in (b"", b"subkey", b"\x00" * 100):
                assert ours.derive_bytes(data) == oracle.derive_bytes(data)

    def test_known_answer(self, backend):
        # Same literal vector test_crypto_known_answers.py pins for pure.
        prf = backend.make_prf(b"known-answer-secret")
        assert prf.derive("user00000001", 0) == \
            "15837b7ce3ddd5e6b367bd71710e10c0"

    def test_backend_name_labels_kernel(self, backend):
        assert backend.make_prf(b"s").backend_name == backend.name

    def test_pickle_round_trip(self, backend):
        prf = backend.make_prf(b"pickle-secret")
        clone = pickle.loads(pickle.dumps(prf))
        assert clone.derive("k", 9) == prf.derive("k", 9)
        # On this interpreter the wheel is present, so the round trip
        # restores the same backend (on a wheel-less box it would fall
        # back to the byte-identical pure kernel instead).
        assert clone.backend_name == backend.name


class TestCipherParity:
    ENC_KEY = b"enc-key-for-parity-tests"
    MAC_KEY = b"mac-key-for-parity-tests"
    PLAINTEXTS = [b"", b"v", b"value" * 7, b"\x00" * 32, bytes(range(200))]

    def _pair(self, backend, seed=1234):
        ours = backend.make_cipher(self.ENC_KEY, self.MAC_KEY,
                                   rng=random.Random(seed))
        oracle = AuthenticatedCipher(self.ENC_KEY, self.MAC_KEY,
                                     rng=random.Random(seed))
        return ours, oracle

    def test_ciphertexts_identical_under_fixed_rng(self, backend):
        ours, oracle = self._pair(backend)
        for plaintext in self.PLAINTEXTS:
            assert ours.encrypt(plaintext) == oracle.encrypt(plaintext)

    def test_encrypt_many_identical_under_fixed_rng(self, backend):
        ours, oracle = self._pair(backend, seed=77)
        assert ours.encrypt_many(self.PLAINTEXTS) == \
            oracle.encrypt_many(self.PLAINTEXTS)

    def test_encrypt_with_fixed_nonces_identical(self, backend):
        ours, oracle = self._pair(backend)
        nonces = [bytes([i]) * 16 for i in range(len(self.PLAINTEXTS))]
        assert ours.encrypt_with_nonces(self.PLAINTEXTS, nonces) == \
            oracle.encrypt_with_nonces(self.PLAINTEXTS, nonces)

    def test_cross_decrypt(self, backend):
        """Pure decrypts native output and vice versa — stored values
        survive a backend change in either direction."""
        ours, oracle = self._pair(backend)
        for plaintext in self.PLAINTEXTS:
            assert oracle.decrypt(ours.encrypt(plaintext)) == plaintext
            assert ours.decrypt(oracle.encrypt(plaintext)) == plaintext

    def test_tamper_raises_same_error(self, backend):
        ours, oracle = self._pair(backend)
        blob = bytearray(oracle.encrypt(b"tamper-me"))
        blob[20] ^= 0x01
        with pytest.raises(IntegrityError):
            ours.decrypt(bytes(blob))
        with pytest.raises(IntegrityError):
            ours.decrypt(b"too-short")

    def test_decrypt_many_tamper_raises(self, backend):
        ours, oracle = self._pair(backend)
        blobs = oracle.encrypt_many([b"a", b"b"])
        tampered = blobs[1][:-1] + bytes([blobs[1][-1] ^ 1])
        with pytest.raises(IntegrityError):
            ours.decrypt_many([blobs[0], tampered])

    def test_overhead_matches(self, backend):
        ours, _ = self._pair(backend)
        assert ours.ciphertext_overhead() == 48

    def test_pickle_round_trip_keeps_rng_stream(self, backend):
        ours, oracle = self._pair(backend, seed=5)
        clone = pickle.loads(pickle.dumps(ours))
        # The restored cipher resumes the same nonce source object, so
        # the next encryption still tracks the oracle draw-for-draw.
        assert clone.encrypt(b"after-pickle") == oracle.encrypt(b"after-pickle")
        assert clone.backend_name == backend.name


class TestKeyChainWiring:
    def test_keychain_uses_requested_backend(self, backend):
        chain = KeyChain.from_seed(42, backend=backend.name)
        assert chain.prf.backend_name == backend.name
        assert chain.cipher.backend_name == backend.name

    def test_keychain_outputs_identical_to_pure(self, backend):
        ours = KeyChain.from_seed(42, rng=random.Random(1),
                                  backend=backend.name)
        oracle = KeyChain.from_seed(42, rng=random.Random(1), backend="pure")
        assert ours.prf.derive("k", 7) == oracle.prf.derive("k", 7) == \
            "2aafb921b688174b8980ee288bb9fd3f"
        assert ours.cipher.encrypt(b"fixed") == oracle.cipher.encrypt(b"fixed")


class TestRegistry:
    def test_names(self):
        assert backend_names() == ("pure", "nacl", "openssl")
        assert DEFAULT_BACKEND in available_backend_names()

    def test_resolve_default_and_explicit(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend_name() == DEFAULT_BACKEND
        assert resolve_backend_name("pure") == "pure"
        assert resolve_backend_name("  OpenSSL ") == "openssl"

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "openssl")
        assert resolve_backend_name() == "openssl"
        # An explicit argument wins over the environment.
        assert resolve_backend_name("pure") == "pure"
        monkeypatch.setenv(ENV_VAR, "")
        assert resolve_backend_name() == DEFAULT_BACKEND

    def test_resolve_auto_prefers_native(self):
        resolved = resolve_backend_name(AUTO_BACKEND)
        assert resolved in available_backend_names()
        for candidate in ("openssl", "nacl", "pure"):
            if candidate in available_backend_names():
                assert resolved == candidate
                break

    def test_unknown_name_raises(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="unknown crypto backend"):
            resolve_backend_name("bogus")
        monkeypatch.setenv(ENV_VAR, "sha1-on-a-napkin")
        with pytest.raises(ConfigurationError):
            get_backend()

    def test_missing_wheel_falls_back_with_warning(self, monkeypatch):
        import repro.crypto.backend as mod

        absent = CryptoBackend("nacl", False, "simulated: no wheel",
                               None, None)
        monkeypatch.setitem(mod._REGISTRY, "nacl", absent)
        monkeypatch.setattr(mod, "_WARNED", set())
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend("nacl")
        assert backend.name == DEFAULT_BACKEND
        # The warning fires once per backend, not once per lookup.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("nacl").name == DEFAULT_BACKEND

    def test_missing_wheel_strict_raises(self, monkeypatch):
        import repro.crypto.backend as mod

        absent = CryptoBackend("openssl", False, "simulated: no wheel",
                               None, None)
        monkeypatch.setitem(mod._REGISTRY, "openssl", absent)
        with pytest.raises(ConfigurationError, match="unavailable"):
            get_backend("openssl", strict=True)
        with pytest.raises(ConfigurationError, match="unavailable"):
            absent.make_prf(b"s")
        with pytest.raises(ConfigurationError, match="unavailable"):
            absent.make_cipher(b"e", b"m")

    def test_module_factories_build_labelled_kernels(self):
        prf = make_prf("pure", b"s")
        assert isinstance(prf, Prf) and prf.backend_name == "pure"
        source = random.Random(3)
        cipher = make_cipher("pure", b"e", b"m", randbytes=source.randbytes)
        oracle = AuthenticatedCipher(b"e", b"m", rng=random.Random(3))
        assert cipher.encrypt(b"v") == oracle.encrypt(b"v")
