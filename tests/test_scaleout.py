"""Tests for the partitioned (scale-out) Waffle composition."""

import random

import pytest

from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.errors import ConfigurationError
from repro.scaleout import PartitionedWaffle
from repro.workloads.trace import Operation


PER_PARTITION = 120
PARTITIONS = 3
CONFIG = WaffleConfig(n=PER_PARTITION, b=16, r=6, f_d=4, d=40, c=20,
                      value_size=64, seed=3)


def build(record: bool = False, log_ids: bool = False) -> PartitionedWaffle:
    candidates = (f"key{i:08d}" for i in range(100_000))
    keys = PartitionedWaffle.plan_partitions(candidates, PER_PARTITION,
                                             PARTITIONS, master_seed=9)
    items = {key: b"val-" + key.encode() for key in keys}
    return PartitionedWaffle(CONFIG, items, PARTITIONS, master_seed=9,
                             record=record, log_ids=log_ids)


class TestConstruction:
    def test_plan_balances_partitions(self):
        store = build()
        for datastore in store.stores:
            assert datastore.proxy.real_count == PER_PARTITION
        assert store.total_keys == PER_PARTITION * PARTITIONS

    def test_unbalanced_items_rejected(self):
        items = {f"key{i:08d}": b"v" for i in range(PER_PARTITION * PARTITIONS)}
        with pytest.raises(ConfigurationError):
            PartitionedWaffle(CONFIG, items, PARTITIONS, master_seed=9)

    def test_plan_exhaustion_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionedWaffle.plan_partitions(
                (f"k{i}" for i in range(10)), PER_PARTITION, PARTITIONS)

    def test_at_least_one_partition(self):
        with pytest.raises(ConfigurationError):
            PartitionedWaffle(CONFIG, {}, 0)

    def test_routing_stable_and_spread(self):
        store = build()
        keys = [f"probe{i}" for i in range(300)]
        first = [store.partition_of(key) for key in keys]
        assert first == [store.partition_of(key) for key in keys]
        assert len(set(first)) == PARTITIONS

    def test_bulk_router_matches_scalar_router(self):
        store = build()
        keys = [f"probe{i}" for i in range(500)]
        assert store.partition_of_many(keys) == \
            [store.partition_of(key) for key in keys]
        # Accepts any iterable, not just sequences.
        assert store.partition_of_many(iter(keys[:10])) == \
            [store.partition_of(key) for key in keys[:10]]
        assert store.partition_of_many([]) == []

    def test_routing_unchanged_by_hasher_hoist(self):
        """The precomputed-hasher fast path is the same keyed blake2s
        router: pin a few absolute assignments so a routing change
        (which would shuffle every deployment's layout) cannot slip in
        as a perf tweak."""
        import hashlib

        store = build()
        route_key = hashlib.sha256(b"route:9").digest()[:8]
        for key in ("probe0", "probe1", "waffle", "key00000042"):
            reference = int.from_bytes(
                hashlib.blake2s(key.encode(), key=route_key,
                                digest_size=8).digest(),
                "big") % PARTITIONS
            assert store.partition_of(key) == reference


class TestExecution:
    def test_cross_partition_batch(self):
        store = build()
        sample = []
        for datastore in store.stores:
            sample.extend(list(datastore.proxy.cache.keys())[:2])
        requests = [ClientRequest(op=Operation.READ, key=key)
                    for key in sample]
        responses = store.execute_batch(requests)
        assert [r.key for r in responses] == sample
        assert all(r.value == b"val-" + r.key.encode() for r in responses)

    def test_linearizable_random_history(self):
        store = build()
        all_keys = []
        for datastore in store.stores:
            all_keys.extend(k for k in datastore.proxy._real_index._timestamps)
        reference = {key: b"val-" + key.encode() for key in all_keys}
        rng = random.Random(5)
        for _ in range(40):
            batch, expected = [], []
            for _ in range(10):
                key = rng.choice(all_keys)
                if rng.random() < 0.5:
                    batch.append(ClientRequest(op=Operation.READ, key=key))
                    expected.append(reference[key])
                else:
                    value = b"w%06d" % rng.randrange(10**6)
                    batch.append(ClientRequest(op=Operation.WRITE, key=key,
                                               value=value))
                    reference[key] = value
                    expected.append(value)
            responses = store.execute_batch(batch)
            assert [r.value for r in responses] == expected

    def test_mutations_route_to_owner(self):
        store = build()
        store.insert("fresh-key-001", b"hello")
        owner = store.partition_of("fresh-key-001")
        store.stores[owner].execute_batch([])
        assert store.contains_key("fresh-key-001")
        response = store.execute_batch([
            ClientRequest(op=Operation.READ, key="fresh-key-001")])[0]
        assert response.value == b"hello"
        store.delete("fresh-key-001")
        store.stores[owner].execute_batch([])
        assert not store.contains_key("fresh-key-001")


class TestSecurityComposition:
    def test_each_partition_keeps_its_guarantees(self):
        """Per-partition α/β bounds and id invariants hold when driven
        through the router (partitions are genuinely independent)."""
        store = build(record=True, log_ids=True)
        all_keys = []
        for datastore in store.stores:
            all_keys.extend(k for k in datastore.proxy._real_index._timestamps)
        rng = random.Random(7)
        for _ in range(120):
            batch = [ClientRequest(op=Operation.READ,
                                   key=rng.choice(all_keys))
                     for _ in range(12)]
            store.execute_batch(batch)
        for datastore in store.stores:
            records = datastore.recorder.records
            verify_storage_invariants(records)
            report = full_report(records, datastore.proxy.id_log)
            assert report.max_alpha <= CONFIG.alpha_bound_effective()
            assert report.min_beta >= CONFIG.beta_bound()

    def test_partitions_use_distinct_keychains(self):
        store = build()
        ids = {
            datastore.proxy._encode_id("same-key", 0)
            for datastore in store.stores
        }
        assert len(ids) == PARTITIONS
