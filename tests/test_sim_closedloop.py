"""Tests for the closed-loop latency simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.closedloop import simulate_closed_loop


class TestClosedLoop:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            simulate_closed_loop(0.0, 10, 10)
        with pytest.raises(ConfigurationError):
            simulate_closed_loop(0.01, 0, 10)
        with pytest.raises(ConfigurationError):
            simulate_closed_loop(0.01, 10, 0)

    def test_saturated_throughput_matches_capacity(self):
        """With clients >> R, throughput approaches R / round_time."""
        result = simulate_closed_loop(round_time_s=0.01, batch_capacity=10,
                                      clients=50, duration_s=5.0)
        assert result.throughput_ops == pytest.approx(10 / 0.01, rel=0.05)
        assert result.timeout_dispatches == 0

    def test_underload_uses_timeout_dispatches(self):
        """With fewer clients than R, batches dispatch on timeout."""
        result = simulate_closed_loop(round_time_s=0.01, batch_capacity=100,
                                      clients=5, duration_s=5.0)
        assert result.timeout_dispatches > 0
        assert result.requests > 0

    def test_latency_includes_queueing(self):
        saturated = simulate_closed_loop(round_time_s=0.01,
                                         batch_capacity=10, clients=100,
                                         duration_s=5.0)
        light = simulate_closed_loop(round_time_s=0.01, batch_capacity=10,
                                     clients=10, duration_s=5.0)
        assert saturated.latency.mean > light.latency.mean
        assert saturated.latency.p99 >= saturated.latency.p50

    def test_think_time_reduces_throughput(self):
        busy = simulate_closed_loop(0.01, 10, 20, think_time_s=0.0,
                                    duration_s=5.0)
        idle = simulate_closed_loop(0.01, 10, 20, think_time_s=0.05,
                                    duration_s=5.0)
        assert idle.throughput_ops < busy.throughput_ops

    def test_latency_floor_is_round_time(self):
        result = simulate_closed_loop(round_time_s=0.02, batch_capacity=5,
                                      clients=5, duration_s=5.0)
        assert result.latency.p50 >= 0.02

    def test_rounds_and_requests_consistent(self):
        result = simulate_closed_loop(round_time_s=0.01, batch_capacity=10,
                                      clients=30, duration_s=3.0)
        assert result.requests <= result.rounds * 10
        assert result.requests > 0
