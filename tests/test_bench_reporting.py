"""Tests for the table/series renderers."""

from repro.bench.reporting import format_series, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_header(self):
        rows = [{"system": "waffle", "throughput": 10800.5},
                {"system": "pancake", "throughput": 7000.123}]
        out = format_table(rows)
        lines = out.splitlines()
        assert "system" in lines[0] and "throughput" in lines[0]
        assert "10,801" in out or "10,800" in out

    def test_title_and_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"], title="T")
        assert out.startswith("T")
        assert "a" not in out.splitlines()[1]

    def test_none_rendered_as_dash(self):
        out = format_table([{"x": None}])
        assert "-" in out.splitlines()[-1]

    def test_small_floats_four_decimals(self):
        out = format_table([{"x": 0.01234}])
        assert "0.0123" in out


class TestFormatSeries:
    def test_empty(self):
        assert format_series([], "x", "y") == "(no data)"

    def test_bars_scale_with_values(self):
        rows = [{"x": 1, "y": 10.0}, {"x": 2, "y": 100.0}]
        out = format_series(rows, "x", "y")
        first, second = out.splitlines()
        assert second.count("#") > first.count("#")

    def test_title(self):
        out = format_series([{"x": 1, "y": 1.0}], "x", "y", title="Series")
        assert out.splitlines()[0] == "Series"
