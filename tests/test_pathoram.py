"""Tests for the PathORAM baseline."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.pathoram import PathOram
from repro.crypto.keys import KeyChain
from repro.errors import ConfigurationError, KeyNotFoundError
from repro.storage.recording import RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.workloads.trace import Operation, TraceRequest


def build(n=64, seed=1, store=None):
    items = {f"user{i:08d}": b"val-%d" % i for i in range(n)}
    store = store if store is not None else RedisSim()
    oram = PathOram(dict(items), store, seed=seed,
                    keychain=KeyChain.from_seed(seed))
    return oram, items


class TestCorrectness:
    def test_get_initial_values(self):
        oram, items = build()
        for key in list(items)[:10]:
            assert oram.get(key) == items[key]

    def test_put_then_get(self):
        oram, _ = build()
        oram.put("user00000003", b"NEW")
        assert oram.get("user00000003") == b"NEW"

    def test_missing_key_raises(self):
        oram, _ = build()
        with pytest.raises(KeyNotFoundError):
            oram.get("ghost")

    def test_empty_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            PathOram({}, RedisSim())

    def test_write_requires_value(self):
        oram, _ = build()
        with pytest.raises(ConfigurationError):
            oram.access(Operation.WRITE, "user00000001", None)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31))
    def test_random_history_matches_reference(self, seed):
        oram, items = build(n=32, seed=seed)
        reference = dict(items)
        rng = random.Random(seed)
        keys = list(items)
        for step in range(120):
            key = keys[rng.randrange(len(keys))]
            if rng.random() < 0.5:
                assert oram.get(key) == reference[key]
            else:
                value = b"w%d" % step
                oram.put(key, value)
                reference[key] = value


class TestObliviousness:
    def test_each_access_touches_one_full_path(self):
        recorder = RecordingStore(RedisSim())
        oram, items = build(n=64, seed=2, store=recorder)
        recorder.clear_records()
        oram.get("user00000005")
        reads = [r for r in recorder.records if r.op == "read"]
        writes = [r for r in recorder.records if r.op == "write"]
        assert len(reads) == oram.path_length
        assert len(writes) == oram.path_length

    def test_position_remapped_after_access(self):
        oram, _ = build(n=64, seed=3)
        key = "user00000007"
        positions = set()
        for _ in range(30):
            oram.get(key)
            positions.add(oram.position[key])
        assert len(positions) > 5  # non-static assignment

    def test_repeated_access_paths_look_uniform(self):
        """Accessing one key repeatedly touches leaves ~uniformly — the
        sequence-hiding property Waffle's §2 background describes."""
        recorder = RecordingStore(RedisSim())
        oram, _ = build(n=64, seed=4, store=recorder)
        recorder.clear_records()
        leaf_nodes = Counter()
        for _ in range(300):
            before = len(recorder.records)
            oram.get("user00000001")
            accesses = recorder.records[before:]
            deepest = max(int(r.storage_id.split(":")[-1])
                          for r in accesses if r.op == "read")
            leaf_nodes[deepest] += 1
        assert len(leaf_nodes) > oram.leaves // 4

    def test_stash_stays_small(self):
        oram, items = build(n=128, seed=5)
        rng = random.Random(6)
        keys = list(items)
        for _ in range(500):
            oram.get(keys[rng.randrange(len(keys))])
        assert oram.stats.max_stash <= 40

    def test_stats_count_buckets(self):
        oram, _ = build(n=64, seed=7)
        oram.get("user00000001")
        assert oram.stats.accesses == 1
        assert oram.stats.buckets_read == oram.path_length
        assert oram.stats.buckets_written == oram.path_length
