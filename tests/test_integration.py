"""End-to-end integration tests crossing every module boundary."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    MultiMapWaffle,
    SecurityLevel,
    WaffleClient,
    WaffleConfig,
    WaffleDatastore,
)
from repro.analysis.histograms import alpha_histogram, histogram_difference
from repro.analysis.uniformity import full_report, verify_storage_invariants
from repro.bench.harness import run_waffle
from repro.core.batch import ClientRequest, request_from_trace
from repro.crypto.keys import KeyChain
from repro.sim.costmodel import CostModel
from repro.storage.memory import InMemoryStore
from repro.storage.sharded import ShardedStore
from repro.workloads.trace import Operation
from repro.workloads.ycsb import workload_a, workload_c
from tests.conftest import make_items


class TestFullStackSoak:
    """A long mixed workload through the public API, with the adversary
    recorder on, checked against every invariant at once."""

    def test_soak_with_all_invariants(self):
        n = 600
        config = WaffleConfig(n=n, b=50, r=20, f_d=10, d=250, c=80,
                              value_size=128, seed=21)
        items = make_items(n)
        datastore = WaffleDatastore(config, items,
                                    keychain=KeyChain.from_seed(22),
                                    log_ids=True)
        client = WaffleClient(datastore)
        reference = dict(items)
        rng = random.Random(23)
        pending = []
        for step in range(4000):
            key = f"user{rng.randrange(n):08d}"
            if rng.random() < 0.5:
                pending.append((client.get(key), reference[key]))
            else:
                value = b"w%06d" % step
                client.put(key, value)
                reference[key] = value
        client.flush()
        for result, expected in pending:
            assert result.value == expected

        records = datastore.recorder.records
        verify_storage_invariants(records)
        report = full_report(records, datastore.proxy.id_log)
        assert report.max_alpha <= config.alpha_bound_effective()
        assert report.min_beta >= config.beta_bound()
        assert len(datastore.proxy.cache) == config.c
        assert datastore.server_size == n - config.c + config.d

    def test_soak_with_mutations(self):
        n = 300
        config = WaffleConfig(n=n, b=30, r=12, f_d=6, d=120, c=40,
                              value_size=96, seed=31)
        datastore = WaffleDatastore(config, make_items(n),
                                    keychain=KeyChain.from_seed(32),
                                    log_ids=True)
        client = WaffleClient(datastore)
        rng = random.Random(33)
        live = {f"user{i:08d}" for i in range(n)}
        inserted = 0
        for step in range(150):
            action = rng.random()
            if action < 0.1 and inserted < 40:
                key = f"fresh{inserted:07d}"
                datastore.insert(key, b"born-%d" % step)
                inserted += 1
                # Flush queued gets, then run the round that applies the
                # insert, so the key is live before anyone reads it.
                client.flush()
                datastore.execute_batch([])
                live.add(key)
            elif action < 0.15 and len(live) > n - 30:
                victim = rng.choice(sorted(live - {f"fresh{i:07d}"
                                                   for i in range(40)}))
                datastore.delete(victim)
                live.discard(victim)
            else:
                key = rng.choice(sorted(live))
                client.get(key)
        client.flush()
        for _ in range(5):
            datastore.execute_batch([])  # drain pending mutations
        verify_storage_invariants(datastore.recorder.records)
        assert datastore.proxy.real_count == len(live)

    def test_sharded_backend_transparent(self):
        """Waffle over a 4-shard server behaves identically."""
        n = 200
        config = WaffleConfig(n=n, b=20, r=8, f_d=4, d=50, c=30,
                              value_size=64, seed=41)
        items = make_items(n)
        sharded = ShardedStore([InMemoryStore(write_once=True)
                                for _ in range(4)])
        datastore = WaffleDatastore(config, items, store=sharded,
                                    keychain=KeyChain.from_seed(42))
        client = WaffleClient(datastore)
        for i in range(0, 50):
            assert client.get_now(f"user{i:08d}") == items[f"user{i:08d}"]

    def test_multimap_over_long_run(self):
        items = {f"row{i:04d}": (b"a%d" % i, b"b%d" % i) for i in range(40)}
        config = WaffleConfig(n=80, b=12, r=4, f_d=2, d=30, c=10,
                              value_size=64, seed=51)
        mm = MultiMapWaffle(config, items, slots=2,
                            keychain=KeyChain.from_seed(52))
        rng = random.Random(53)
        reference = dict(items)
        for step in range(120):
            key = f"row{rng.randrange(40):04d}"
            if rng.random() < 0.5:
                assert mm.get(key) == reference[key]
            else:
                values = (b"x%d" % step, b"y%d" % step)
                mm.put(key, values)
                reference[key] = values


class TestObliviousnessEndToEnd:
    def test_alpha_histograms_indistinguishable_across_inputs(self):
        """Figure 4's claim at reduced scale: skewed and uniform inputs
        produce closely matching adversary-visible α histograms."""
        n = 2048
        cost = CostModel()
        histograms = {}
        for uniform in (False, True):
            config = WaffleConfig.security_preset(SecurityLevel.MEDIUM,
                                                  n=n, seed=61)
            factory = workload_c(n, seed=62, value_size=256,
                                 uniform=uniform)
            items = dict(factory.initial_records())
            trace = factory.trace(config.r * 250)
            _, datastore = run_waffle(config, items, trace, cost,
                                      record=True)
            from repro.analysis.uniformity import measure_alpha
            report = measure_alpha(datastore.recorder.records)
            histograms[uniform] = alpha_histogram(report.alphas)
        comparison = histogram_difference(histograms[False],
                                          histograms[True])
        assert comparison.differing_fraction < 0.25

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 2**31))
    def test_adversarial_sequences_stay_alpha_beta_uniform(self, seed):
        """Theorem 7.3 under adversarially chosen inputs: repeated hot-set
        loops sized just above the cache (the Challenge 4 attack) still
        yield bounded α/β."""
        n = 240
        config = WaffleConfig(n=n, b=24, r=10, f_d=4, d=100, c=16,
                              value_size=64, seed=seed,
                              dummy_policy="round_robin")
        datastore = WaffleDatastore(config, make_items(n),
                                    keychain=KeyChain.from_seed(seed),
                                    log_ids=True)
        hot = [f"user{i:08d}" for i in range(20)]  # just above C=16
        position = 0
        for _ in range(120):
            batch = []
            for _ in range(config.r):
                batch.append(ClientRequest(op=Operation.READ,
                                           key=hot[position % len(hot)]))
                position += 1
            datastore.execute_batch(batch)
        report = full_report(datastore.recorder.records,
                             datastore.proxy.id_log)
        verify_storage_invariants(datastore.recorder.records)
        assert report.max_alpha <= config.alpha_bound()
        assert report.min_beta >= config.beta_bound()


class TestFailureInjection:
    def test_tampered_server_value_detected(self):
        """An adversary flipping ciphertext bits is caught by the AEAD."""
        from repro.errors import IntegrityError
        n = 120
        config = WaffleConfig(n=n, b=16, r=6, f_d=2, d=40, c=20,
                              value_size=64, seed=71)
        datastore = WaffleDatastore(config, make_items(n),
                                    keychain=KeyChain.from_seed(72))
        # Reach through the recorder to the raw server and corrupt blobs.
        raw = datastore.recorder._inner
        for key in list(raw._data)[:40]:
            raw._data[key] = raw._data[key][:-1] + bytes(
                [raw._data[key][-1] ^ 1])
        with pytest.raises(IntegrityError):
            for i in range(n):
                datastore.execute_batch([
                    ClientRequest(op=Operation.READ, key=f"user{i:08d}"),
                ])

    def test_missing_server_object_detected(self):
        """An adversary deleting ciphertexts is caught as a hard error."""
        from repro.errors import KeyNotFoundError
        n = 120
        config = WaffleConfig(n=n, b=16, r=6, f_d=2, d=40, c=20,
                              value_size=64, seed=81)
        datastore = WaffleDatastore(config, make_items(n),
                                    keychain=KeyChain.from_seed(82))
        raw = datastore.recorder._inner
        for key in list(raw._data)[:60]:
            del raw._data[key]
        with pytest.raises(KeyNotFoundError):
            for i in range(n):
                datastore.execute_batch([
                    ClientRequest(op=Operation.READ, key=f"user{i:08d}"),
                ])
