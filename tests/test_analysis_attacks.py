"""Tests for the inference attacks: frequency analysis and co-occurrence.

These tests double as the §8.3.2 security claims in miniature:
deterministic/static-id systems fall to the attacks, Waffle does not.
"""

import pytest

from repro.analysis.attacks import (
    cooccurrence_attack,
    frequency_analysis_attack,
    observed_read_sequence,
)
from repro.bench.experiments import (
    attack_correlated,
    frequency_attack_comparison,
)
from repro.storage.recording import AccessRecord, RecordingStore
from repro.storage.redis_sim import RedisSim


def records_from_reads(sids) -> list[AccessRecord]:
    return [AccessRecord("read", sid, i, i) for i, sid in enumerate(sids)]


class TestObservedSequence:
    def test_filters_reads(self):
        records = [
            AccessRecord("write", "a", 0, 0),
            AccessRecord("read", "b", 0, 1),
            AccessRecord("delete", "b", 0, 2),
        ]
        assert observed_read_sequence(records) == ["b"]


class TestFrequencyAnalysis:
    def test_recovers_deterministic_store(self):
        """Rank matching recovers a skewed, static-id store."""
        import random
        rng = random.Random(1)
        keys = [f"k{i}" for i in range(20)]
        weights = [2.0 ** -i for i in range(20)]
        sids = {key: f"enc-{key}" for key in keys}
        reads = [sids[rng.choices(keys, weights=weights)[0]]
                 for _ in range(20_000)]
        auxiliary = {key: weight for key, weight in zip(keys, weights)}
        truth = {sid: key for key, sid in sids.items()}
        result = frequency_analysis_attack(records_from_reads(reads),
                                           auxiliary, truth)
        assert result.accuracy > 0.5

    def test_uniform_frequencies_defeat_it(self):
        import random
        keys = [f"k{i}" for i in range(20)]
        reads = [f"enc-{key}" for _ in range(200) for key in keys]
        random.Random(2).shuffle(reads)
        auxiliary = {key: 2.0 ** -i for i, key in enumerate(keys)}
        truth = {f"enc-{key}": key for key in keys}
        result = frequency_analysis_attack(records_from_reads(reads),
                                           auxiliary, truth)
        assert result.accuracy < 0.3

    def test_end_to_end_comparison(self):
        """Deterministic store falls, Waffle holds (the §2 narrative).
        The hottest keys are where frequency analysis bites; the Zipf
        tail is statistically ambiguous, so overall accuracy is modest
        even for the vulnerable store."""
        outcome = frequency_attack_comparison(n=64, requests=6000, seed=3)
        assert outcome["deterministic_top10"] >= 0.7
        assert outcome["deterministic_accuracy"] > 5 * outcome["chance"]
        assert outcome["waffle_accuracy"] <= 0.05
        assert outcome["waffle_top10"] <= 0.2


class TestCooccurrenceAttack:
    def test_end_to_end_pancake_vs_waffle(self):
        """The paper's §8.3.2 claim, in miniature: correlated queries let
        the known-query attack recover far more than chance against
        Pancake's static ids, while against Waffle's rotating ids it
        stays near chance."""
        outcome = attack_correlated(n=40, requests=40_000, seed=5)
        chance = outcome["chance"]
        assert outcome["pancake_accuracy"] > 6 * chance
        assert outcome["waffle_accuracy"] < 3 * chance
        assert outcome["pancake_accuracy"] > 3 * outcome["waffle_accuracy"]

    def test_no_repeating_ids_no_signal(self):
        """Each id occurring once (Waffle's guarantee) yields zero
        attack targets under the min-occurrence filter."""
        import numpy as np
        reads = [f"unique-{i}" for i in range(500)]
        transition = np.full((5, 5), 0.2)
        result = cooccurrence_attack(records_from_reads(reads), transition,
                                     [f"k{i}" for i in range(5)], {},
                                     seed=1, iterations=100)
        assert result.targets == 0
        assert result.accuracy == 0.0
