"""Tests for the oblint static-analysis suite (DESIGN.md §9).

Two directions of coverage:

* every rule fires on its planted known-bad fixture — and *only* that
  rule, so the rules do not step on each other;
* the shipped source tree lints clean against the committed allowlist,
  which is what keeps the invariants enforced going forward.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    AllowlistEntry,
    default_rules,
    find_allowlist,
    load_allowlist,
    run_lint,
)

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
FIXTURE_FILES = sorted(FIXTURES.glob("obl*.py"))


def expected_rule(fixture: Path) -> str:
    return "OBL" + fixture.stem[3:6]


class TestFixturesFireExactlyTheirRule:
    """Each planted known-bad snippet triggers its rule and nothing else."""

    def test_every_rule_has_a_fixture(self):
        covered = {expected_rule(f) for f in FIXTURE_FILES}
        # OBL003 (unused allowlist entry) is a report-level warning that
        # cannot be planted in a source file; it is covered below.
        plantable = {rule.id for rule in ALL_RULES} | {"OBL001", "OBL002"}
        assert covered == plantable - {"OBL003"}

    @pytest.mark.parametrize("fixture", FIXTURE_FILES,
                             ids=[f.stem for f in FIXTURE_FILES])
    def test_fixture_fires_exactly_its_rule(self, fixture):
        report = run_lint([fixture], allowlist=())
        fired = {finding.rule for finding in report.findings}
        assert fired == {expected_rule(fixture)}, report.describe()

    def test_secret_flow_fixture_names_the_planted_line(self):
        fixture = FIXTURES / "obl101_secret_to_server.py"
        report = run_lint([fixture], allowlist=())
        (finding,) = report.findings
        planted = fixture.read_text().splitlines()[finding.line - 1]
        assert "store.get" in planted

    def test_lock_bypass_fixture_flags_only_the_unlocked_write(self):
        fixture = FIXTURES / "obl401_unlocked_write.py"
        report = run_lint([fixture], allowlist=())
        (finding,) = report.findings
        planted = fixture.read_text().splitlines()
        assert planted[finding.line - 1].strip() == "self.count += 1"
        # the locked twin of the same statement is *not* flagged
        assert planted.index("            self.count += 1") != finding.line - 1


class TestSourceTreeLintsClean:
    """The enforcement direction: src/repro is clean under the shipped
    allowlist, so any new violation fails CI."""

    def test_src_repro_clean_with_committed_allowlist(self):
        report = run_lint([ROOT / "src" / "repro"])
        assert report.ok, report.describe()
        # warnings (e.g. stale allowlist entries) must not accumulate
        assert report.findings == [], report.describe()
        assert report.files_checked > 80

    def test_allowlist_discovered_from_repo_root(self):
        found = find_allowlist(ROOT / "src" / "repro")
        assert found is not None and found.name == ".oblint.json"
        entries = load_allowlist(found)
        assert all(entry.reason for entry in entries)


class TestSuppressionAndAllowlistMechanics:
    def test_reasoned_suppression_suppresses(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(textwrap.dedent("""\
            import time


            def deadline() -> float:
                return time.time()  # oblint: disable=OBL201 -- test stub
        """))
        report = run_lint([target], allowlist=())
        assert report.findings == []
        assert [rule for (finding, _) in report.suppressed
                for rule in [finding.rule]] == ["OBL201"]

    def test_reasonless_suppression_does_not_suppress(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(textwrap.dedent("""\
            import time


            def deadline() -> float:
                return time.time()  # oblint: disable=OBL201
        """))
        report = run_lint([target], allowlist=())
        fired = {finding.rule for finding in report.findings}
        assert fired == {"OBL001", "OBL201"}

    def test_allowlist_entry_must_give_reason(self, tmp_path):
        bad = tmp_path / ".oblint.json"
        bad.write_text(json.dumps(
            {"entries": [{"rule": "OBL201", "path": "mod.py"}]}))
        with pytest.raises(ValueError, match="reason"):
            load_allowlist(bad)

    def test_allowlisted_finding_is_recorded_not_reported(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\n\ndef f() -> float:\n"
                          "    return time.time()\n")
        entry = AllowlistEntry(rule="OBL201", path="mod.py",
                               reason="test fixture")
        report = run_lint([target], allowlist=[entry])
        assert report.findings == []
        assert len(report.allowlisted) == 1

    def test_unused_allowlist_entry_warns_obl003(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("X = 1\n")
        entry = AllowlistEntry(rule="OBL201", path="nonexistent.py",
                               reason="stale")
        report = run_lint([target], allowlist=[entry])
        assert [f.rule for f in report.findings] == ["OBL003"]
        assert report.ok  # warnings do not fail the run

    def test_stray_artifact_reports_obl004(self, tmp_path):
        (tmp_path / "mod.py").write_text("X = 1\n")
        (tmp_path / "mod.py.tmp").write_text("X = 2  # half-saved edit\n")
        (tmp_path / "merge.orig").write_text("conflict leftovers\n")
        report = run_lint([tmp_path], allowlist=())
        fired = sorted((f.rule, Path(f.path).name) for f in report.findings)
        assert fired == [("OBL004", "merge.orig"), ("OBL004", "mod.py.tmp")]
        assert not report.ok

    def test_artifact_can_only_be_excepted_via_allowlist(self, tmp_path):
        # Artifacts are not Python, so no inline suppression exists;
        # a reasoned allowlist entry is the only escape hatch.
        (tmp_path / "keep.bak").write_text("intentional\n")
        entry = AllowlistEntry(rule="OBL004", path="keep.bak",
                               reason="fixture for restore tooling")
        report = run_lint([tmp_path], allowlist=[entry])
        assert report.findings == []
        assert [f.rule for (f, _) in report.allowlisted] == ["OBL004"]

    def test_direct_artifact_path_reports_obl004(self, tmp_path):
        stray = tmp_path / "notes.rej"
        stray.write_text("rejected hunk\n")
        report = run_lint([stray], allowlist=())
        assert [f.rule for f in report.findings] == ["OBL004"]

    def test_unparsable_file_reports_obl002(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        report = run_lint([target], allowlist=())
        assert [f.rule for f in report.findings] == ["OBL002"]
        assert not report.ok

    def test_report_json_is_machine_readable(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\n\n\ndef f() -> float:\n"
                          "    return time.time()\n")
        payload = run_lint([target], allowlist=()).to_json()
        decoded = json.loads(json.dumps(payload))
        assert decoded["errors"] == 1
        assert decoded["findings"][0]["rule"] == "OBL201"


class TestRuleRegistry:
    def test_rule_ids_unique_and_documented(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        package_doc = __import__("repro.lint", fromlist=["lint"]).__doc__
        for rule_id in ids:
            assert rule_id in package_doc

    def test_default_rules_are_fresh_instances(self):
        first, second = default_rules(), default_rules()
        assert {r.id for r in first} == {rule.id for rule in ALL_RULES}
        assert all(a is not b for a, b in zip(first, second))


class TestMypyStrictGate:
    """The other half of the typing gate; runs wherever mypy is
    installed (the CI lint job), skips where it is not."""

    def test_gated_packages_pass_mypy_strict(self, monkeypatch):
        api = pytest.importorskip("mypy.api")
        monkeypatch.setenv("MYPYPATH", str(ROOT / "src"))
        monkeypatch.chdir(ROOT)
        stdout, stderr, status = api.run([
            "--strict",
            "-p", "repro.crypto",
            "-p", "repro.core",
            "-p", "repro.ds",
            "-p", "repro.storage",
        ])
        assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
