"""Tests for the durable (snapshot + AOF) storage backend."""

import random
import struct

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage.persistent import PersistentStore


@pytest.fixture
def directory(tmp_path):
    return tmp_path / "db"


class TestBasics:
    def test_put_get_delete(self, directory):
        store = PersistentStore(directory)
        store.put("k", b"v")
        assert store.get("k") == b"v"
        store.delete("k")
        with pytest.raises(KeyNotFoundError):
            store.get("k")

    def test_write_once_mode(self, directory):
        store = PersistentStore(directory, write_once=True)
        store.put("k", b"v")
        with pytest.raises(DuplicateKeyError):
            store.put("k", b"v2")

    def test_multi_operations(self, directory):
        store = PersistentStore(directory)
        items = [(f"k{i}", b"v%d" % i) for i in range(30)]
        store.multi_put(items)
        assert store.multi_get([k for k, _ in items]) == \
            [v for _, v in items]
        store.multi_delete([k for k, _ in items[:10]])
        assert len(store) == 20


class TestDurability:
    def test_recovery_from_log_only(self, directory):
        store = PersistentStore(directory)
        store.put("a", b"1")
        store.put("b", b"2")
        store.delete("a")
        store.crash()
        recovered = PersistentStore(directory)
        assert "a" not in recovered
        assert recovered.get("b") == b"2"

    def test_recovery_from_snapshot_plus_log(self, directory):
        store = PersistentStore(directory)
        for i in range(50):
            store.put(f"k{i}", b"v%d" % i)
        store.snapshot()
        store.put("after", b"tail")
        store.delete("k0")
        store.crash()
        recovered = PersistentStore(directory)
        assert len(recovered) == 50  # 50 - k0 + after
        assert recovered.get("after") == b"tail"
        assert "k0" not in recovered

    def test_snapshot_truncates_log(self, directory):
        store = PersistentStore(directory)
        for i in range(20):
            store.put(f"k{i}", b"x" * 100)
        log_before = (directory / "appendonly.log").stat().st_size
        store.snapshot()
        log_after = (directory / "appendonly.log").stat().st_size
        assert log_before > 0
        assert log_after == 0

    def test_torn_tail_record_discarded(self, directory):
        store = PersistentStore(directory)
        store.put("good", b"value")
        store.close()
        # Simulate a crash mid-append: write a truncated record.
        with open(directory / "appendonly.log", "ab") as log:
            log.write(struct.pack(">BII", 1, 4, 100) + b"torn")
        recovered = PersistentStore(directory)
        assert recovered.get("good") == b"value"
        assert len(recovered) == 1

    def test_binary_values_roundtrip(self, directory):
        payload = bytes(range(256)) * 3
        store = PersistentStore(directory)
        store.put("bin", payload)
        store.crash()
        assert PersistentStore(directory).get("bin") == payload

    def test_random_history_recovers_exactly(self, directory):
        store = PersistentStore(directory)
        reference = {}
        rng = random.Random(7)
        for step in range(500):
            key = f"k{rng.randrange(40)}"
            roll = rng.random()
            if roll < 0.5:
                value = b"v%d" % step
                store.put(key, value)
                reference[key] = value
            elif roll < 0.7 and key in reference:
                store.delete(key)
                del reference[key]
            elif roll < 0.75:
                store.snapshot()
        store.crash()
        recovered = PersistentStore(directory)
        assert {k: recovered.get(k) for k in reference} == reference
        assert len(recovered) == len(reference)


class TestWaffleOverPersistentServer:
    def test_waffle_survives_server_restart(self, directory):
        """A server crash+recovery between batches is invisible to the
        proxy: no consumed id reappears, values persist."""
        from repro.core.batch import ClientRequest
        from repro.core.config import WaffleConfig
        from repro.core.proxy import WaffleProxy
        from repro.core.datastore import pad_value, unpad_value
        from repro.crypto.keys import KeyChain
        from repro.workloads.trace import Operation
        from tests.conftest import make_items

        n = 120
        config = WaffleConfig(n=n, b=16, r=6, f_d=4, d=40, c=20,
                              value_size=64, seed=61)
        store = PersistentStore(directory, write_once=True)
        proxy = WaffleProxy(config, store=store,
                            keychain=KeyChain.from_seed(62))
        items = make_items(n)
        proxy.initialize({k: pad_value(v, config.value_size)
                          for k, v in items.items()})
        rng = random.Random(63)
        proxy.handle_batch([
            ClientRequest(op=Operation.WRITE, key="user00000005",
                          value=pad_value(b"durable!", config.value_size)),
        ])
        for _ in range(5):
            proxy.handle_batch([
                ClientRequest(op=Operation.READ,
                              key=f"user{rng.randrange(n):08d}")
                for _ in range(config.r)
            ])

        # Server crashes and recovers; proxy state survives client-side.
        store.crash()
        recovered = PersistentStore(directory, write_once=True)
        proxy.store = recovered
        for _ in range(5):
            proxy.handle_batch([
                ClientRequest(op=Operation.READ,
                              key=f"user{rng.randrange(n):08d}")
                for _ in range(config.r)
            ])
        response = proxy.handle_batch([
            ClientRequest(op=Operation.READ, key="user00000005"),
        ])[0]
        assert unpad_value(response.value) == b"durable!"
