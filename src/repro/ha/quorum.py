"""Quorum-replicated proxy: the paper's second availability option.

§3.1: proxy availability "can be ensured with techniques such as a
primary-secondary replication or a quorum replication".
:class:`QuorumReplicatedProxy` generalizes
:class:`~repro.ha.replicated.HighlyAvailableProxy` from one standby to a
replica group: after each batch the state snapshot ships to all
standbys, and the batch is only acknowledged once a write quorum
(majority by default) holds it.  Any quorum member can be promoted;
because snapshots are acknowledged synchronously at the quorum, a
promotion never resumes from a state older than the last acknowledged
batch — the property that protects the write-once/read-once id
invariant across failures.

Standby failures are simulated with :meth:`fail_standby`; the group
refuses new batches once fewer than ``quorum - 1`` standbys remain (the
primary itself counts toward the quorum).
"""

from __future__ import annotations

from repro.core.batch import ClientRequest, ClientResponse
from repro.core.proxy import WaffleProxy
from repro.errors import ConfigurationError, ProtocolError
from repro.ha.checkpoint import capture_proxy, restore_proxy
from repro.storage.base import StorageBackend

__all__ = ["QuorumReplicatedProxy"]


class QuorumReplicatedProxy:
    """A proxy replica group with synchronous quorum state shipping.

    Parameters
    ----------
    primary:
        The initialized working proxy.
    standbys:
        Number of standby replicas (total group = standbys + 1).
    quorum:
        Members (including the primary) that must hold a snapshot before
        a batch acknowledges; defaults to a majority of the group.
    """

    def __init__(self, primary: WaffleProxy, standbys: int = 2,
                 quorum: int | None = None) -> None:
        if standbys < 1:
            raise ConfigurationError("need at least one standby")
        group_size = standbys + 1
        self.quorum = quorum if quorum is not None else group_size // 2 + 1
        if not 1 <= self.quorum <= group_size:
            raise ConfigurationError(
                f"quorum must lie in [1, {group_size}]"
            )
        self._primary = primary
        blob = capture_proxy(primary)
        #: standby id -> (alive, latest acknowledged snapshot)
        self._standbys: dict[int, tuple[bool, bytes]] = {
            index: (True, blob) for index in range(standbys)
        }
        self.failovers = 0
        self.acknowledged_batches = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def proxy(self) -> WaffleProxy:
        return self._primary

    @property
    def alive_standbys(self) -> int:
        return sum(1 for alive, _ in self._standbys.values() if alive)

    def fail_standby(self, standby_id: int) -> None:
        """A standby machine dies (its snapshot is lost with it)."""
        alive, blob = self._standbys[standby_id]
        if not alive:
            raise ProtocolError(f"standby {standby_id} already failed")
        self._standbys[standby_id] = (False, b"")

    def restore_standby(self, standby_id: int) -> None:
        """A replacement standby joins and receives the current state."""
        self._standbys[standby_id] = (True, capture_proxy(self._primary))

    def _quorum_available(self) -> bool:
        # The primary holds its own state: 1 + alive standbys.
        return 1 + self.alive_standbys >= self.quorum

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def handle_batch(self, requests: list[ClientRequest],
                     ) -> list[ClientResponse]:
        """Execute one batch, then replicate to a quorum before acking."""
        if not self._quorum_available():
            raise ProtocolError(
                f"quorum lost: {1 + self.alive_standbys} of "
                f"{self.quorum} required members alive"
            )
        responses = self._primary.handle_batch(requests)
        blob = capture_proxy(self._primary)
        acks = 1  # the primary
        for standby_id, (alive, _) in self._standbys.items():
            if alive:
                self._standbys[standby_id] = (True, blob)
                acks += 1
        if acks < self.quorum:  # pragma: no cover - guarded above
            raise ProtocolError("quorum lost mid-replication")
        self.acknowledged_batches += 1
        return responses

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    def fail_over(self, store: StorageBackend | None = None) -> WaffleProxy:
        """The primary dies; promote any alive standby's snapshot."""
        candidates = [blob for alive, blob in self._standbys.values()
                      if alive]
        if not candidates:
            raise ProtocolError("no alive standby to promote")
        target_store = store if store is not None else self._primary.store
        self._primary = restore_proxy(candidates[0], target_store)
        self.failovers += 1
        return self._primary
