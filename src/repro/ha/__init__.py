"""Proxy high availability: checkpointing and primary-secondary failover.

The paper assumes "a stateful entity assumed to be highly available
(which can be ensured with techniques such as a primary-secondary
replication or a quorum replication)" (§3.1) and lists fault tolerance
as future work (§10).  This package supplies that substrate:

* :mod:`repro.ha.checkpoint` — capture/restore the proxy's complete
  trusted state (timestamp indexes, cache, RNG, mutation queue, secrets)
  such that a restored proxy is behaviourally identical;
* :mod:`repro.ha.replicated` — a primary-secondary wrapper that ships a
  state snapshot to the standby at every batch boundary and fails over
  without violating linearizability or any storage-id invariant.

Crash granularity is the batch boundary: a batch is the proxy's atomic
unit of work against the server (Algorithm 1 runs one batch at a time),
so the standby's last snapshot is always mutually consistent with the
server.  Mid-batch atomicity would be the server's transaction
machinery, which is orthogonal here.
"""

from repro.ha.checkpoint import capture_proxy, restore_proxy
from repro.ha.quorum import QuorumReplicatedProxy
from repro.ha.replicated import HighlyAvailableProxy

__all__ = [
    "HighlyAvailableProxy",
    "QuorumReplicatedProxy",
    "capture_proxy",
    "restore_proxy",
]
