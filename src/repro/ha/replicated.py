"""Primary-secondary replicated proxy.

The primary executes every batch; at each batch boundary a full state
snapshot ships to the standby (state shipping rather than command
replay, because replaying Algorithm 1 would re-issue server I/O whose
storage ids have already been consumed — each id is read-once).  On
:meth:`fail_over`, the standby's snapshot becomes the new primary,
attached to the same untrusted server, and processing continues with no
client-visible difference: linearizability, the write-once/read-once id
lifecycle and the α/β bounds all carry across (verified by the tests).

The paper's availability assumption (§3.1) is exactly this shape; a
quorum variant would ship the same blob to multiple standbys and is a
policy layer above :class:`HighlyAvailableProxy`.
"""

from __future__ import annotations

import time

from repro.core.batch import ClientRequest, ClientResponse
from repro.core.proxy import WaffleProxy
from repro.errors import ConfigurationError, ProtocolError
from repro.ha.checkpoint import capture_proxy, restore_proxy
from repro.obs import OBS
from repro.storage.base import StorageBackend

__all__ = ["HighlyAvailableProxy"]


class HighlyAvailableProxy:
    """A proxy with a warm standby snapshot and batch-boundary shipping.

    Parameters
    ----------
    primary:
        The initialized proxy doing the work.
    checkpoint_interval:
        Ship a snapshot every this many batches (1 = synchronous
        replication, the default; larger intervals trade recovery
        currency for shipping cost, and :meth:`fail_over` then refuses
        unless ``allow_stale`` acknowledges the gap).
    """

    def __init__(self, primary: WaffleProxy,
                 checkpoint_interval: int = 1) -> None:
        if checkpoint_interval < 1:
            raise ConfigurationError("checkpoint interval must be >= 1")
        self._primary = primary
        self._interval = checkpoint_interval
        self._standby_blob: bytes = capture_proxy(primary)
        self._batches_since_ship = 0
        self.failovers = 0
        self.snapshots_shipped = 1

    @property
    def proxy(self) -> WaffleProxy:
        """The current primary (changes after fail-over)."""
        return self._primary

    @property
    def standby_lag_batches(self) -> int:
        """Batches executed since the standby's snapshot."""
        return self._batches_since_ship

    def handle_batch(self, requests: list[ClientRequest],
                     ) -> list[ClientResponse]:
        """Execute one batch on the primary, then replicate."""
        responses = self._primary.handle_batch(requests)
        self._batches_since_ship += 1
        if self._batches_since_ship >= self._interval:
            if OBS.enabled:
                start = time.perf_counter()
                self._standby_blob = capture_proxy(self._primary)
                OBS.observe_span("ha.checkpoint",
                                 time.perf_counter() - start,
                                 bytes=len(self._standby_blob))
                OBS.registry.counter("ha.snapshots.total").inc()
            else:
                self._standby_blob = capture_proxy(self._primary)
            self.snapshots_shipped += 1
            self._batches_since_ship = 0
        if OBS.enabled:
            OBS.registry.gauge("ha.standby_lag.batches").set(
                self._batches_since_ship)
        return responses

    def fail_over(self, store: StorageBackend | None = None,
                  allow_stale: bool = False) -> WaffleProxy:
        """Promote the standby snapshot to primary.

        Parameters
        ----------
        store:
            Server handle for the new primary; defaults to the old
            primary's (the server survived, the proxy did not).
        allow_stale:
            With ``checkpoint_interval > 1`` the snapshot may lag the
            server by up to ``interval - 1`` batches; resuming from it
            would re-derive already-consumed storage ids.  Synchronous
            replication (interval 1, the default) never lags; a lagging
            snapshot is refused unless the caller explicitly accepts
            that the affected batches must be recovered by other means.
        """
        if self._batches_since_ship and not allow_stale:
            raise ProtocolError(
                f"standby lags primary by {self._batches_since_ship} "
                "batches; pass allow_stale=True to promote anyway"
            )
        target_store = store if store is not None else self._primary.store
        self._primary = restore_proxy(self._standby_blob, target_store)
        self._batches_since_ship = 0
        self.failovers += 1
        if OBS.enabled:
            OBS.registry.counter("ha.failovers.total").inc()
            OBS.event("ha.failover", round=self._primary.ts,
                      stale=allow_stale)
        return self._primary
