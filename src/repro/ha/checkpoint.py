"""Proxy state checkpointing.

A checkpoint must capture everything that influences future proxy
behaviour, because obliviousness depends on determinism of the restored
replica: which objects are picked for fake queries (both timestamp
indexes, including tie-break order), the cache contents *and LRU order*
(β depends on eviction order), the global timestamp, the RNG (dummy
payloads, cache seeding), the pending mutation queue, the keychain and
the lifetime statistics.

The state lives entirely in the trusted domain (§3.1), so a standard
:mod:`pickle` blob is appropriate — this is proxy-to-standby shipping
inside one administrative domain, not an external wire format.  The
untrusted server handle is deliberately *not* part of the checkpoint;
:func:`restore_proxy` reattaches whichever store handle the new primary
should use.
"""

from __future__ import annotations

import pickle

from repro.core.proxy import WaffleProxy
from repro.errors import ProtocolError
from repro.storage.base import StorageBackend

__all__ = ["capture_proxy", "restore_proxy"]

#: Every attribute that, together, fully determines proxy behaviour.
_STATE_ATTRIBUTES = (
    "config",
    "keychain",
    "cache",
    "ts",
    "totals",
    "mutations",
    "_rng",
    "_real_index",
    "_dummy_index",
    "_initialized",
    "_last_stats",
    "_keep_round_stats",
    "id_log",
)


def capture_proxy(proxy: WaffleProxy) -> bytes:
    """Serialize the proxy's complete trusted state to a blob.

    Per-round statistics are telemetry, not behaviour: they are dropped
    from the snapshot (they would otherwise grow without bound and
    dominate shipping cost on long-lived proxies).
    """
    if not proxy._initialized:
        raise ProtocolError("cannot checkpoint an uninitialized proxy")
    state = {name: getattr(proxy, name) for name in _STATE_ATTRIBUTES}
    totals = state["totals"]
    slim = type(totals)(
        rounds=totals.rounds, requests=totals.requests,
        cache_hits=totals.cache_hits, server_reads=totals.server_reads,
        server_writes=totals.server_writes,
        max_transient_cache=totals.max_transient_cache,
        stats_by_round=[],
    )
    state["totals"] = slim
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def restore_proxy(blob: bytes, store: StorageBackend) -> WaffleProxy:
    """Reconstruct a proxy from a checkpoint, attached to ``store``.

    The restored proxy is behaviourally identical to the captured one:
    fed the same request batches it produces the same responses and the
    same server access sequence.
    """
    state = pickle.loads(blob)
    proxy = WaffleProxy.__new__(WaffleProxy)
    proxy.store = store
    for name, value in state.items():
        setattr(proxy, name, value)
    return proxy
