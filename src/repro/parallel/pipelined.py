"""Double-buffered round pipelining over a storage backend.

The last thing a round does on the server is ``commit_round`` — the B
deletes + B writes — and the first server touch of the *next* round is
its ``multi_get``.  Everything between (dedup, fake-query sampling, the
PRF pass over the next read batch) is pure proxy CPU.
:class:`PipelinedStore` exploits that window: ``commit_round`` (and the
round-boundary ``next_round`` marker) are *enqueued* to a single
background drain thread, so round k's server I/O overlaps round k+1's
assembly and crypto; every synchronous operation first waits for the
queue to drain (:meth:`barrier`), so batch composition never observes —
or depends on — in-flight results.

Correctness properties:

* **Ordering** — the queue is FIFO and there is exactly one drain
  thread, so the backend (and any :class:`RecordingStore` beneath this
  wrapper) sees precisely the serial operation sequence: the
  adversary-visible trace is byte-identical to unpipelined execution
  (pinned by ``tests/test_parallel.py``).
* **Read-your-writes** — ``multi_get`` barriers first, so a read can
  never overtake the previous round's deletes/writes.
* **Error propagation** — an exception on the drain thread is captured
  and re-raised (same object) at the next barrier or :meth:`close`;
  nothing is silently dropped.
* **Bounded depth** — the queue holds at most ``depth`` round commits
  (default 2: classic double buffering), so a slow server back-pressures
  the proxy instead of growing an unbounded backlog.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterable, Sequence

from repro.obs import OBS
from repro.storage.base import StorageBackend

__all__ = ["PipelinedStore"]

_STOP = object()


class PipelinedStore(StorageBackend):
    """Wrap ``inner`` so round commits run on a background drain thread.

    Parameters
    ----------
    inner:
        The real backend (typically a :class:`~repro.net.client.RemoteStore`
        or a recording stack); all operations are forwarded to it in
        their original order.
    depth:
        Maximum queued round boundaries before ``commit_round`` blocks.
    """

    def __init__(self, inner: StorageBackend, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("pipeline depth must be positive")
        self._inner = inner
        self._tasks: queue.Queue = queue.Queue(maxsize=2 * depth)
        #: Exceptions raised on the drain thread (list.append is atomic
        #: under the GIL; no lock needed for this error mailbox).
        self._errors: list[BaseException] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="pipelined-store-drain", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # drain thread
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        tasks = self._tasks
        while True:
            task = tasks.get()
            if task is _STOP:
                tasks.task_done()
                return
            try:
                kind, args = task
                if kind == "commit":
                    self._inner.commit_round(*args)
                else:  # "next_round"
                    forward = getattr(self._inner, "next_round", None)
                    if forward is not None:
                        forward()
            except BaseException as error:  # noqa: BLE001 - re-raised at barrier
                self._errors.append(error)
            finally:
                tasks.task_done()

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Block until every queued operation has been applied.

        Re-raises the first error captured on the drain thread, so
        failures surface on the proxy thread at the next synchronous
        touch rather than disappearing into the background.
        """
        if OBS.enabled:
            start = time.perf_counter()
            self._tasks.join()
            OBS.registry.histogram("parallel.pipeline.stall.seconds").observe(
                time.perf_counter() - start)
        else:
            self._tasks.join()
        if self._errors:
            error = self._errors[0]
            self._errors.clear()
            raise error

    def close(self) -> None:
        """Drain outstanding work and stop the background thread."""
        if self._closed:
            return
        self._closed = True
        self._tasks.join()
        self._tasks.put(_STOP)
        self._thread.join()
        if self._errors:
            error = self._errors[0]
            self._errors.clear()
            raise error

    def __enter__(self) -> "PipelinedStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # asynchronous round boundary
    # ------------------------------------------------------------------
    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        if self._closed:
            raise RuntimeError("pipelined store is closed")
        # Materialize before enqueueing: the caller may mutate its lists
        # after handle_batch returns, while the commit is still in flight.
        self._tasks.put(("commit", (list(deletes), list(puts))))
        if OBS.enabled:
            OBS.registry.gauge("parallel.pipeline.depth").set(
                self._tasks.qsize())

    def next_round(self) -> None:
        if self._closed:
            raise RuntimeError("pipelined store is closed")
        self._tasks.put(("next_round", ()))

    # ------------------------------------------------------------------
    # synchronous operations (barrier, then forward)
    # ------------------------------------------------------------------
    def get(self, storage_id: str) -> bytes:
        self.barrier()
        return self._inner.get(storage_id)

    def put(self, storage_id: str, blob: bytes) -> None:
        self.barrier()
        self._inner.put(storage_id, blob)

    def delete(self, storage_id: str) -> None:
        self.barrier()
        self._inner.delete(storage_id)

    def multi_get(self, storage_ids: Sequence[str]) -> list[bytes]:
        self.barrier()
        return self._inner.multi_get(storage_ids)

    def multi_put(self, pairs: Iterable[tuple[str, bytes]]) -> None:
        self.barrier()
        self._inner.multi_put(pairs)

    def multi_delete(self, storage_ids: Sequence[str]) -> None:
        self.barrier()
        self._inner.multi_delete(storage_ids)

    def __contains__(self, storage_id: object) -> bool:
        self.barrier()
        return storage_id in self._inner

    def __len__(self) -> int:
        self.barrier()
        return len(self._inner)
