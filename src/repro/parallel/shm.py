"""Shared-memory batch transport for the worker pool (coordinator side).

PR 5's engine shipped every chunk as a pickled bytes payload through the
``multiprocessing`` pipe — one copy into the pickle stream, one through
the OS pipe, one out of the unpickler, each way.  `BENCH_parallel.json`
showed the result: pooled speedups of 0.52–0.67x, the transport eating
more than the crypto it fed.  This module replaces the pipe with
:mod:`multiprocessing.shared_memory` ring segments:

* the coordinator packs a chunk's length-prefixed frames straight into a
  preallocated ``SharedMemory`` segment via ``memoryview`` slice
  assignment (one copy, total);
* the worker maps the same segment and iterates *views* over the frames
  (zero copy on the request side), writing its output frames into a
  second, response segment;
* the only objects crossing the pipe are the segment names and two
  integers.

:class:`SegmentPool` owns segment lifecycle.  Segments are acquired per
chunk and released back to a free-list when the chunk's results have
been read, so the steady state of a long run allocates nothing: a round
reuses the same few segments over and over (power-of-two sizing makes a
free segment reusable for any same-magnitude chunk).  ``close()``
unlinks every segment ever created — the pool is the single owner, and
a closed pool leaves nothing behind in ``/dev/shm`` even after worker
crashes (workers only ever *attach*; they never own).

One POSIX footgun is handled explicitly: on Python 3.11,
``SharedMemory(name=...)`` — a plain attach — also registers the
segment with the process's ``resource_tracker`` (bpo-38119), so a
worker exiting would have its tracker unlink segments the coordinator
still owns and spam stderr with leak warnings.  Workers therefore
unregister immediately after attaching (see
:func:`repro.parallel.worker.run_chunk_shm`); ownership stays with this
pool alone.
"""

from __future__ import annotations

import itertools
import os
import threading
from multiprocessing import shared_memory

from repro.obs import OBS

__all__ = ["SegmentPool"]

#: Smallest segment ever allocated.  Page-sized chunks are pointless to
#: distinguish; rounding small requests up here keeps the free-list from
#: fragmenting into unreusable slivers.
_MIN_SEGMENT = 4096

#: Process-wide counter so every pool's segments get distinct names even
#: when several pools coexist (shard-parallel partitions each hold one).
_SEQ = itertools.count()


def _round_up(nbytes: int) -> int:
    """Power-of-two size class for ``nbytes`` (min one page)."""
    size = _MIN_SEGMENT
    while size < nbytes:
        size *= 2
    return size


class SegmentPool:
    """Free-listed ``SharedMemory`` segments for chunk transport.

    Parameters
    ----------
    workers:
        Worker count of the owning pool — only used to label the
        ``parallel.shm.*`` metrics so the dashboard can attribute
        segment traffic per pool size.

    Thread-safe: the pipelined store overlaps rounds on a background
    thread, so two ``run()`` calls may acquire concurrently.
    """

    __slots__ = ("_prefix", "_workers", "_lock", "_free", "_all", "_closed")

    def __init__(self, workers: int = 0) -> None:
        # The pid in the prefix scopes leak checks (tests glob
        # /dev/shm/<prefix>*) and survives fork: children inherit the
        # name but never create under it.
        self._prefix = f"repro-shm-{os.getpid()}-{next(_SEQ)}"
        self._workers = workers
        self._lock = threading.Lock()
        self._free: list[shared_memory.SharedMemory] = []
        self._all: list[shared_memory.SharedMemory] = []
        self._closed = False

    @property
    def prefix(self) -> str:
        """Name prefix of every segment this pool creates."""
        return self._prefix

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A segment of at least ``nbytes``, reused from the free-list.

        Best-fit over the free-list; a miss allocates a fresh segment in
        the next power-of-two size class.  The caller must hand the
        segment back via :meth:`release` once its contents have been
        consumed — segments are never garbage-collected mid-run.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("segment pool is closed")
            best = None
            for index, segment in enumerate(self._free):
                if segment.size >= nbytes and (
                        best is None or segment.size < self._free[best].size):
                    best = index
            if best is not None:
                segment = self._free.pop(best)
                if OBS.enabled:
                    OBS.registry.counter(
                        "parallel.shm.segments.total", event="reused",
                        workers=str(self._workers)).inc()
                return segment
            segment = shared_memory.SharedMemory(
                name=f"{self._prefix}-{next(_SEQ)}", create=True,
                size=_round_up(nbytes))
            self._all.append(segment)
        if OBS.enabled:
            OBS.registry.counter(
                "parallel.shm.segments.total", event="created",
                workers=str(self._workers)).inc()
            OBS.registry.gauge(
                "parallel.shm.bytes.held",
                workers=str(self._workers)).set(
                    sum(seg.size for seg in self._all))
        return segment

    def release(self, segment: shared_memory.SharedMemory) -> None:
        """Return ``segment`` to the free-list for the next chunk."""
        with self._lock:
            if self._closed:
                return
            self._free.append(segment)

    def close(self) -> None:
        """Unlink every segment ever created (idempotent).

        Callers must stop the worker processes first: unlinking only
        removes the name, so live workers keep valid mappings, but a
        name-based re-attach (a chunk submitted after close) would fail.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = self._all
            self._all = []
            self._free = []
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exported views live
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SegmentPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
