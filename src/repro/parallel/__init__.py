"""``repro.parallel`` — real multi-core round execution.

Three composable mechanisms (DESIGN.md §10):

* :class:`~repro.parallel.engine.WorkerPool` +
  :func:`~repro.parallel.engine.attach_pool` — spread the
  embarrassingly-parallel kernel phases of a round (PRF id derivation,
  AEAD encrypt/decrypt over the B+D batch) across process workers while
  the serial assembly phase stays on the coordinating thread;
* :class:`~repro.parallel.pipelined.PipelinedStore` — double-buffered
  overlap of round k's server I/O with round k+1's crypto;
* ``shard_workers`` on
  :class:`~repro.scaleout.partitioned.PartitionedWaffle` — independent
  partitions execute their rounds concurrently.

All three preserve the adversary-visible trace byte-for-byte relative
to serial execution — the invariant everything in this repository's
security argument rests on.
"""

from repro.parallel.engine import (
    PooledCipher,
    PooledPrf,
    WorkerPool,
    attach_pool,
    detach_pool,
)
from repro.parallel.pipelined import PipelinedStore
from repro.parallel.shm import SegmentPool
from repro.parallel.worker import iter_frames, pack_frames, unpack_frames

__all__ = [
    "PipelinedStore",
    "PooledCipher",
    "PooledPrf",
    "SegmentPool",
    "WorkerPool",
    "attach_pool",
    "detach_pool",
    "iter_frames",
    "pack_frames",
    "unpack_frames",
]
