"""Worker-pool round execution engine (coordinator side).

A Waffle round has two kinds of work (DESIGN.md §10, and the mechanism
:mod:`repro.sim.pipeline` models): *assembly* — dedup, fake-query
sampling, treap/LRU updates — which mutates shared proxy state and must
stay on the coordinating thread, and the *embarrassingly parallel* kernel
work — PRF id derivation and AEAD encrypt/decrypt over the B+D batch —
which is a pure function of its inputs.  :class:`WorkerPool` spreads the
latter across ``concurrent.futures`` process workers; :class:`PooledPrf`
and :class:`PooledCipher` wrap the real kernels with the exact same call
surface, so an unmodified :class:`~repro.core.proxy.WaffleProxy` runs
pooled via :func:`attach_pool` with zero protocol changes.

Determinism contract (pinned by ``tests/test_parallel.py`` and the chaos
determinism suite): pooled output is byte-identical to inline execution
for every worker count.  Two mechanisms guarantee it:

* PRF derivation and AEAD decryption are deterministic functions;
* AEAD *encryption* nonces are drawn serially on the coordinator, in
  input order, from the inner cipher's own rng —  workers only consume
  the nonce they are handed, so the proxy's rng stream advances
  draw-for-draw identically to inline execution.

Checkpoint compatibility: :mod:`repro.ha.checkpoint` pickles the proxy's
keychain.  The pooled wrappers reduce to their *inner* kernels on
pickle — a restored standby starts with plain kernels (byte-identical
behaviour) and the chaos runner re-attaches the pool after promotion.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf
from repro.obs import OBS
from repro.parallel.worker import (
    init_worker,
    pack_frames,
    run_chunk,
    unpack_frames,
)

__all__ = ["PooledCipher", "PooledPrf", "WorkerPool", "attach_pool",
           "detach_pool", "unwrap_kernel"]

#: Below this many items a dispatch is not worth the serialization and
#: scheduling cost; the wrappers fall back to the inline kernel.  The
#: chaos determinism tests pass ``min_batch=1`` to force pool traffic
#: even at chaos-sized batches.
_DEFAULT_MIN_BATCH = 32

#: Target items per chunk; the pool never splits finer than this (fewer,
#: larger chunks amortize pickling) nor wider than the worker count.
_DEFAULT_CHUNK_ITEMS = 48


def unwrap_kernel(inner: object) -> object:
    """Pickle helper: a pooled wrapper unpickles as its inner kernel."""
    return inner


class WorkerPool:
    """A process pool executing chunked crypto kernels.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` keeps everything inline (no
        subprocesses, no serialization) — the baseline the speedup curve
        is measured against.
    min_batch:
        Smallest batch worth offloading; smaller calls run inline.
    chunk_items:
        Target items per chunk (see module docstring).

    The pool is key-agnostic: each chunk carries the key material that
    parameterizes its kernel, and workers cache kernels per material.
    One pool therefore serves any number of keychains (partitions,
    reseeded chaos episodes) for its whole lifetime.
    """

    def __init__(self, workers: int, min_batch: int = _DEFAULT_MIN_BATCH,
                 chunk_items: int = _DEFAULT_CHUNK_ITEMS) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if min_batch < 1 or chunk_items < 1:
            raise ValueError("min_batch and chunk_items must be positive")
        self.workers = workers
        self.min_batch = min_batch
        self.chunk_items = chunk_items
        self._executor: ProcessPoolExecutor | None = None
        if workers > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0])
            self._executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx, initializer=init_worker)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def offloads(self, items: int) -> bool:
        """Whether a batch of ``items`` goes to the pool or stays inline."""
        return self._executor is not None and items >= self.min_batch

    def run(self, kind: str, material: tuple[bytes, ...],
            frames: list[bytes]) -> list[bytes]:
        """Execute ``frames`` through the workers; results in input order."""
        executor = self._executor
        if executor is None:
            raise RuntimeError("single-worker pool has no executor; "
                               "callers must check offloads() first")
        chunks = max(1, min(self.workers,
                            (len(frames) + self.chunk_items - 1)
                            // self.chunk_items))
        per_chunk = (len(frames) + chunks - 1) // chunks
        observing = OBS.enabled
        if observing:
            start = time.perf_counter()
        pending: list[tuple[Future[bytes], float, int]] = []
        out_bytes = 0
        for lo in range(0, len(frames), per_chunk):
            payload = pack_frames(frames[lo: lo + per_chunk])
            out_bytes += len(payload)
            pending.append((executor.submit(run_chunk, kind, material,
                                            payload),
                            time.perf_counter() if observing else 0.0,
                            len(payload)))
        if observing:
            labels = {"workers": str(self.workers)}
            reg = OBS.registry
            reg.gauge("parallel.pool.queue.depth", **labels).set(len(pending))
            wait_hist = reg.histogram("parallel.chunk.wait.seconds", **labels)
        results: list[bytes] = []
        in_bytes = 0
        for future, submitted, _ in pending:
            payload = future.result()
            in_bytes += len(payload)
            if observing:
                wait_hist.observe(time.perf_counter() - submitted)
            results.extend(unpack_frames(payload))
        if observing:
            reg.gauge("parallel.pool.queue.depth", **labels).set(0)
            reg.counter("parallel.chunks.total", **labels).inc(len(pending))
            reg.counter("parallel.items.total", **labels).inc(len(frames))
            reg.counter("parallel.serialized.bytes.total", dir="out",
                        **labels).inc(out_bytes)
            reg.counter("parallel.serialized.bytes.total", dir="in",
                        **labels).inc(in_bytes)
            OBS.observe_kernel("pooled." + kind,
                               time.perf_counter() - start, len(frames))
        return results

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class PooledPrf:
    """Drop-in :class:`~repro.crypto.prf.Prf` running batches on a pool."""

    __slots__ = ("_inner", "_pool", "_material")

    def __init__(self, inner: Prf, pool: WorkerPool) -> None:
        self._inner = inner
        self._pool = pool
        self._material = (inner.__getstate__(),)

    @property
    def inner(self) -> Prf:
        return self._inner

    def derive(self, key: str, timestamp: int) -> str:
        return self._inner.derive(key, timestamp)

    def derive_bytes(self, data: bytes) -> bytes:
        return self._inner.derive_bytes(data)

    def derive_many(self, pairs: Iterable[tuple[str, int]]) -> list[str]:
        items = list(pairs)
        if not self._pool.offloads(len(items)):
            return self._inner.derive_many(items)
        frames = [
            key.encode("utf-8") + b"\x00" + str(int(timestamp)).encode()
            for key, timestamp in items
        ]
        return [frame.decode("ascii")
                for frame in self._pool.run("derive", self._material, frames)]

    def __reduce__(self):
        # Checkpoints must not capture the pool (process handles do not
        # pickle); the inner kernel is behaviourally identical.
        return (unwrap_kernel, (self._inner,))


class PooledCipher:
    """Drop-in :class:`AuthenticatedCipher` running batches on a pool."""

    __slots__ = ("_inner", "_pool", "_material")

    def __init__(self, inner: AuthenticatedCipher, pool: WorkerPool) -> None:
        self._inner = inner
        self._pool = pool
        enc_key, mac_key, _ = inner.__getstate__()
        self._material = (b"aead", enc_key, mac_key)

    @property
    def inner(self) -> AuthenticatedCipher:
        return self._inner

    def encrypt(self, plaintext: bytes) -> bytes:
        return self._inner.encrypt(plaintext)

    def decrypt(self, blob: bytes) -> bytes:
        return self._inner.decrypt(blob)

    def ciphertext_overhead(self) -> int:
        return self._inner.ciphertext_overhead()

    def encrypt_many(self, plaintexts: Iterable[bytes]) -> list[bytes]:
        items = list(plaintexts)
        if not self._pool.offloads(len(items)):
            return self._inner.encrypt_many(items)
        # Nonces are drawn serially, in input order, from the inner
        # cipher's rng: the proxy rng stream (and hence the adversary
        # trace) is draw-for-draw identical to inline execution.
        nonces = self._inner.draw_nonces(len(items))
        frames = [nonce + plaintext
                  for nonce, plaintext in zip(nonces, items)]
        return self._pool.run("encrypt", self._material, frames)

    def decrypt_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        items = list(blobs)
        if not self._pool.offloads(len(items)):
            return self._inner.decrypt_many(items)
        return self._pool.run("decrypt", self._material, items)

    def __reduce__(self):
        return (unwrap_kernel, (self._inner,))


def attach_pool(proxy: object, pool: WorkerPool) -> None:
    """Route ``proxy``'s batched crypto through ``pool`` (idempotent).

    Re-attaching after a checkpoint restore (which reduces the wrappers
    back to plain kernels) or with a different pool replaces the wrapper
    but keeps the same inner kernel, so behaviour never changes.
    """
    chain: KeyChain = proxy.keychain  # type: ignore[attr-defined]
    prf = chain.prf
    if isinstance(prf, PooledPrf):
        prf = prf.inner
    cipher = chain.cipher
    if isinstance(cipher, PooledCipher):
        cipher = cipher.inner
    chain.prf = PooledPrf(prf, pool)  # type: ignore[assignment]
    chain.cipher = PooledCipher(cipher, pool)  # type: ignore[assignment]


def detach_pool(proxy: object) -> None:
    """Restore ``proxy``'s plain kernels (inverse of :func:`attach_pool`)."""
    chain: KeyChain = proxy.keychain  # type: ignore[attr-defined]
    if isinstance(chain.prf, PooledPrf):
        chain.prf = chain.prf.inner
    if isinstance(chain.cipher, PooledCipher):
        chain.cipher = chain.cipher.inner
