"""Worker-pool round execution engine (coordinator side).

A Waffle round has two kinds of work (DESIGN.md §10, and the mechanism
:mod:`repro.sim.pipeline` models): *assembly* — dedup, fake-query
sampling, treap/LRU updates — which mutates shared proxy state and must
stay on the coordinating thread, and the *embarrassingly parallel* kernel
work — PRF id derivation and AEAD encrypt/decrypt over the B+D batch —
which is a pure function of its inputs.  :class:`WorkerPool` spreads the
latter across ``concurrent.futures`` process workers; :class:`PooledPrf`
and :class:`PooledCipher` wrap the real kernels with the exact same call
surface, so an unmodified :class:`~repro.core.proxy.WaffleProxy` runs
pooled via :func:`attach_pool` with zero protocol changes.

Determinism contract (pinned by ``tests/test_parallel.py`` and the chaos
determinism suite): pooled output is byte-identical to inline execution
for every worker count.  Two mechanisms guarantee it:

* PRF derivation and AEAD decryption are deterministic functions;
* AEAD *encryption* nonces are drawn serially on the coordinator, in
  input order, from the inner cipher's own rng —  workers only consume
  the nonce they are handed, so the proxy's rng stream advances
  draw-for-draw identically to inline execution.

Checkpoint compatibility: :mod:`repro.ha.checkpoint` pickles the proxy's
keychain.  The pooled wrappers reduce to their *inner* kernels on
pickle — a restored standby starts with plain kernels (byte-identical
behaviour) and the chaos runner re-attaches the pool after promotion.

Transport: chunks default to shared-memory segments (see
:mod:`repro.parallel.shm` — the coordinator packs frames into a pooled
segment, workers read views and write results into a response segment,
and only segment names cross the pipe), with the PR-5 pickle pipe kept
as ``transport="pipe"`` for apples-to-apples benchmarking.  Both
transports carry the crypto backend name in the chunk material, so
workers always rebuild the coordinator's (byte-identical) kernel
implementation.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, wait
from typing import Iterable, Sequence

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.keys import KeyChain
from repro.crypto.prf import Prf
from repro.obs import OBS
from repro.obs.delta import decode_delta, merge_delta
from repro.parallel.shm import SegmentPool
from repro.parallel.worker import (
    TELEMETRY_ALLOWANCE,
    init_worker,
    iter_frames,
    pack_frames,
    pack_frames_into,
    packed_size,
    run_chunk,
    run_chunk_shm,
    unpack_frames,
)

__all__ = ["PooledCipher", "PooledPrf", "WorkerPool", "attach_pool",
           "detach_pool", "unwrap_kernel"]

#: Below this many items a dispatch is not worth the serialization and
#: scheduling cost; the wrappers fall back to the inline kernel.  The
#: chaos determinism tests pass ``min_batch=1`` to force pool traffic
#: even at chaos-sized batches.
_DEFAULT_MIN_BATCH = 32

#: Target items per chunk; the pool never splits finer than this (fewer,
#: larger chunks amortize pickling) nor wider than the worker count.
_DEFAULT_CHUNK_ITEMS = 48


def unwrap_kernel(inner: object) -> object:
    """Pickle helper: a pooled wrapper unpickles as its inner kernel."""
    return inner


class WorkerPool:
    """A process pool executing chunked crypto kernels.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` keeps everything inline (no
        subprocesses, no serialization) — the baseline the speedup curve
        is measured against.
    min_batch:
        Smallest batch worth offloading; smaller calls run inline.
    chunk_items:
        Target items per chunk (see module docstring).
    transport:
        ``"shm"`` (default) moves chunks through pooled
        :mod:`multiprocessing.shared_memory` segments — one copy in,
        zero-copy worker reads, one copy out — with only segment names
        crossing the pipe.  ``"pipe"`` is the PR-5 pickle channel, kept
        as the comparison baseline the benchmark measures against.

    The pool is key-agnostic: each chunk carries the key material that
    parameterizes its kernel, and workers cache kernels per material.
    One pool therefore serves any number of keychains (partitions,
    reseeded chaos episodes) for its whole lifetime.
    """

    def __init__(self, workers: int, min_batch: int = _DEFAULT_MIN_BATCH,
                 chunk_items: int = _DEFAULT_CHUNK_ITEMS,
                 transport: str = "shm") -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if min_batch < 1 or chunk_items < 1:
            raise ValueError("min_batch and chunk_items must be positive")
        if transport not in ("shm", "pipe"):
            raise ValueError(f"unknown transport {transport!r}; "
                             "choose 'shm' or 'pipe'")
        self.workers = workers
        self.min_batch = min_batch
        self.chunk_items = chunk_items
        self.transport = transport
        self._executor: ProcessPoolExecutor | None = None
        self._segments: SegmentPool | None = None
        if workers > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0])
            self._executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx, initializer=init_worker)
            if transport == "shm":
                self._segments = SegmentPool(workers)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def offloads(self, items: int) -> bool:
        """Whether a batch of ``items`` goes to the pool or stays inline."""
        return self._executor is not None and items >= self.min_batch

    def run(self, kind: str, material: tuple[bytes, ...],
            frames: list) -> list[bytes]:
        """Execute ``frames`` through the workers; results in input order.

        A frame is bytes or a tuple of byte parts (packed contiguously);
        the encrypt path passes ``(nonce, plaintext)`` pairs so no
        concatenation happens on the coordinator.
        """
        executor = self._executor
        if executor is None:
            raise RuntimeError("single-worker pool has no executor; "
                               "callers must check offloads() first")
        chunks = max(1, min(self.workers,
                            (len(frames) + self.chunk_items - 1)
                            // self.chunk_items))
        per_chunk = (len(frames) + chunks - 1) // chunks
        observing = OBS.enabled
        if observing:
            start = time.perf_counter()
        if self._segments is not None:
            results, out_bytes, in_bytes, chunk_meta = self._run_shm(
                kind, material, frames, per_chunk, observing)
        else:
            results, out_bytes, in_bytes, chunk_meta = self._run_pipe(
                kind, material, frames, per_chunk, observing)
        if observing:
            labels = {"workers": str(self.workers)}
            reg = OBS.registry
            tracer = OBS.tracer
            wait_hist = reg.histogram("parallel.chunk.wait.seconds", **labels)
            # Each chunk becomes a span under the currently open phase
            # (implicit parent via the tracer's span stack); the worker's
            # piggybacked delta — metrics plus its own chunk span — then
            # merges under that span's id, extending the tree across the
            # process boundary.
            for elapsed, chunk_items, delta in chunk_meta:
                wait_hist.observe(elapsed)
                span_id = tracer.record_span("parallel.chunk", elapsed,
                                             kind=kind, items=chunk_items,
                                             **labels)
                if delta is not None:
                    merge_delta(reg, tracer, decode_delta(delta),
                                parent=span_id)
            reg.counter("parallel.chunks.total", **labels).inc(len(chunk_meta))
            reg.counter("parallel.items.total", **labels).inc(len(frames))
            reg.counter("parallel.serialized.bytes.total", dir="out",
                        **labels).inc(out_bytes)
            reg.counter("parallel.serialized.bytes.total", dir="in",
                        **labels).inc(in_bytes)
            OBS.observe_kernel("pooled." + kind,
                               time.perf_counter() - start, len(frames))
        return results

    def _run_pipe(self, kind: str, material: tuple[bytes, ...], frames: list,
                  per_chunk: int, observing: bool):
        """Pickle-pipe transport: one bytes payload per chunk, each way."""
        executor = self._executor
        assert executor is not None
        pending = []
        out_bytes = 0
        for lo in range(0, len(frames), per_chunk):
            chunk = frames[lo: lo + per_chunk]
            payload = pack_frames(chunk)
            out_bytes += len(payload)
            pending.append((executor.submit(run_chunk, kind, material,
                                            payload, observing),
                            time.perf_counter() if observing else 0.0,
                            len(chunk)))
        results: list[bytes] = []
        in_bytes = 0
        chunk_meta: list[tuple[float, int, bytes | None]] = []
        for future, submitted, items in pending:
            payload = future.result()
            in_bytes += len(payload)
            # Kernels map frames 1:1, so the first `items` frames are
            # data; a single trailing frame is the telemetry delta.
            out = unpack_frames(payload)
            results.extend(out[:items])
            if observing:
                delta = out[items] if len(out) > items else None
                chunk_meta.append(
                    (time.perf_counter() - submitted, items, delta))
        return results, out_bytes, in_bytes, chunk_meta

    def _run_shm(self, kind: str, material: tuple[bytes, ...], frames: list,
                 per_chunk: int, observing: bool):
        """Shared-memory transport: frames cross in pooled segments.

        The request is packed straight into a segment (one copy); the
        worker reads views and packs its output into a response segment;
        only names and lengths cross the pipe.  Segments return to the
        free-list once their chunk's results are copied out — after a
        failure the cleanup waits for every outstanding chunk first, so
        a still-running worker can never scribble on a reused segment.
        """
        executor = self._executor
        segments = self._segments
        assert executor is not None and segments is not None
        pending = []
        out_bytes = 0
        in_bytes = 0
        chunk_meta: list[tuple[float, int, bytes | None]] = []
        results: list[bytes] = []
        try:
            for lo in range(0, len(frames), per_chunk):
                chunk = frames[lo: lo + per_chunk]
                request_len = packed_size(chunk)
                request = segments.acquire(request_len)
                pack_frames_into(chunk, request.buf)
                out_bytes += request_len
                # Sized for every kind's worst case: derive emits 36
                # bytes per frame from arbitrarily small inputs, encrypt
                # adds nonce+tag (48) per frame, decrypt only shrinks.
                # The telemetry allowance leaves room for the piggyback
                # delta frame; the worker drops the delta (never fails
                # the chunk) if it would not fit.
                response_cap = request_len + 48 * len(chunk) + 64
                if observing:
                    response_cap += TELEMETRY_ALLOWANCE
                response = segments.acquire(response_cap)
                pending.append((
                    executor.submit(run_chunk_shm, kind, material,
                                    request.name, request_len,
                                    response.name, response_cap, observing),
                    time.perf_counter() if observing else 0.0,
                    len(chunk), request, response))
            for future, submitted, items, _, response in pending:
                response_len = future.result()
                in_bytes += response_len
                out = [bytes(frame)
                       for frame in iter_frames(response.buf[:response_len])]
                # Kernels map frames 1:1, so the first `items` frames
                # are data; a single trailing frame is the telemetry
                # delta.
                results.extend(out[:items])
                if observing:
                    delta = out[items] if len(out) > items else None
                    chunk_meta.append(
                        (time.perf_counter() - submitted, items, delta))
        finally:
            # On the success path every future is already done; on
            # failure, block until in-flight workers stop touching the
            # segments before recycling them.
            if pending:
                wait([entry[0] for entry in pending])
            for _, _, _, request, response in pending:
                segments.release(request)
                segments.release(response)
        return results, out_bytes, in_bytes, chunk_meta

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down workers, then unlink every shared-memory segment.

        Ordering matters: workers must exit (or be known dead) before
        the segments they might map by name are unlinked.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._segments is not None:
            self._segments.close()
            self._segments = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class PooledPrf:
    """Drop-in :class:`~repro.crypto.prf.Prf` running batches on a pool."""

    __slots__ = ("_inner", "_pool", "_material")

    def __init__(self, inner: Prf, pool: WorkerPool) -> None:
        self._inner = inner
        self._pool = pool
        # Material carries the backend name so workers rebuild the same
        # (byte-identical) kernel implementation the coordinator runs.
        self._material = (b"prf", inner.backend_name.encode("ascii"),
                         inner.__getstate__())

    @property
    def inner(self) -> Prf:
        return self._inner

    def derive(self, key: str, timestamp: int) -> str:
        return self._inner.derive(key, timestamp)

    def derive_bytes(self, data: bytes) -> bytes:
        return self._inner.derive_bytes(data)

    def derive_many(self, pairs: Iterable[tuple[str, int]]) -> list[str]:
        items = list(pairs)
        if not self._pool.offloads(len(items)):
            return self._inner.derive_many(items)
        frames = [
            key.encode("utf-8") + b"\x00" + str(int(timestamp)).encode()
            for key, timestamp in items
        ]
        return [frame.decode("ascii")
                for frame in self._pool.run("derive", self._material, frames)]

    def __reduce__(self):
        # Checkpoints must not capture the pool (process handles do not
        # pickle); the inner kernel is behaviourally identical.
        return (unwrap_kernel, (self._inner,))


class PooledCipher:
    """Drop-in :class:`AuthenticatedCipher` running batches on a pool."""

    __slots__ = ("_inner", "_pool", "_material")

    def __init__(self, inner: AuthenticatedCipher, pool: WorkerPool) -> None:
        self._inner = inner
        self._pool = pool
        enc_key, mac_key, _ = inner.__getstate__()
        self._material = (b"aead", inner.backend_name.encode("ascii"),
                         enc_key, mac_key)

    @property
    def inner(self) -> AuthenticatedCipher:
        return self._inner

    def encrypt(self, plaintext: bytes) -> bytes:
        return self._inner.encrypt(plaintext)

    def decrypt(self, blob: bytes) -> bytes:
        return self._inner.decrypt(blob)

    def ciphertext_overhead(self) -> int:
        return self._inner.ciphertext_overhead()

    def encrypt_many(self, plaintexts: Iterable[bytes]) -> list[bytes]:
        items = list(plaintexts)
        if not self._pool.offloads(len(items)):
            return self._inner.encrypt_many(items)
        # Nonces are drawn serially, in input order, from the inner
        # cipher's rng: the proxy rng stream (and hence the adversary
        # trace) is draw-for-draw identical to inline execution.
        nonces = self._inner.draw_nonces(len(items))
        # (nonce, plaintext) part-tuples: the transport packs the pair
        # contiguously, so no per-item concatenation happens here.
        frames = list(zip(nonces, items))
        return self._pool.run("encrypt", self._material, frames)

    def decrypt_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        items = list(blobs)
        if not self._pool.offloads(len(items)):
            return self._inner.decrypt_many(items)
        return self._pool.run("decrypt", self._material, items)

    def __reduce__(self):
        return (unwrap_kernel, (self._inner,))


def attach_pool(proxy: object, pool: WorkerPool) -> None:
    """Route ``proxy``'s batched crypto through ``pool`` (idempotent).

    Re-attaching after a checkpoint restore (which reduces the wrappers
    back to plain kernels) or with a different pool replaces the wrapper
    but keeps the same inner kernel, so behaviour never changes.
    """
    chain: KeyChain = proxy.keychain  # type: ignore[attr-defined]
    prf = chain.prf
    if isinstance(prf, PooledPrf):
        prf = prf.inner
    cipher = chain.cipher
    if isinstance(cipher, PooledCipher):
        cipher = cipher.inner
    chain.prf = PooledPrf(prf, pool)  # type: ignore[assignment]
    chain.cipher = PooledCipher(cipher, pool)  # type: ignore[assignment]


def detach_pool(proxy: object) -> None:
    """Restore ``proxy``'s plain kernels (inverse of :func:`attach_pool`)."""
    chain: KeyChain = proxy.keychain  # type: ignore[attr-defined]
    if isinstance(chain.prf, PooledPrf):
        chain.prf = chain.prf.inner
    if isinstance(chain.cipher, PooledCipher):
        chain.cipher = chain.cipher.inner
