"""Process-worker side of the parallel round engine.

The coordinator ships each chunk of kernel work as length-prefixed
frames plus the key material (backend name + keys) that parameterizes
the kernel.  Two transports share this module's frame codec:

* **shared memory** (the default): frames live in a
  ``multiprocessing.shared_memory`` segment owned by the coordinator's
  :class:`~repro.parallel.shm.SegmentPool`; :func:`run_chunk_shm` maps
  the segment and iterates zero-copy ``memoryview`` frames, writing its
  output frames into a response segment.  Only segment names and two
  integers cross the pipe.
* **pipe** (fallback, and the comparison baseline the benchmark keeps
  honest): one contiguous bytes payload per chunk through the
  ``multiprocessing`` pickle channel — :func:`run_chunk`.

The codec rejects malformed input: a payload that ends inside a 4-byte
length prefix, or a frame that declares more bytes than follow, raises
:class:`~repro.errors.FrameError` instead of silently misparsing (a
short frame would otherwise hand the kernels misaligned crypto inputs).

Workers are stateless apart from two per-process caches — kernels keyed
by raw key material, attached segments keyed by name — so one pool
serves any number of keychains (each partition of a
:class:`~repro.scaleout.partitioned.PartitionedWaffle` carries its own
keys, and every chaos episode reseeds) without respawn.

Everything here is a pure function of its inputs: PRF derivation is
deterministic, AEAD encryption receives its nonces from the coordinator
(drawn serially, in input order, from the proxy cipher's own rng), and
every crypto backend is byte-identical — so pooled output matches
inline execution exactly, which the determinism tests pin across worker
counts and backends.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.backend import make_cipher, make_prf
from repro.crypto.prf import Prf
from repro.errors import FrameError
from repro.obs.delta import TelemetryBuffer, encode_delta

__all__ = [
    "NONCE_LEN",
    "TELEMETRY_ALLOWANCE",
    "init_worker",
    "iter_frames",
    "pack_frames",
    "pack_frames_into",
    "packed_size",
    "run_chunk",
    "run_chunk_shm",
    "unpack_frames",
]

NONCE_LEN = 16

#: Per-process kernel cache: key material -> constructed kernel.  Bounded
#: in practice by the number of distinct keychains the coordinator uses.
_KERNELS: dict[tuple[bytes, ...], object] = {}

#: Per-process attached-segment cache: name -> mapped segment.  The
#: coordinator's free-list reuses a handful of segment names for a
#: pool's whole lifetime, so attaches happen once, not per chunk.
_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_SEGMENTS_MAX = 64

#: Per-process telemetry buffer (single-threaded, hence lock-free).  The
#: coordinator decides per chunk — from its own ``OBS.enabled`` at
#: dispatch time — whether the worker fills and drains it; the worker
#: never consults the (forced-off) process-wide OBS handle.
_TELEMETRY = TelemetryBuffer()

#: Extra response-segment headroom the coordinator reserves for one
#: telemetry piggyback frame when observing (a drained per-chunk delta
#: is a few hundred bytes of compact JSON).
TELEMETRY_ALLOWANCE = 4096

# A frame is bytes (or a view) — or a tuple of byte parts packed
# contiguously, which lets the coordinator pass (nonce, plaintext)
# pairs without concatenating on the hot path.
def packed_size(frames: list) -> int:
    """Bytes :func:`pack_frames_into` will write for ``frames``."""
    total = 0
    for frame in frames:
        if isinstance(frame, tuple):
            total += 4 + sum(len(part) for part in frame)
        else:
            total += 4 + len(frame)
    return total


def pack_frames(frames: list) -> bytes:
    """Concatenate ``frames`` into one length-prefixed payload."""
    parts: list = []
    append = parts.append
    for frame in frames:
        if isinstance(frame, tuple):
            append(sum(len(part) for part in frame).to_bytes(4, "big"))
            parts.extend(frame)
        else:
            append(len(frame).to_bytes(4, "big"))
            append(frame)
    return b"".join(parts)


def pack_frames_into(frames: list, buf: memoryview) -> int:
    """Pack ``frames`` into ``buf`` in place; returns bytes written.

    The shared-memory analogue of :func:`pack_frames`: slice assignment
    into the mapped segment is the single copy the request path makes.
    The caller sizes ``buf`` via :func:`packed_size`.
    """
    offset = 0
    for frame in frames:
        if isinstance(frame, tuple):
            length = sum(len(part) for part in frame)
            buf[offset: offset + 4] = length.to_bytes(4, "big")
            offset += 4
            for part in frame:
                step = len(part)
                buf[offset: offset + step] = part
                offset += step
        else:
            length = len(frame)
            buf[offset: offset + 4] = length.to_bytes(4, "big")
            offset += 4
            buf[offset: offset + length] = frame
            offset += length
    return offset


def iter_frames(view: memoryview) -> Iterator[memoryview]:
    """Yield zero-copy frame views from a packed payload.

    Validates as it goes: truncation — a partial length prefix, or a
    frame declaring more bytes than remain — raises
    :class:`~repro.errors.FrameError` rather than yielding garbage.
    """
    offset = 0
    end = len(view)
    while offset < end:
        if end - offset < 4:
            raise FrameError(
                f"payload ends inside a frame length prefix at byte "
                f"{offset}: {end - offset} of 4 prefix bytes present")
        length = int.from_bytes(view[offset: offset + 4], "big")
        offset += 4
        if end - offset < length:
            raise FrameError(
                f"frame at byte {offset - 4} declares {length} bytes "
                f"but only {end - offset} remain")
        yield view[offset: offset + length]
        offset += length


def unpack_frames(payload: bytes) -> list[bytes]:
    """Inverse of :func:`pack_frames`; raises on truncated payloads."""
    return [bytes(frame) for frame in iter_frames(memoryview(payload))]


def init_worker() -> None:
    """Pool initializer run once per worker process.

    Forked workers inherit the coordinator's observability switch; they
    must not record (their registries are invisible copies) nor share the
    parent's trace file descriptor, so the child's handle is forced off.
    Workers also start with empty kernel, segment and telemetry state —
    fork may have copied the parent's, and a stale inherited mapping
    must not shadow a fresh attach (nor inherited telemetry ship as a
    first chunk's delta).
    """
    from repro.obs import OBS

    OBS.enabled = False
    _KERNELS.clear()
    _SEGMENTS.clear()
    _TELEMETRY.clear()


def _prf(material: tuple[bytes, ...]) -> Prf:
    kernel = _KERNELS.get(material)
    if kernel is None:
        kernel = _KERNELS[material] = make_prf(
            material[1].decode("ascii"), material[2])
    return kernel  # type: ignore[return-value]


def _cipher(material: tuple[bytes, ...]) -> AuthenticatedCipher:
    kernel = _KERNELS.get(material)
    if kernel is None:
        kernel = _KERNELS[material] = make_cipher(
            material[1].decode("ascii"), material[2], material[3])
    return kernel  # type: ignore[return-value]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map a coordinator-owned segment, caching the mapping.

    Python 3.11 registers even plain attaches with the process's
    ``resource_tracker`` (bpo-38119), and ownership must stay with the
    coordinator alone.  Under ``fork`` the worker *shares* the
    coordinator's tracker, where the attach-side register is an
    idempotent set-add — unregistering here would cancel the
    coordinator's own registration, so the attach is left alone.  Under
    ``spawn`` the worker has a private tracker that would unlink (and
    warn about) the coordinator's segments at worker exit, so there the
    spurious registration is removed.
    """
    segment = _SEGMENTS.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        if multiprocessing.get_start_method() != "fork":
            try:  # pragma: no cover - fork is available on test hosts
                resource_tracker.unregister(segment._name,  # noqa: SLF001
                                            "shared_memory")
            except Exception:
                pass
        if len(_SEGMENTS) >= _SEGMENTS_MAX:
            stale = next(iter(_SEGMENTS))
            try:
                _SEGMENTS.pop(stale).close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        _SEGMENTS[name] = segment
    return segment


def _compute(kind: str, material: tuple[bytes, ...],
             frames: list) -> list[bytes]:
    """Run one chunk's kernel work over ``frames`` (bytes or views).

    ``kind`` selects the kernel:

    * ``"derive"`` — frames are raw PRF messages (the coordinator encodes
      ``key || \\x00 || str(ts)`` exactly as :meth:`Prf.derive` does);
      output frames are the 32-char hex storage ids as ASCII.
    * ``"encrypt"`` — frames are ``nonce || plaintext`` with the nonce
      drawn by the coordinator; output frames are AEAD blobs.
    * ``"decrypt"`` — frames are AEAD blobs; output frames are
      plaintexts.  A tampered blob raises, and the exception propagates
      to the coordinator through the pool.
    """
    if kind == "derive":
        derive_bytes = _prf(material).derive_bytes
        return [derive_bytes(frame).hex()[:32].encode("ascii")
                for frame in frames]
    if kind == "encrypt":
        cipher = _cipher(material)
        return cipher.encrypt_with_nonces(
            [frame[NONCE_LEN:] for frame in frames],
            [bytes(frame[:NONCE_LEN]) for frame in frames])
    if kind == "decrypt":
        return _cipher(material).decrypt_many(frames)
    raise ValueError(f"unknown chunk kind {kind!r}")


def _drain_telemetry(kind: str, items: int, total_s: float,
                     compute_s: float) -> bytes:
    """Record one chunk's timings and drain the buffer as a wire delta.

    Metric names are final (``parallel.worker.*``); the coordinator's
    merge only adds the ``worker`` label.  The drain resets the buffer,
    so each observation ships in exactly one delta — a chunk whose
    future never resolves (killed worker) loses its delta instead of
    replaying it.
    """
    buf = _TELEMETRY
    buf.observe("parallel.worker.chunk.seconds", total_s, kind=kind)
    buf.observe("parallel.worker.compute.seconds", compute_s, kind=kind)
    buf.observe("parallel.worker.overhead.seconds",
                max(0.0, total_s - compute_s), kind=kind)
    buf.inc("parallel.worker.chunks.total", 1, kind=kind)
    buf.inc("parallel.worker.items.total", items, kind=kind)
    buf.span("parallel.worker.chunk", total_s, kind=kind, items=items,
             compute=compute_s)
    return encode_delta(buf.drain(), str(os.getpid()))


def run_chunk(kind: str, material: tuple[bytes, ...], payload: bytes,
              telemetry: bool = False) -> bytes:
    """Pipe-transport chunk: packed payload in, packed payload out.

    With ``telemetry`` (the coordinator's ``OBS.enabled`` at dispatch
    time) the response carries one extra trailing frame — the worker's
    drained metric/span delta.  Every kind maps input frames to output
    frames 1:1, so the coordinator splits data from telemetry by count.
    """
    if not telemetry:
        return pack_frames(_compute(kind, material, unpack_frames(payload)))
    start = time.perf_counter()
    frames = unpack_frames(payload)
    compute_start = time.perf_counter()
    out = _compute(kind, material, frames)
    compute_s = time.perf_counter() - compute_start
    total_s = time.perf_counter() - start
    out.append(_drain_telemetry(kind, len(frames), total_s, compute_s))
    return pack_frames(out)


def run_chunk_shm(kind: str, material: tuple[bytes, ...],
                  request_name: str, request_len: int,
                  response_name: str, response_cap: int,
                  telemetry: bool = False) -> int:
    """Shared-memory chunk: reads frame *views*, writes the response.

    Returns the packed length of the response, the only payload that
    crosses the pipe.  ``response_cap`` is the coordinator's sizing of
    the response segment; the worker re-checks it so a sizing bug
    surfaces as an explicit error, not a silent out-of-bounds write.
    With ``telemetry``, one extra trailing frame carries the worker's
    drained delta — appended only if it fits the remaining capacity, so
    telemetry can degrade (drop) but never fail a chunk.
    """
    start = time.perf_counter() if telemetry else 0.0
    request = _attach_segment(request_name)
    frames = list(iter_frames(request.buf[:request_len]))
    compute_start = time.perf_counter() if telemetry else 0.0
    out = _compute(kind, material, frames)
    needed = packed_size(out)
    if needed > response_cap:
        raise FrameError(
            f"response needs {needed} bytes but the coordinator sized "
            f"the segment for {response_cap}")
    if telemetry:
        now = time.perf_counter()
        delta = _drain_telemetry(kind, len(frames), now - start,
                                 now - compute_start)
        if needed + 4 + len(delta) <= response_cap:
            out.append(delta)
    response = _attach_segment(response_name)
    return pack_frames_into(out, response.buf)
