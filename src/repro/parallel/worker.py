"""Process-worker side of the parallel round engine.

The coordinator ships each chunk of kernel work as one contiguous bytes
payload (length-prefixed frames) plus the key material that parameterizes
the kernel.  Shipping *one* bytes object per chunk matters: pickling a
list of thousands of small strings/tuples costs more than the crypto it
feeds, while a single bytes payload is a near-memcpy through the
``multiprocessing`` pipe.

Workers are stateless apart from a per-process kernel cache keyed by the
raw key material, so one pool serves any number of keychains (each
partition of a :class:`~repro.scaleout.partitioned.PartitionedWaffle`
carries its own keys, and every chaos episode reseeds) without respawn.

Everything here is a pure function of its inputs: PRF derivation is
deterministic, and AEAD encryption receives its nonces from the
coordinator (drawn serially, in input order, from the proxy cipher's own
rng) — so pooled output is byte-identical to inline execution, which the
determinism tests pin across worker counts.
"""

from __future__ import annotations

from repro.crypto.aead import AuthenticatedCipher
from repro.crypto.prf import Prf

__all__ = [
    "NONCE_LEN",
    "init_worker",
    "pack_frames",
    "run_chunk",
    "unpack_frames",
]

NONCE_LEN = 16

#: Per-process kernel cache: key material -> constructed kernel.  Bounded
#: in practice by the number of distinct keychains the coordinator uses.
_KERNELS: dict[tuple[bytes, ...], object] = {}


def pack_frames(frames: list[bytes]) -> bytes:
    """Concatenate ``frames`` into one length-prefixed payload."""
    parts = []
    append = parts.append
    for frame in frames:
        append(len(frame).to_bytes(4, "big"))
        append(frame)
    return b"".join(parts)


def unpack_frames(payload: bytes) -> list[bytes]:
    """Inverse of :func:`pack_frames`."""
    frames = []
    append = frames.append
    offset = 0
    end = len(payload)
    while offset < end:
        length = int.from_bytes(payload[offset: offset + 4], "big")
        offset += 4
        append(payload[offset: offset + length])
        offset += length
    return frames


def init_worker() -> None:
    """Pool initializer run once per worker process.

    Forked workers inherit the coordinator's observability switch; they
    must not record (their registries are invisible copies) nor share the
    parent's trace file descriptor, so the child's handle is forced off.
    Workers also start with an empty kernel cache — fork may have copied
    the parent's, which is harmless but stale entries waste memory.
    """
    from repro.obs import OBS

    OBS.enabled = False
    _KERNELS.clear()


def _prf(material: tuple[bytes, ...]) -> Prf:
    kernel = _KERNELS.get(material)
    if kernel is None:
        kernel = _KERNELS[material] = Prf(material[0])
    return kernel  # type: ignore[return-value]


def _cipher(material: tuple[bytes, ...]) -> AuthenticatedCipher:
    kernel = _KERNELS.get(material)
    if kernel is None:
        kernel = _KERNELS[material] = AuthenticatedCipher(
            enc_key=material[1], mac_key=material[2])
    return kernel  # type: ignore[return-value]


def run_chunk(kind: str, material: tuple[bytes, ...], payload: bytes) -> bytes:
    """Execute one chunk of kernel work; returns a packed frame payload.

    ``kind`` selects the kernel:

    * ``"derive"`` — frames are raw PRF messages (the coordinator encodes
      ``key || \\x00 || str(ts)`` exactly as :meth:`Prf.derive` does);
      output frames are the 32-char hex storage ids as ASCII.
    * ``"encrypt"`` — frames are ``nonce || plaintext`` with the nonce
      drawn by the coordinator; output frames are AEAD blobs.
    * ``"decrypt"`` — frames are AEAD blobs; output frames are
      plaintexts.  A tampered blob raises, and the exception propagates
      to the coordinator through the pool.
    """
    frames = unpack_frames(payload)
    if kind == "derive":
        derive_bytes = _prf(material).derive_bytes
        out = [derive_bytes(frame).hex()[:32].encode("ascii")
               for frame in frames]
    elif kind == "encrypt":
        cipher = _cipher(material)
        out = cipher.encrypt_with_nonces(
            [frame[NONCE_LEN:] for frame in frames],
            [frame[:NONCE_LEN] for frame in frames])
    elif kind == "decrypt":
        out = _cipher(material).decrypt_many(frames)
    else:
        raise ValueError(f"unknown chunk kind {kind!r}")
    return pack_frames(out)
