"""Structured tracing: spans and events as JSON-lines records.

A *span* is a named, timed region (``round``, ``phase.decrypt``,
``ha.checkpoint``); an *event* is a point observation (one adversary-
visible storage access, a fail-over).  Both carry free-form attributes
and serialize to one JSON object per line, so a trace file replays with
``json.loads`` per line and nothing else.

Spans form a **tree**: every span record carries a process-unique
``span_id`` and the ``parent`` id of the span that was open on the same
thread when it completed (``None`` at the root).  Sequential hot paths
open a region with :meth:`Tracer.open_span`, which pushes it on a
per-thread stack, and close it with :meth:`Tracer.close_span`;
:meth:`Tracer.record_span` (the one-shot form) parents itself under the
innermost open span automatically.  The round engine uses this to nest
``round -> phase.* -> parallel.chunk -> parallel.worker.chunk``, which
:mod:`repro.obs.profile` re-assembles into a flamegraph-style report.
The stack is thread-local because pipelined execution overlaps rounds
across threads.

The tracer buffers records in memory (bounded), optionally streams them
to a JSONL file, and fans every record out to registered subscribers —
that last hook is how the live :class:`~repro.analysis.monitor.AlphaMonitor`
consumes the storage-access stream without the storage layer knowing the
monitor exists.

Trace neutrality: emitting a record reads ``time.perf_counter`` and
appends to lists; it never draws randomness and never touches system
state, so an instrumented run is byte-identical to an uninstrumented one
on the adversary-visible channel (enforced by
:func:`repro.sim.perf.compare_obs_traces`).
"""

from __future__ import annotations

import json
import math
import threading
import time

__all__ = ["NULL_SPAN", "Span", "Tracer", "jsonl_line"]

#: Default in-memory record cap; oldest records are dropped beyond it so
#: week-long runs cannot exhaust memory (file sinks keep everything).
_DEFAULT_MAX_RECORDS = 200_000


def _jsonable(value):
    """Replace non-finite floats with their string spellings, recursively.

    ``json.dumps`` emits bare ``Infinity``/``NaN`` for non-finite floats
    — tokens no JSON parser is required to accept, so a single
    zero-width-window ``inf`` from the throughput meter would poison a
    whole trace file.  The exporters encode them as ``"+Inf"``,
    ``"-Inf"`` and ``"NaN"`` strings instead (matching the Prometheus
    text spelling), keeping every line ``json.loads``-clean.
    """
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return value
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def jsonl_line(record: dict) -> str:
    """Serialize one trace record as a strictly-valid JSON line."""
    return json.dumps(_jsonable(record), default=str, allow_nan=False)


class _NullSpan:
    """Shared no-op span returned whenever observability is disabled.

    A single module-level instance, so the disabled path allocates
    nothing: ``with OBS.span(...)`` costs one attribute check and two
    no-op calls.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live timed region; use as a context manager.

    ``set(**attrs)`` attaches attributes discovered mid-region (batch
    composition, byte counts).  The record is emitted at ``__exit__``.
    """

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer.record_span(self.name, duration, **self.attrs)
        return False


class Tracer:
    """Collects span/event records; buffers, streams and fans out.

    Parameters
    ----------
    path:
        Optional JSONL file; records append as they are emitted.
    buffer:
        Keep records in memory (:attr:`records`); disable for unbounded
        file-only runs.
    max_records:
        In-memory cap; the buffer drops its oldest half when full.
    """

    __slots__ = ("records", "dropped", "_path", "_file", "_subscribers",
                 "_buffer", "_max_records", "_seq", "_next_span_id",
                 "_local")

    def __init__(self, path=None, buffer: bool = True,
                 max_records: int = _DEFAULT_MAX_RECORDS) -> None:
        self.records: list[dict] = []
        self.dropped = 0
        self._path = path
        self._file = open(path, "a", encoding="utf-8") if path else None
        self._subscribers: list = []
        self._buffer = buffer
        self._max_records = max_records
        self._seq = 0
        self._next_span_id = 1
        self._local = threading.local()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        record["seq"] = self._seq
        self._seq += 1
        if self._buffer:
            self.records.append(record)
            if len(self.records) > self._max_records:
                keep = self._max_records // 2
                self.dropped += len(self.records) - keep
                self.records = self.records[-keep:]
        if self._file is not None:
            self._file.write(jsonl_line(record) + "\n")
        for subscriber in self._subscribers:
            subscriber(record)

    def _stack(self) -> list:
        """This thread's open-span stack of ``(span_id, name)`` pairs."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _alloc_span_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def open_span(self, name: str, root: bool = False) -> int:
        """Open a nested region; returns a token for :meth:`close_span`.

        Nothing is emitted until the span closes — only the (thread-
        local) stack is touched, so an open region costs one append.
        ``root=True`` clears this thread's stack first: round engines use
        it at round entry so a span left open by a mid-round exception
        (chaos fault injection) cannot corrupt later rounds' parentage.
        """
        stack = self._stack()
        if root:
            stack.clear()
        span_id = self._alloc_span_id()
        stack.append((span_id, name))
        return span_id

    def close_span(self, token: int, seconds: float, **attrs) -> str:
        """Close an open region and emit its record; returns its name.

        Pops the stack down to (and including) ``token``, tolerating
        spans orphaned by exceptions; the record's ``parent`` is the
        span left innermost, ``None`` at the root.
        """
        stack = self._stack()
        name = ""
        while stack:
            span_id, span_name = stack.pop()
            if span_id == token:
                name = span_name
                break
        parent = stack[-1][0] if stack else None
        self.emit({"kind": "span", "name": name, "dur": seconds,
                   "span_id": token, "parent": parent, "attrs": attrs})
        return name

    def record_span(self, name: str, seconds: float,
                    parent: int | None = None, **attrs) -> int:
        """Emit a completed span with an explicit duration; returns its id.

        Hot paths that already hold ``perf_counter`` boundaries use this
        directly and skip the context-manager object entirely.  The span
        parents under this thread's innermost open span unless ``parent``
        names one explicitly (the engine uses that to hang worker-side
        chunk spans under the coordinator-side chunk span).
        """
        span_id = self._alloc_span_id()
        if parent is None:
            stack = self._stack()
            parent = stack[-1][0] if stack else None
        self.emit({"kind": "span", "name": name, "dur": seconds,
                   "span_id": span_id, "parent": parent, "attrs": attrs})
        return span_id

    def event(self, name: str, **attrs) -> None:
        self.emit({"kind": "event", "name": name, "attrs": attrs})

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def subscribe(self, callback) -> None:
        """Register ``callback(record)`` for every future record."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a previously registered subscriber (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def spans(self, name: str | None = None) -> list[dict]:
        return [r for r in self.records if r["kind"] == "span"
                and (name is None or r["name"] == name)]

    def events(self, name: str | None = None) -> list[dict]:
        return [r for r in self.records if r["kind"] == "event"
                and (name is None or r["name"] == name)]

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
