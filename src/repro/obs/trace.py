"""Structured tracing: spans and events as JSON-lines records.

A *span* is a named, timed region (``round``, ``phase.decrypt``,
``ha.checkpoint``); an *event* is a point observation (one adversary-
visible storage access, a fail-over).  Both carry free-form attributes
and serialize to one JSON object per line, so a trace file replays with
``json.loads`` per line and nothing else.

The tracer buffers records in memory (bounded), optionally streams them
to a JSONL file, and fans every record out to registered subscribers —
that last hook is how the live :class:`~repro.analysis.monitor.AlphaMonitor`
consumes the storage-access stream without the storage layer knowing the
monitor exists.

Trace neutrality: emitting a record reads ``time.perf_counter`` and
appends to lists; it never draws randomness and never touches system
state, so an instrumented run is byte-identical to an uninstrumented one
on the adversary-visible channel (enforced by
:func:`repro.sim.perf.compare_obs_traces`).
"""

from __future__ import annotations

import json
import time

__all__ = ["NULL_SPAN", "Span", "Tracer"]

#: Default in-memory record cap; oldest records are dropped beyond it so
#: week-long runs cannot exhaust memory (file sinks keep everything).
_DEFAULT_MAX_RECORDS = 200_000


class _NullSpan:
    """Shared no-op span returned whenever observability is disabled.

    A single module-level instance, so the disabled path allocates
    nothing: ``with OBS.span(...)`` costs one attribute check and two
    no-op calls.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A live timed region; use as a context manager.

    ``set(**attrs)`` attaches attributes discovered mid-region (batch
    composition, byte counts).  The record is emitted at ``__exit__``.
    """

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer.record_span(self.name, duration, **self.attrs)
        return False


class Tracer:
    """Collects span/event records; buffers, streams and fans out.

    Parameters
    ----------
    path:
        Optional JSONL file; records append as they are emitted.
    buffer:
        Keep records in memory (:attr:`records`); disable for unbounded
        file-only runs.
    max_records:
        In-memory cap; the buffer drops its oldest half when full.
    """

    __slots__ = ("records", "dropped", "_path", "_file", "_subscribers",
                 "_buffer", "_max_records", "_seq")

    def __init__(self, path=None, buffer: bool = True,
                 max_records: int = _DEFAULT_MAX_RECORDS) -> None:
        self.records: list[dict] = []
        self.dropped = 0
        self._path = path
        self._file = open(path, "a", encoding="utf-8") if path else None
        self._subscribers: list = []
        self._buffer = buffer
        self._max_records = max_records
        self._seq = 0

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        record["seq"] = self._seq
        self._seq += 1
        if self._buffer:
            self.records.append(record)
            if len(self.records) > self._max_records:
                keep = self._max_records // 2
                self.dropped += len(self.records) - keep
                self.records = self.records[-keep:]
        if self._file is not None:
            self._file.write(json.dumps(record, default=str) + "\n")
        for subscriber in self._subscribers:
            subscriber(record)

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        """Emit a completed span with an explicit duration.

        Hot paths that already hold ``perf_counter`` boundaries use this
        directly and skip the context-manager object entirely.
        """
        self.emit({"kind": "span", "name": name, "dur": seconds,
                   "attrs": attrs})

    def event(self, name: str, **attrs) -> None:
        self.emit({"kind": "event", "name": name, "attrs": attrs})

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def subscribe(self, callback) -> None:
        """Register ``callback(record)`` for every future record."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a previously registered subscriber (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def spans(self, name: str | None = None) -> list[dict]:
        return [r for r in self.records if r["kind"] == "span"
                and (name is None or r["name"] == name)]

    def events(self, name: str | None = None) -> list[dict]:
        return [r for r in self.records if r["kind"] == "event"
                and (name is None or r["name"] == name)]

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
