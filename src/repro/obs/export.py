"""Exporters: Prometheus-style text snapshots and JSONL trace dumps.

The text format follows the Prometheus exposition conventions closely
enough for any Prometheus-ecosystem tool to scrape a file written by
:func:`render_prometheus`: ``# TYPE`` headers, ``_total`` counter
suffixes, cumulative ``_bucket{le="..."}`` series for bucket-mode
histograms and ``{quantile="..."}`` summary lines for reservoirs.
Metric names are sanitized (dots become underscores) on the way out;
the registry keeps the dotted internal names.
"""

from __future__ import annotations

import math

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import jsonl_line

__all__ = ["emit_text", "render_prometheus", "write_prometheus",
           "write_trace_jsonl"]


def emit_text(text: str, stream=None) -> None:
    """The blessed path for human-readable report output.

    Library code must not call ``print()`` (oblint OBL303): stray stdout
    corrupts machine-readable CLI output and leaves no trace.  This
    helper writes to ``stream`` (default ``sys.stdout``) and, when
    observability is enabled, records the emission as a trace event so
    exported traces show *that* a report was produced without embedding
    its contents.
    """
    import sys

    from repro.obs import OBS

    out = stream if stream is not None else sys.stdout
    out.write(text if text.endswith("\n") else text + "\n")
    if OBS.enabled:
        OBS.event("report.emit", lines=text.count("\n") + 1,
                  chars=len(text))


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _labels_text(labels: tuple, extra: str = "") -> str:
    parts = [f'{_sanitize(k)}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _render_histogram(base: str, labels: tuple, hist: Histogram) -> list[str]:
    lines = []
    if hist.mode == "buckets":
        for bound, cumulative in hist.bucket_counts():
            le = "+Inf" if math.isinf(bound) else repr(bound)
            extra = 'le="%s"' % le
            lines.append(
                f"{base}_bucket{_labels_text(labels, extra)} {cumulative}")
    else:
        for q in (0.5, 0.95, 0.99):
            extra = 'quantile="%s"' % q
            lines.append(
                f"{base}{_labels_text(labels, extra)} "
                f"{_format_value(hist.percentile(q))}")
    lines.append(f"{base}_sum{_labels_text(labels)} {_format_value(hist.total)}")
    lines.append(f"{base}_count{_labels_text(labels)} {hist.count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the whole registry as Prometheus exposition text."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for name, labels, metric in registry:
        base = _sanitize(name)
        if metric.kind == "counter":
            base = base if base.endswith("_total") else base + "_total"
            if base not in seen_types:
                lines.append(f"# TYPE {base} counter")
                seen_types.add(base)
            lines.append(f"{base}{_labels_text(labels)} "
                         f"{_format_value(metric.value)}")
        elif metric.kind == "gauge":
            if base not in seen_types:
                lines.append(f"# TYPE {base} gauge")
                seen_types.add(base)
            lines.append(f"{base}{_labels_text(labels)} "
                         f"{_format_value(metric.value)}")
        else:
            kind = "histogram" if metric.mode == "buckets" else "summary"
            if base not in seen_types:
                lines.append(f"# TYPE {base} {kind}")
                seen_types.add(base)
            lines.extend(_render_histogram(base, labels, metric))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path) -> None:
    """Write :func:`render_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry))


def write_trace_jsonl(records, path) -> int:
    """Dump trace ``records`` (dicts) to ``path`` as JSON lines.

    Used for post-hoc export of an in-memory tracer buffer; live
    streaming is handled by ``Tracer(path=...)``.  Returns the number of
    records written.

    Non-finite floats (a zero-width throughput window observes ``inf``)
    are encoded as ``"+Inf"``/``"-Inf"``/``"NaN"`` strings via
    :func:`repro.obs.trace.jsonl_line` — ``json.dumps`` alone would emit
    bare ``Infinity``, which is not JSON and breaks line-by-line
    ``json.loads`` consumers.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(jsonl_line(record) + "\n")
            count += 1
    return count
