"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the numeric half of :mod:`repro.obs`.  It is deliberately
clock-agnostic: wall-clock code observes ``time.perf_counter`` deltas and
simulated-clock code (the cost model, :mod:`repro.sim.closedloop`) feeds
simulated seconds into the very same histogram type — a metric is just a
named stream of values plus low-cardinality labels.

Design points:

* **Labels** make metric names comparable across systems: every proxy
  records ``round.seconds`` and the ``system=waffle|pancake|...`` label
  distinguishes them, so dashboards and exporters can place the systems
  side by side without name translation tables.
* **Histograms** support two modes.  ``reservoir`` keeps a bounded
  uniform sample (Vitter's algorithm R) for percentile queries;
  ``buckets`` counts into fixed upper-bound buckets (the Prometheus
  shape) for cheap merges and text exposition.  The reservoir uses a
  *private* deterministic :class:`random.Random` so that observability
  never consumes a draw from any system or workload rng — the
  trace-neutrality invariant (DESIGN.md §7) depends on this.
* The registry itself has no dependencies on the rest of the package, so
  every layer (crypto kernels included) may import it freely.

Counter/gauge updates are plain attribute arithmetic; under CPython's
GIL that is safe enough for dashboard-grade accuracy, which is all the
observability layer promises.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SUB_MS_BUCKETS",
]

#: Default reservoir capacity; enough for stable p99 estimates.
_DEFAULT_RESERVOIR = 1024

#: Default buckets (seconds-flavoured, spanning µs to minutes).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

#: Sub-millisecond preset for worker-chunk latencies: DEFAULT_BUCKETS
#: jumps a decade at a time below 1 ms, which collapses the entire
#: pooled-kernel regime (tens of µs to a few ms per chunk) into two
#: buckets.  This 1-2-5 ladder resolves that range; the new
#: ``parallel.worker.*`` timings record against it.
SUB_MS_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.5, 1.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A value that goes up and down (cache size, standby lag, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Distribution of observed values, in reservoir or bucket mode.

    Parameters
    ----------
    mode:
        ``"reservoir"`` (bounded uniform sample, exact small-n
        percentiles) or ``"buckets"`` (fixed upper-bound counts,
        Prometheus-style; percentiles resolve to bucket bounds).
    buckets:
        Upper bounds for bucket mode; ignored for reservoirs.
    reservoir_size:
        Sample capacity for reservoir mode.
    """

    __slots__ = ("mode", "count", "total", "min", "max",
                 "_samples", "_capacity", "_rng", "_bounds", "_bucket_counts")
    kind = "histogram"

    def __init__(self, mode: str = "reservoir",
                 buckets: tuple[float, ...] | None = None,
                 reservoir_size: int = _DEFAULT_RESERVOIR) -> None:
        if mode not in ("reservoir", "buckets"):
            raise ValueError(f"unknown histogram mode {mode!r}")
        if reservoir_size < 1:
            raise ValueError("reservoir size must be positive")
        self.mode = mode
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._capacity = reservoir_size
        # Private deterministic rng: observability must never consume a
        # draw from a system/workload rng (trace neutrality).
        self._rng = random.Random(0x0B5E7)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        self._bounds = bounds if mode == "buckets" else ()
        self._bucket_counts = [0] * (len(self._bounds) + 1)  # +inf overflow

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.mode == "reservoir":
            if len(self._samples) < self._capacity:
                self._samples.append(value)
            else:  # Vitter's algorithm R
                slot = self._rng.randrange(self.count)
                if slot < self._capacity:
                    self._samples[slot] = value
        else:
            self._bucket_counts[bisect_left(self._bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 1]); 0.0 when empty.

        Bucket mode returns the upper bound of the bucket holding the
        rank (``inf`` resolves to the observed max).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        if self.mode == "reservoir":
            ordered = sorted(self._samples)
            rank = max(1, round(q * len(ordered)))
            return ordered[rank - 1]
        target = max(1, round(q * self.count))
        running = 0
        for i, n in enumerate(self._bucket_counts):
            running += n
            if running >= target:
                if i < len(self._bounds):
                    return self._bounds[i]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs (bucket mode only)."""
        if self.mode != "buckets":
            raise ValueError("bucket counts only exist in bucket mode")
        out, running = [], 0
        for bound, n in zip(self._bounds, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_name(name: str, labels: tuple) -> str:
    """Human/JSON rendering: ``name{k=v,...}`` (bare name when unlabeled)."""
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """Named, labeled metrics with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the live metric object, so
    hot paths may hold a reference instead of re-resolving the name.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        #: (name, label tuple) -> metric object
        self._metrics: dict[tuple[str, tuple], object] = {}

    def _get(self, name: str, factory: Callable[[], Any],
             labels: dict[str, object]) -> Any:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        metric = self._get(name, Counter, labels)
        if metric.kind != "counter":
            raise ValueError(f"{name!r} already registered as {metric.kind}")
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        metric = self._get(name, Gauge, labels)
        if metric.kind != "gauge":
            raise ValueError(f"{name!r} already registered as {metric.kind}")
        return metric

    def histogram(self, name: str, mode: str = "reservoir",
                  buckets: tuple[float, ...] | None = None,
                  **labels) -> Histogram:
        metric = self._get(
            name, lambda: Histogram(mode=mode, buckets=buckets), labels)
        if metric.kind != "histogram":
            raise ValueError(f"{name!r} already registered as {metric.kind}")
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[tuple[str, tuple[Any, ...], Any]]:
        """Yield ``(name, label tuple, metric)`` sorted by name."""
        for (name, labels), metric in sorted(self._metrics.items()):
            yield name, labels, metric

    def clear(self) -> None:
        self._metrics.clear()

    def snapshot(self) -> dict:
        """JSON-able state of every metric, grouped by kind."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, labels, metric in self:
            rendered = render_name(name, labels)
            out[metric.kind + "s"][rendered] = metric.snapshot()
        return out
