"""Span-tree profiler: flamegraph-style decomposition of a traced run.

:mod:`repro.obs.trace` records every span with a ``span_id`` and the
``parent`` open on the same thread when it completed; this module folds
those records back into an aggregate tree — spans with the same name at
the same tree position merge, accumulating count and inclusive seconds —
and renders it as an indented, bar-annotated report::

    round                          25x   0.812s  100.0%  |##########|
      phase.plan                   25x   0.203s   25.0%  |##        |
        parallel.chunk             50x   0.190s   23.4%  |##        |
          parallel.worker.chunk    50x   0.151s   18.6%  |#         |

``(untracked)`` rows are a node's inclusive time minus its children's —
the coordinator-side time no child span covers (serialization, segment
packing, scheduling).  Worker-side spans arrive through the telemetry
piggyback (:mod:`repro.obs.delta`), so the tree decomposes a pooled
round across the process boundary.

The report's second half derives per-phase p50/p99 latency from the
``<phase>.seconds`` histograms and tabulates the merged
``parallel.worker.*`` metrics per worker, giving ``repro.cli obs
--profile`` everything the acceptance criteria ask of a profile: where
each round's time goes, per phase and per worker.
"""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["ProfileNode", "build_profile", "profile_snapshot",
           "render_profile"]


class ProfileNode:
    """One aggregate position in the span tree."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.children: dict[str, ProfileNode] = {}

    @property
    def child_total(self) -> float:
        return sum(child.total for child in self.children.values())

    def to_dict(self) -> dict:
        """JSON-able form (the ``--profile-out`` artifact shape)."""
        out: dict = {"count": self.count, "seconds": self.total}
        if self.children:
            out["children"] = {name: child.to_dict()
                               for name, child in sorted(self.children.items())}
        return out


def build_profile(records) -> ProfileNode:
    """Fold trace records into an aggregate span tree.

    Returns a virtual root whose children are the top-level spans
    (``round`` in an instrumented proxy run).  Spans whose parent id is
    missing from the record set (dropped by the ring buffer, or emitted
    outside any open span) are treated as roots rather than lost.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    known = {r.get("span_id") for r in spans if r.get("span_id") is not None}
    by_parent: dict = {}
    for record in spans:
        parent = record.get("parent")
        if parent not in known:
            parent = None
        by_parent.setdefault(parent, []).append(record)

    root = ProfileNode("(root)")
    root.count = 1

    def _fold(node: ProfileNode, children: list) -> None:
        for record in children:
            child = node.children.get(record["name"])
            if child is None:
                child = node.children[record["name"]] = ProfileNode(
                    record["name"])
            child.count += 1
            child.total += record.get("dur", 0.0)
            span_id = record.get("span_id")
            if span_id in by_parent:
                _fold(child, by_parent[span_id])

    _fold(root, by_parent.get(None, []))
    root.total = root.child_total
    return root


def _render_tree(node: ProfileNode, scale: float, depth: int,
                 lines: list, width: int = 34, bar_width: int = 10) -> None:
    for name in sorted(node.children,
                       key=lambda n: -node.children[n].total):
        child = node.children[name]
        share = child.total / scale if scale else 0.0
        bar = "#" * max(1 if child.total else 0,
                        round(share * bar_width))
        label = ("  " * depth + name).ljust(width)
        lines.append(f"{label} {child.count:>6}x {child.total:>9.4f}s "
                     f"{share:>6.1%}  |{bar:<{bar_width}}|")
        _render_tree(child, scale, depth + 1, lines, width, bar_width)
        untracked = child.total - child.child_total
        if child.children and untracked > 0.0005 * scale:
            label = ("  " * (depth + 1) + "(untracked)").ljust(width)
            lines.append(f"{label} {'':>7} {untracked:>9.4f}s "
                         f"{untracked / scale if scale else 0.0:>6.1%}  |"
                         f"{'':<{bar_width}}|")


def _phase_rows(registry: MetricsRegistry) -> list[list[str]]:
    rows = []
    for name, labels, metric in registry:
        if metric.kind != "histogram":
            continue
        if not (name.startswith("phase.") or name == "round.seconds"):
            continue
        assert isinstance(metric, Histogram)
        label_map = dict(labels)
        label_map.pop("system", None)
        suffix = ",".join(f"{k}={v}" for k, v in sorted(label_map.items()))
        rows.append([
            name.removesuffix(".seconds") + (f"[{suffix}]" if suffix else ""),
            str(metric.count),
            f"{metric.mean * 1e3:.3f}ms",
            f"{metric.percentile(0.50) * 1e3:.3f}ms",
            f"{metric.percentile(0.99) * 1e3:.3f}ms",
        ])
    return rows


def _worker_rows(registry: MetricsRegistry) -> list[list[str]]:
    per_worker: dict[str, dict] = {}
    for name, labels, metric in registry:
        if not name.startswith("parallel.worker."):
            continue
        worker = dict(labels).get("worker")
        if worker is None:
            continue
        row = per_worker.setdefault(
            worker, {"chunks": 0.0, "items": 0.0, "busy": 0.0, "count": 0})
        if name == "parallel.worker.chunks.total":
            row["chunks"] += metric.value
        elif name == "parallel.worker.items.total":
            row["items"] += metric.value
        elif name == "parallel.worker.chunk.seconds":
            row["busy"] += metric.total
            row["count"] += metric.count
    rows = []
    for worker in sorted(per_worker):
        row = per_worker[worker]
        mean = row["busy"] / row["count"] if row["count"] else 0.0
        rows.append([worker, str(int(row["chunks"])), str(int(row["items"])),
                     f"{row['busy']:.4f}s", f"{mean * 1e6:.1f}us"])
    return rows


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row, widths))))
    return lines


def render_profile(registry: MetricsRegistry, records,
                   title: str = "span-tree profile") -> str:
    """Render the full profile report (tree + phase and worker tables)."""
    lines = [title, "=" * len(title), ""]
    root = build_profile(records)
    if root.children:
        lines.append("inclusive wall time by span-tree position")
        lines.append("")
        _render_tree(root, root.total, 0, lines)
        lines.append("")
    else:
        lines.append("(no span records — is observability enabled?)")
        lines.append("")

    phase_rows = _phase_rows(registry)
    if phase_rows:
        lines += ["per-phase latency (from the .seconds histograms)", ""]
        lines += _table(["phase", "count", "mean", "p50", "p99"], phase_rows)
        lines.append("")

    worker_rows = _worker_rows(registry)
    if worker_rows:
        lines += ["worker telemetry (merged parallel.worker.* deltas)", ""]
        lines += _table(["worker", "chunks", "items", "busy", "mean-chunk"],
                        worker_rows)
        lines.append("")
    return "\n".join(lines)


def profile_snapshot(registry: MetricsRegistry, records) -> dict:
    """JSON-able profile (the CI artifact behind ``--profile-out``)."""
    root = build_profile(records)
    phases = {}
    for name, labels, metric in registry:
        if metric.kind != "histogram":
            continue
        if not (name.startswith("phase.") or name == "round.seconds"):
            continue
        key = name.removesuffix(".seconds")
        label_map = dict(labels)
        if "dir" in label_map:
            key += "." + label_map["dir"]
        phases[key] = metric.snapshot()
    workers: dict[str, dict] = {}
    for name, labels, metric in registry:
        if not name.startswith("parallel.worker."):
            continue
        label_map = dict(labels)
        worker = label_map.get("worker")
        if worker is None:
            continue
        key = name + (f"[{label_map['kind']}]" if "kind" in label_map else "")
        workers.setdefault(worker, {})[key] = (
            metric.snapshot() if metric.kind == "histogram"
            else metric.value)
    return {
        "schema": "repro.profile/1",
        "tree": {name: node.to_dict()
                 for name, node in sorted(root.children.items())},
        "phases": phases,
        "workers": workers,
    }
