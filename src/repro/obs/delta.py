"""Cross-process telemetry deltas: worker-side buffer, wire codec, merge.

The pool workers run with observability forced off (their registries are
invisible fork copies and they must not share the coordinator's trace
file descriptor — see ``repro.parallel.worker.init_worker``).  What they
*can* do is accumulate metric and span deltas in a plain local
:class:`TelemetryBuffer` — single-threaded per process, so "lock-free"
is literal: dict and list operations, no synchronization — and ship the
drained delta back piggybacked on the chunk response as one extra frame.
The coordinator (the only process with a live registry and tracer)
merges each delta under ``worker``-labelled metric names and hangs the
worker-side spans under the coordinator-side chunk span, so the span
tree crosses the process boundary:
``round -> phase.* -> parallel.chunk -> parallel.worker.chunk``.

Contract notes:

* **Zero-cost when disabled** — the coordinator passes a per-chunk
  telemetry flag derived from ``OBS.enabled`` at dispatch time; with it
  off, workers never touch the buffer and responses carry no extra
  frame.
* **Trace neutrality** — deltas ride existing response frames (no new
  server accesses, no rng draws); merged histograms use the fixed
  :data:`~repro.obs.registry.SUB_MS_BUCKETS` bounds, so merging draws no
  reservoir randomness either.
* **Exactly-once merge** — :meth:`TelemetryBuffer.drain` resets the
  buffer, so every observation ships in exactly one delta; the
  coordinator merges only deltas returned by successful futures, so a
  killed worker's in-flight delta is lost, never double-counted.
"""

from __future__ import annotations

import json

from repro.obs.registry import SUB_MS_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["TelemetryBuffer", "decode_delta", "encode_delta", "merge_delta"]


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class TelemetryBuffer:
    """Per-process accumulator for metric and span deltas.

    Workers are single-threaded, so every method is plain dict/list
    arithmetic.  The buffer never touches the process-wide ``OBS``
    handle — a forked worker can force its inherited handle off and
    still record here.
    """

    __slots__ = ("counters", "observations", "spans")

    def __init__(self) -> None:
        #: (name, label items) -> accumulated increment
        self.counters: dict[tuple, float] = {}
        #: (name, label items) -> raw observed values (histogram feed)
        self.observations: dict[tuple, list[float]] = {}
        #: (name, seconds, attrs) completed spans, in completion order
        self.spans: list[tuple[str, float, dict]] = []

    def inc(self, name: str, n: float = 1, **labels) -> None:
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + n

    def observe(self, name: str, value: float, **labels) -> None:
        self.observations.setdefault(_key(name, labels), []).append(value)

    def span(self, name: str, seconds: float, **attrs) -> None:
        self.spans.append((name, seconds, attrs))

    def __bool__(self) -> bool:
        return bool(self.counters or self.observations or self.spans)

    def clear(self) -> None:
        self.counters = {}
        self.observations = {}
        self.spans = []

    def drain(self) -> dict:
        """Snapshot the buffered deltas and reset the buffer.

        The reset is what makes merges pure increments: a delta lost in
        transit (worker killed mid-chunk) simply never lands, and a
        delta that lands cannot land twice.
        """
        delta = {
            "counters": [[name, dict(labels), value]
                         for (name, labels), value in self.counters.items()],
            "observations": [[name, dict(labels), values]
                             for (name, labels), values
                             in self.observations.items()],
            "spans": [[name, seconds, attrs]
                      for name, seconds, attrs in self.spans],
        }
        self.clear()
        return delta


def encode_delta(delta: dict, worker_id: str) -> bytes:
    """Serialize a drained delta as one compact piggyback frame."""
    delta["worker"] = worker_id
    return json.dumps(delta, separators=(",", ":")).encode("utf-8")


def decode_delta(frame) -> dict:
    """Inverse of :func:`encode_delta` (accepts bytes or a memoryview)."""
    return json.loads(bytes(frame).decode("utf-8"))


def merge_delta(registry: MetricsRegistry, tracer: Tracer, delta: dict,
                parent: int | None = None) -> None:
    """Fold one worker delta into the coordinator's registry and tracer.

    Every metric gains a ``worker=<id>`` label so per-worker skew stays
    visible after the merge; observation streams land in fixed
    ``SUB_MS_BUCKETS`` histograms (worker chunks live in the µs-to-ms
    range the default buckets cannot resolve).  Worker spans are
    re-emitted on the coordinator's tracer with ``parent`` — the
    coordinator-side ``parallel.chunk`` span — so the profile tree spans
    the process boundary.
    """
    worker = str(delta.get("worker", "?"))
    for name, labels, value in delta.get("counters", ()):
        registry.counter(name, worker=worker, **labels).inc(value)
    for name, labels, values in delta.get("observations", ()):
        hist = registry.histogram(name, mode="buckets",
                                  buckets=SUB_MS_BUCKETS,
                                  worker=worker, **labels)
        for value in values:
            hist.observe(value)
    for name, seconds, attrs in delta.get("spans", ()):
        tracer.record_span(name, seconds, parent=parent, worker=worker,
                           **attrs)
