"""Terminal dashboard: one table for throughput, latency and security.

:func:`render_dashboard` turns a metrics registry (plus, optionally, a
live :class:`~repro.analysis.monitor.AlphaMonitor`) into the operator
view §8.4 presupposes: per-system throughput and latency percentiles,
Waffle's batch composition (real / fake-real / fake-dummy), cache hit
rate, kernel timings, and the α-budget status — all from the shared
metric names, so Waffle and the baselines line up row by row.

The monitor argument is duck-typed (``alpha_budget``, ``reports``,
``outstanding_ids``, ``total_breaches``) to keep this module free of
dependencies on the analysis package.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry, render_name

__all__ = ["render_dashboard"]


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row, widths))))
    return lines


def _by_system(registry: MetricsRegistry, metric_name: str) -> dict:
    """``system label value -> metric`` for one shared metric name."""
    out = {}
    for name, labels, metric in registry:
        if name != metric_name:
            continue
        system = dict(labels).get("system", "-")
        out[system] = metric
    return out


def _fmt(value: float, unit: str = "") -> str:
    if value >= 1000:
        return f"{value:,.0f}{unit}"
    if value >= 1:
        return f"{value:.2f}{unit}"
    return f"{value:.4f}{unit}"


def render_dashboard(registry: MetricsRegistry, monitor=None,
                     title: str = "repro observability") -> str:
    """Render the live dashboard as plain text."""
    lines = [title, "=" * len(title), ""]

    # ---- per-system throughput and latency --------------------------
    rounds = _by_system(registry, "round.seconds")
    requests = _by_system(registry, "requests.total")
    hits = _by_system(registry, "cache.hits.total")
    if rounds:
        rows = []
        for system in sorted(rounds):
            hist = rounds[system]
            wall = hist.total or float("nan")
            reqs = requests[system].value if system in requests else 0
            hit_rate = (hits[system].value / reqs
                        if system in hits and reqs else None)
            rows.append([
                system,
                str(hist.count),
                str(reqs),
                _fmt(hist.count / wall) if wall else "-",
                _fmt(reqs / wall) if wall else "-",
                _fmt(hist.percentile(0.50) * 1e3) + "ms",
                _fmt(hist.percentile(0.95) * 1e3) + "ms",
                _fmt(hist.percentile(0.99) * 1e3) + "ms",
                f"{hit_rate:.1%}" if hit_rate is not None else "-",
            ])
        lines += ["throughput / latency (wall clock)", ""]
        lines += _table(
            ["system", "rounds", "reqs", "rounds/s", "reqs/s",
             "p50", "p95", "p99", "cache-hit"], rows)
        lines.append("")

    # ---- batch composition ------------------------------------------
    real = _by_system(registry, "batch.real.total")
    fake_real = _by_system(registry, "batch.fake_real.total")
    fake_dummy = _by_system(registry, "batch.fake_dummy.total")
    systems = sorted(set(real) | set(fake_real) | set(fake_dummy))
    if systems:
        rows = []
        for system in systems:
            r = real[system].value if system in real else 0
            fr = fake_real[system].value if system in fake_real else 0
            fd = fake_dummy[system].value if system in fake_dummy else 0
            total = (r + fr + fd) or 1
            rows.append([
                system, str(r), str(fr), str(fd),
                f"{r / total:.1%}", f"{(fr + fd) / total:.1%}",
            ])
        lines += ["batch composition (server reads)", ""]
        lines += _table(
            ["system", "real", "fake-real", "fake-dummy",
             "real%", "fake%"], rows)
        lines.append("")

    # ---- kernel profile ---------------------------------------------
    kernel_rows = []
    for name, labels, metric in registry:
        if metric.kind != "histogram" or not name.startswith("kernel."):
            continue
        kernel_rows.append([
            render_name(name, labels).removeprefix("kernel.")
            .removesuffix(".seconds"),
            str(metric.count),
            _fmt(metric.mean * 1e6) + "us",
            _fmt(metric.percentile(0.95) * 1e6) + "us",
        ])
    if kernel_rows:
        lines += ["kernel profile (per batched call)", ""]
        lines += _table(["kernel", "calls", "mean", "p95"], kernel_rows)
        lines.append("")

    # ---- parallel engine --------------------------------------------
    # One row per pool size (the ``workers`` label), showing where
    # parallel time goes: chunk count, items, serialized bytes each way,
    # and the submit-to-result wait distribution.
    pool_sizes: dict[str, dict] = {}
    for name, labels, metric in registry:
        if not name.startswith("parallel."):
            continue
        label_map = dict(labels)
        workers = label_map.get("workers")
        if workers is None:
            continue
        row = pool_sizes.setdefault(workers, {})
        if name == "parallel.serialized.bytes.total":
            row["bytes." + label_map.get("dir", "-")] = metric.value
        else:
            row[name] = metric
    if pool_sizes:
        rows = []
        for workers in sorted(pool_sizes, key=int):
            row = pool_sizes[workers]
            chunks = row.get("parallel.chunks.total")
            items = row.get("parallel.items.total")
            wait = row.get("parallel.chunk.wait.seconds")
            depth = row.get("parallel.pool.queue.depth")
            rows.append([
                workers,
                str(chunks.value) if chunks else "-",
                str(items.value) if items else "-",
                _fmt(row.get("bytes.out", 0) / 1024.0) + "KiB",
                _fmt(row.get("bytes.in", 0) / 1024.0) + "KiB",
                _fmt(wait.mean * 1e3) + "ms" if wait else "-",
                _fmt(wait.percentile(0.95) * 1e3) + "ms" if wait else "-",
                str(int(depth.value)) if depth else "0",
            ])
        lines += ["parallel engine (per pool size)", ""]
        lines += _table(
            ["workers", "chunks", "items", "ser-out", "ser-in",
             "wait-mean", "wait-p95", "queue"], rows)
        stall = None
        for name, labels, metric in registry:
            if name == "parallel.pipeline.stall.seconds":
                stall = metric
        if stall is not None and stall.count:
            lines.append(
                f"  pipeline barrier stalls: {stall.count} "
                f"(mean {_fmt(stall.mean * 1e3)}ms, "
                f"p95 {_fmt(stall.percentile(0.95) * 1e3)}ms)")
        lines.append("")

    # ---- alpha budget ------------------------------------------------
    if monitor is not None:
        reports = monitor.reports
        max_alpha = max((r.max_alpha for r in reports
                         if r.max_alpha is not None), default=None)
        status = "BREACHED" if monitor.total_breaches else "OK"
        lines += [
            "alpha-budget status (live AlphaMonitor, §8.4)",
            "",
            f"  budget              : {monitor.alpha_budget}",
            f"  windows closed      : {len(reports)}",
            f"  max observed alpha  : "
            f"{max_alpha if max_alpha is not None else '-'}",
            f"  outstanding ids     : {monitor.outstanding_ids}",
            f"  budget breaches     : {monitor.total_breaches}",
            f"  status              : {status}",
            "",
        ]

    if len(lines) == 3:
        lines.append("(no metrics recorded — is observability enabled?)")
    return "\n".join(lines)
