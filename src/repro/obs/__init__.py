"""``repro.obs`` — the unified observability layer.

One dependency-free subsystem gives every layer of the repository the
same three primitives (DESIGN.md §7):

* a process-wide **metrics registry** (:mod:`repro.obs.registry`) —
  counters, gauges, histograms with reservoir and fixed-bucket modes,
  fed by wall-clock and simulated-clock code alike;
* a **structured tracing API** (:mod:`repro.obs.trace`) — spans and
  events as JSON-lines, with live subscribers;
* **exporters** (:mod:`repro.obs.export`, :mod:`repro.obs.dashboard`) —
  Prometheus-style text snapshots, JSONL trace files and a terminal
  dashboard (``python -m repro.cli obs``).

The whole layer hangs off one module-level handle, :data:`OBS`.
Instrumented code guards with ``if OBS.enabled:`` (or calls the
``span``/``event``/``observe_span`` helpers, which no-op when disabled),
so the disabled cost is a predicted branch — the zero-cost contract that
``tests/test_obs_overhead.py`` enforces against the batched round
engine.

Two invariants the instrumentation must uphold:

* **zero-cost when disabled** — no allocation, no rng, no I/O on the
  disabled path (``OBS.span`` returns the shared :data:`NULL_SPAN`);
* **trace neutrality when enabled** — recording must not consume rng
  draws or alter the adversary-visible access sequence; histogram
  reservoirs carry a private deterministic rng for exactly this reason,
  and :func:`repro.sim.perf.compare_obs_traces` pins the property for
  Waffle and all three baselines on a fixed seed.

Usage::

    from repro import obs

    obs.enable()                      # or enable(trace_path="run.jsonl")
    ...  # run any instrumented system
    emit_text(str(obs.OBS.registry.snapshot()))   # repro.obs.export
    obs.disable()

    with obs.capture() as handle:     # scoped form used by tests
        ...
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    SUB_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "OBS",
    "Observability",
    "SUB_MS_BUCKETS",
    "Span",
    "Tracer",
    "capture",
    "clock",
    "disable",
    "enable",
]


def clock() -> float:
    """The sanctioned monotonic timestamp source for observability.

    Observers that need *timestamps* (not durations) — the timing-
    leakage observatory in :mod:`repro.analysis.timing` stamps round
    release instants — read this instead of ``time.monotonic`` directly.
    Funneling every monotonic read through one helper keeps the
    determinism audit tractable: oblint's OBL201 pass bans raw
    ``time.monotonic`` everywhere outside ``obs/`` and allows
    ``obs.clock()`` only inside ``obs/`` and ``analysis/``, so protocol
    code can never grow a hidden dependence on real time (chaos replay
    would silently stop being deterministic).
    """
    return time.monotonic()


class Observability:
    """The mutable process-wide observability handle.

    Instrumented modules import :data:`OBS` once; :func:`enable` and
    :func:`disable` mutate the handle in place so every import site sees
    the switch without re-importing.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    # ------------------------------------------------------------------
    # guarded emission helpers (no-ops while disabled)
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context-managed span, or the shared null span when disabled."""
        if self.enabled:
            return self.tracer.span(name, **attrs)
        return NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        if self.enabled:
            self.tracer.event(name, **attrs)

    def observe_span(self, name: str, seconds: float,
                     labels: dict | None = None, **attrs) -> None:
        """Record one completed timed region into *both* pillars.

        The duration lands in the ``<name>.seconds`` histogram (labeled)
        and as a trace span record carrying ``labels`` plus ``attrs``.
        This is the workhorse of the phase instrumentation: hot paths
        take two ``perf_counter()`` readings and make one call.
        """
        if not self.enabled:
            return
        labels = labels or {}
        self.registry.histogram(name + ".seconds", **labels).observe(seconds)
        self.tracer.record_span(name, seconds, **labels, **attrs)

    def open_span(self, name: str, root: bool = False) -> int:
        """Open a region of the span tree (callers guard on ``enabled``).

        Returns the token :meth:`close_span` takes.  ``root=True`` marks
        a round boundary: the thread's stack resets so spans orphaned by
        a mid-round exception cannot corrupt later rounds' parentage.
        """
        return self.tracer.open_span(name, root=root)

    def close_span(self, token: int, seconds: float,
                   labels: dict | None = None, **attrs) -> None:
        """Close an open region into *both* pillars.

        The stack-structured sibling of :meth:`observe_span`: the span
        record is emitted with its tree position (``span_id``/``parent``)
        and the duration lands in the ``<name>.seconds`` histogram under
        ``labels``, so per-phase percentiles and the profile tree stay
        derived from one pair of ``perf_counter`` readings.
        """
        labels = labels or {}
        name = self.tracer.close_span(token, seconds, **labels, **attrs)
        self.registry.histogram(name + ".seconds", **labels).observe(seconds)

    def observe_kernel(self, kernel: str, seconds: float, items: int) -> None:
        """Profiling hook for the batched kernels (PR 1 fast path).

        Records per-call wall time into ``kernel.<name>.seconds`` plus
        call/item throughput counters.  Callers guard on
        :attr:`enabled` *before* taking perf_counter readings, so the
        disabled cost is a single branch per kernel call.
        """
        reg = self.registry
        reg.histogram("kernel." + kernel + ".seconds").observe(seconds)
        reg.counter("kernel." + kernel + ".calls.total").inc()
        reg.counter("kernel." + kernel + ".items.total").inc(items)


#: The process-wide handle every instrumented module imports.
OBS = Observability()


def enable(trace_path=None, buffer_traces: bool = True,
           reset: bool = True) -> Observability:
    """Switch observability on (in place, process-wide).

    Parameters
    ----------
    trace_path:
        Optional JSONL file that receives every trace record as it is
        emitted.
    buffer_traces:
        Keep trace records in memory for programmatic consumption.
    reset:
        Start from a fresh registry and tracer (the default); pass
        ``False`` to accumulate across enable/disable cycles.
    """
    if reset:
        OBS.registry = MetricsRegistry()
        OBS.tracer = Tracer(path=trace_path, buffer=buffer_traces)
    elif trace_path is not None:
        OBS.tracer = Tracer(path=trace_path, buffer=buffer_traces)
    OBS.enabled = True
    return OBS


def disable() -> None:
    """Switch observability off; closes the trace file sink if any.

    The registry and (in-memory) trace records remain readable for
    post-run export.
    """
    OBS.enabled = False
    OBS.tracer.close()


@contextmanager
def capture(trace_path=None, buffer_traces: bool = True):
    """Scoped :func:`enable`/:func:`disable`; yields the handle."""
    enable(trace_path=trace_path, buffer_traces=buffer_traces)
    try:
        yield OBS
    finally:
        disable()
