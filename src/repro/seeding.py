"""Deterministic RNG construction: no code path falls back to OS entropy.

``random.Random(seed)`` with ``seed=None`` silently seeds from
``os.urandom`` — which makes the chaos harness's replay-from-a-seed
guarantee fiction for every caller that relies on a default.  The
``oblint`` determinism pass (OBL202) bans that pattern; this module is
the one blessed constructor.  Components take ``seed: int | None`` in
their public signatures as before, but an omitted seed now means *the
documented default seed*, not fresh entropy.

``stream`` derives independent-but-reproducible generators from one
seed (e.g. a replica-placement RNG alongside a sampling RNG), replacing
the ad-hoc ``seed + 1`` idiom.
"""

from __future__ import annotations

import random

__all__ = ["DEFAULT_SEED", "derive_seed", "seeded_rng"]

#: The documented fallback seed used whenever a caller omits ``seed``.
DEFAULT_SEED = 0x0B5E55ED


def derive_seed(seed: int | None, stream: int = 0) -> int:
    """An integer seed, never None: ``seed`` (or the default) plus stream."""
    base = DEFAULT_SEED if seed is None else seed
    return base + stream


def seeded_rng(seed: int | None, stream: int = 0) -> random.Random:
    """A ``random.Random`` that is always deterministically seeded."""
    return random.Random(derive_seed(seed, stream))
