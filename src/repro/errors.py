"""Exception hierarchy shared by every subsystem in the reproduction.

Keeping the exception types in one module lets callers catch a single
base class (:class:`ReproError`) at system boundaries while the library
raises precise subclasses internally.

The hierarchy distinguishes **transient** failures (timeouts, dropped
connections, a momentarily unavailable backend — retrying the operation
may succeed and leaks nothing new, since a retried Waffle round replays
the identical access pattern) from **fatal** protocol violations
(malformed frames, short pipelined replies, invariant breaches — retrying
cannot help and the connection or proxy must be torn down).  Transient
types mix in :class:`TransientError` and, where a stdlib equivalent
exists, the matching builtin (``TimeoutError``, ``ConnectionError``) so
generic retry loops recognize them too; :func:`is_retryable` is the
single classification point.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TransientError(ReproError):
    """A retryable failure: re-issuing the operation may succeed.

    Never raised directly — concrete types subclass both their subsystem
    base (:class:`StorageError`, :class:`NetworkError`) and this marker.
    """


class ConfigurationError(ReproError):
    """A system was configured with invalid or inconsistent parameters."""


class StorageError(ReproError):
    """Base class for storage backend failures."""


class KeyNotFoundError(StorageError):
    """A requested storage id does not exist on the server."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class DuplicateKeyError(StorageError):
    """A storage id was written twice, violating the write-once invariant."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key already present: {key!r}")
        self.key = key


class BackendUnavailableError(StorageError, TransientError):
    """The storage backend refused the operation but may recover."""


class StorageTimeoutError(StorageError, TransientError, TimeoutError):
    """A storage operation timed out before a reply arrived.

    Also a builtin ``TimeoutError`` so callers using stdlib idioms
    (``except TimeoutError``) classify it correctly.
    """


class OverloadedError(TransientError):
    """The serving frontend shed this request under admission control.

    Raised (or delivered over the wire) when the pending-request queue
    has reached its configured cap.  Retryable by definition: shedding
    is load-dependent, not request-dependent, and a shed request never
    reached the proxy — the adversary-visible trace is unchanged, so a
    retry leaks nothing new.
    """


class NetworkError(ReproError):
    """Base class for transport-layer failures between proxy and server."""


class ConnectionDroppedError(NetworkError, TransientError, ConnectionError):
    """The connection to the peer dropped mid-operation.

    Also a builtin ``ConnectionError``; reconnecting and retrying is the
    expected recovery.
    """


class IntegrityError(ReproError):
    """Authenticated decryption failed: the ciphertext was tampered with."""


class ProtocolError(ReproError):
    """A protocol-level invariant was violated (e.g. malformed batch)."""


class FrameError(ProtocolError):
    """A length-prefixed frame payload was malformed or truncated.

    Raised by the parallel engine's frame codec when a payload ends
    inside a 4-byte length prefix or declares a frame longer than the
    bytes that follow.  Fatal rather than transient: a short frame means
    the producer or the transport corrupted the batch, and guessing at
    frame boundaries would hand workers misaligned crypto inputs.
    """


class PartialReplyError(ProtocolError):
    """A pipelined reply carried fewer entries than the request batch.

    Fatal rather than transient: a short MGET reply means the peer or the
    framing layer is broken, and silently proceeding would hand the proxy
    a misaligned id→value mapping.
    """

    def __init__(self, expected: int, got: int) -> None:
        super().__init__(f"pipelined reply carried {got} of {expected} entries")
        self.expected = expected
        self.got = got


class ClosedError(ReproError):
    """An operation was issued against a closed datastore or proxy."""


def is_retryable(error: BaseException) -> bool:
    """Whether a failure is transient: safe and sensible to retry.

    True for the library's :class:`TransientError` family and for bare
    stdlib timeout/connection errors raised by lower layers.
    """
    return isinstance(error, (TransientError, TimeoutError, ConnectionError))
