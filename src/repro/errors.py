"""Exception hierarchy shared by every subsystem in the reproduction.

Keeping the exception types in one module lets callers catch a single
base class (:class:`ReproError`) at system boundaries while the library
raises precise subclasses internally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A system was configured with invalid or inconsistent parameters."""


class StorageError(ReproError):
    """Base class for storage backend failures."""


class KeyNotFoundError(StorageError):
    """A requested storage id does not exist on the server."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class DuplicateKeyError(StorageError):
    """A storage id was written twice, violating the write-once invariant."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key already present: {key!r}")
        self.key = key


class IntegrityError(ReproError):
    """Authenticated decryption failed: the ciphertext was tampered with."""


class ProtocolError(ReproError):
    """A protocol-level invariant was violated (e.g. malformed batch)."""


class ClosedError(ReproError):
    """An operation was issued against a closed datastore or proxy."""
