"""Data-structure substrate: the balanced BST and LRU cache Waffle relies on.

§4 (Challenge 2) requires a balanced binary search tree ordered on
``(timestamp, key)`` supporting minimum lookup and timestamp updates in
``O(log n)``; §4 (Challenge 3) requires a bounded least-recently-used
cache.  Both are implemented from scratch here.
"""

from repro.ds.lru import LruCache
from repro.ds.treap import Treap

__all__ = ["LruCache", "Treap"]
