"""Bounded least-recently-used cache (Waffle's proxy cache, §4 Challenge 3).

Waffle's cache differs from a classical performance cache in two ways that
the implementation must respect:

* the bound ``C`` is enforced by the *proxy protocol*, not the cache: during
  a batch the cache may transiently hold up to ``C + R`` objects, and the
  write phase evicts back down to ``C`` (Algorithm 1, lines 37-41).  The
  cache therefore exposes an explicit :meth:`evict` instead of evicting
  implicitly on insert;
* eviction order feeds the security bound β (Theorem 7.2), so recency
  updates happen exactly where Algorithm 1 performs them (cache hits in the
  read phase, insertions/updates in the write phase) — reads via
  :meth:`peek` deliberately do *not* touch recency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generic, Iterable, Iterator, TypeVar

__all__ = ["LruCache"]

K = TypeVar("K")
V = TypeVar("V")

#: Internal miss marker distinguishable from any cached value (including
#: ``None``/``b""``); callers may pass their own ``default`` instead.
_MISSING = object()


class LruCache(Generic[K, V]):
    """An LRU map with explicit eviction.

    Parameters
    ----------
    capacity:
        Target capacity ``C``.  :meth:`over_capacity` reports how many
        entries currently exceed it; the owner evicts down explicitly.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: K) -> V:
        """Return the cached value and mark ``key`` most recently used."""
        value = self._entries[key]
        self._entries.move_to_end(key)
        return value

    def get_if_present(self, key: K, default: Any = None) -> Any:
        """Single-lookup :meth:`get`: value (recency bumped) or ``default``.

        Replaces the ``key in cache`` + ``cache.get(key)`` double descent
        on the proxy's read path.  A miss performs exactly one hash lookup
        and never raises; recency is only touched on a hit, so peek-vs-get
        semantics (and hence the β eviction order) are unchanged.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._entries.move_to_end(key)
        return value

    def get_if_present_many(self, keys: Iterable[K],
                            default: Any = None) -> list[Any]:
        """Bulk :meth:`get_if_present`: one result per key, in order.

        Semantically identical to calling :meth:`get_if_present` per key
        — recency bumps happen hit-by-hit in input order, so the LRU
        order (and hence the β eviction order) is unchanged.  The bulk
        form exists because hoisting the dict/``move_to_end`` lookups
        out of the probe loop is worth ~1.4x on the proxy's read phase
        (``bench_cache_kernel``); the per-call form lost to the plain
        ``in`` + ``get`` double descent on attribute dispatch alone.
        """
        get = self._entries.get
        move = self._entries.move_to_end
        out: list[Any] = []
        append = out.append
        for key in keys:
            value = get(key, _MISSING)
            if value is _MISSING:
                append(default)
            else:
                move(key)
                append(value)
        return out

    def touch_if_present(self, key: K) -> bool:
        """Mark ``key`` most recently used if cached; report whether it was."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def peek(self, key: K) -> V:
        """Return the cached value without touching recency."""
        return self._entries[key]

    def put(self, key: K, value: V) -> None:
        """Insert or update ``key`` and mark it most recently used.

        Never evicts; the owner drains overflow via :meth:`evict`.
        """
        self._entries[key] = value
        self._entries.move_to_end(key)

    def touch(self, key: K) -> None:
        """Mark ``key`` most recently used without changing its value."""
        self._entries.move_to_end(key)

    def evict(self) -> tuple[K, V]:
        """Remove and return the least recently used ``(key, value)`` pair."""
        if not self._entries:
            raise KeyError("cache is empty")
        return self._entries.popitem(last=False)

    def remove(self, key: K) -> V:
        """Remove ``key`` outright and return its value."""
        return self._entries.pop(key)

    def over_capacity(self) -> int:
        """Number of entries beyond the configured capacity."""
        return max(0, len(self._entries) - self.capacity)

    def keys(self) -> Iterator[K]:
        """Keys from least to most recently used."""
        return iter(self._entries)

    def items(self) -> Iterator[tuple[K, V]]:
        """Items from least to most recently used."""
        return iter(self._entries.items())
