"""A randomized treap: the balanced BST behind Waffle's timestamp index.

Waffle keeps one balanced binary search tree per object class (real and
dummy), ordered by ``<timestamp : plaintext_key>`` (§6.1), and needs three
operations while assembling a batch:

* ``min()`` — the least-recently-accessed object (fake-query candidate),
* ``insert(key, ts)`` / ``remove(key)`` — timestamp updates,
* membership and size queries.

A treap keeps expected ``O(log n)`` height by pairing the BST order on the
caller's key with a heap order on random priorities.  We expose a
map-like interface: each *entry key* (the plaintext object id) appears at
most once, positioned by its *sort key* (timestamp plus an optional
tiebreak).  The module is self-contained and iterative where it matters so
deep trees cannot hit Python's recursion limit.
"""

from __future__ import annotations

import time
from typing import Any, Hashable, Iterator

from repro.obs import OBS
from repro.seeding import seeded_rng

__all__ = ["Treap"]


class _Node:
    __slots__ = ("sort_key", "entry", "priority", "left", "right", "size")

    def __init__(self, sort_key: Any, entry: Any, priority: float) -> None:
        self.sort_key = sort_key
        self.entry = entry
        self.priority = priority
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.size = 1

    def refresh(self) -> None:
        self.size = 1
        if self.left is not None:
            self.size += self.left.size
        if self.right is not None:
            self.size += self.right.size


class Treap:
    """Ordered map from *entry* to a *sort key*, backed by a treap.

    ``sort_key`` values must be mutually comparable (Waffle uses tuples of
    ``(timestamp, tiebreak, key)``).  Each entry appears at most once;
    re-inserting an entry moves it to its new position.

    Parameters
    ----------
    seed:
        Seed for the priority RNG; fixing it makes tree shapes (not
        semantics) reproducible.
    """

    __slots__ = ("_root", "_position", "_rng")

    def __init__(self, seed: int | None = None) -> None:
        self._root: _Node | None = None
        # entry -> sort_key currently in the tree
        self._position: dict[Hashable, Any] = {}
        self._rng = seeded_rng(seed)

    # ------------------------------------------------------------------
    # rotations / structural helpers
    # ------------------------------------------------------------------
    def _merge(self, left: _Node | None, right: _Node | None) -> _Node | None:
        """Merge two treaps where all of ``left`` sorts before ``right``."""
        # Iterative merge via a parent chain to avoid recursion depth limits.
        if left is None:
            return right
        if right is None:
            return left
        pseudo = _Node(None, None, 0.0)
        tail = pseudo
        attach_left = True
        touched = []
        while left is not None and right is not None:
            if left.priority >= right.priority:
                node, left = left, left.right
                if attach_left:
                    tail.left = node
                else:
                    tail.right = node
                tail = node
                touched.append(node)
                attach_left = False
            else:
                node, right = right, right.left
                if attach_left:
                    tail.left = node
                else:
                    tail.right = node
                tail = node
                touched.append(node)
                attach_left = True
        remainder = left if left is not None else right
        if attach_left:
            tail.left = remainder
        else:
            tail.right = remainder
        for node in reversed(touched):
            node.refresh()
        root = pseudo.left
        return root

    def _split(self, node: _Node | None, sort_key: Any,
               ) -> tuple[_Node | None, _Node | None]:
        """Split into (< sort_key, >= sort_key), iteratively."""
        less_pseudo = _Node(None, None, 0.0)
        geq_pseudo = _Node(None, None, 0.0)
        less_tail, geq_tail = less_pseudo, geq_pseudo
        touched = []
        while node is not None:
            touched.append(node)
            if node.sort_key < sort_key:
                less_tail.right = node
                less_tail = node
                node = node.right
                less_tail.right = None
            else:
                geq_tail.left = node
                geq_tail = node
                node = node.left
                geq_tail.left = None
        for n in reversed(touched):
            n.refresh()
        return less_pseudo.right, geq_pseudo.left

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, entry: Hashable) -> bool:
        return entry in self._position

    def sort_key_of(self, entry: Hashable) -> Any:
        """Current sort key of ``entry`` (KeyError if absent)."""
        return self._position[entry]

    def insert(self, entry: Hashable, sort_key: Any) -> None:
        """Insert ``entry`` at ``sort_key``; repositions existing entries."""
        if entry in self._position:
            self.remove(entry)
        node = _Node(sort_key, entry, self._rng.random())
        less, geq = self._split(self._root, sort_key)
        self._root = self._merge(self._merge(less, node), geq)
        self._position[entry] = sort_key

    def remove(self, entry: Hashable) -> None:
        """Remove ``entry`` from the tree (KeyError if absent)."""
        sort_key = self._position.pop(entry)
        parent: _Node | None = None
        node = self._root
        went_left = False
        # Sort keys are unique in Waffle's usage (the tiebreak includes the
        # entry itself), so we can navigate directly to the node.
        while node is not None and node.sort_key != sort_key:
            parent = node
            if sort_key < node.sort_key:
                node, went_left = node.left, True
            else:
                node, went_left = node.right, False
        if node is None:  # pragma: no cover - defensive: map out of sync
            raise KeyError(entry)
        replacement = self._merge(node.left, node.right)
        if parent is None:
            self._root = replacement
        elif went_left:
            parent.left = replacement
        else:
            parent.right = replacement
        # Fix sizes on the root-to-parent path.
        self._refresh_path(sort_key)

    def _refresh_path(self, sort_key: Any) -> None:
        path = []
        node = self._root
        while node is not None:
            path.append(node)
            if sort_key < node.sort_key:
                node = node.left
            elif sort_key > node.sort_key:
                node = node.right
            else:
                break
        for n in reversed(path):
            n.refresh()

    def min(self) -> tuple[Any, Any]:
        """Return ``(sort_key, entry)`` with the smallest sort key."""
        node = self._root
        if node is None:
            raise KeyError("treap is empty")
        while node.left is not None:
            node = node.left
        return node.sort_key, node.entry

    def pop_min(self) -> tuple[Any, Any]:
        """Remove and return ``(sort_key, entry)`` with the smallest sort key."""
        sort_key, entry = self.min()
        self.remove(entry)
        return sort_key, entry

    def pop_min_many(self, count: int) -> list[tuple[Any, Any]]:
        """Remove and return the ``count`` smallest ``(sort_key, entry)`` pairs.

        One ``select`` + one ``split`` detaches the whole prefix in
        ``O(log n + count)``, versus ``count`` full root-to-leaf descents
        for repeated :meth:`pop_min` — the treap half of the proxy's
        batched fake-query selection.  Results are in ascending sort-key
        order, exactly the sequence repeated :meth:`pop_min` would yield.
        """
        if OBS.enabled:
            start = time.perf_counter()
            out = self._pop_min_many(count)
            OBS.observe_kernel("treap.pop_min_many",
                               time.perf_counter() - start, len(out))
            return out
        return self._pop_min_many(count)

    def _pop_min_many(self, count: int) -> list[tuple[Any, Any]]:
        if count <= 0:
            return []
        if count >= len(self._position):
            detached, self._root = self._root, None
        else:
            # Sort keys are unique, so everything strictly below the
            # (count+1)-th smallest key is exactly the count-element prefix.
            boundary, _ = self.select(count)
            detached, self._root = self._split(self._root, boundary)
        removed: list[tuple[Any, Any]] = []
        stack: list[_Node] = []
        node = detached
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            removed.append((node.sort_key, node.entry))
            node = node.right
        for _, entry in removed:
            del self._position[entry]
        return removed

    def select(self, rank: int) -> tuple[Any, Any]:
        """Return ``(sort_key, entry)`` of the ``rank``-th smallest element.

        O(log n) via subtree sizes; used by the uniform-random fake-query
        ablation to draw a uniformly random entry.
        """
        if not 0 <= rank < len(self._position):
            raise IndexError(rank)
        node = self._root
        while node is not None:
            left_size = node.left.size if node.left is not None else 0
            if rank < left_size:
                node = node.left
            elif rank == left_size:
                return node.sort_key, node.entry
            else:
                rank -= left_size + 1
                node = node.right
        raise IndexError(rank)  # pragma: no cover - sizes guarantee a hit

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield ``(sort_key, entry)`` in ascending sort-key order."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.sort_key, node.entry
            node = node.right

    def check_invariants(self) -> None:
        """Verify BST order, heap order and size bookkeeping (tests only)."""
        entries = list(self.items())
        keys = [sk for sk, _ in entries]
        if keys != sorted(keys):
            raise AssertionError("BST order violated")
        if len(entries) != len(self._position):
            raise AssertionError("position map out of sync with tree")

        def walk(node: _Node | None) -> int:
            if node is None:
                return 0
            for child in (node.left, node.right):
                if child is not None and child.priority > node.priority:
                    raise AssertionError("heap order violated")
            size = 1 + walk(node.left) + walk(node.right)
            if size != node.size:
                raise AssertionError("size bookkeeping violated")
            return size

        walk(self._root)
