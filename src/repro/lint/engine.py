"""The ``oblint`` engine: file discovery, suppressions, allowlist, report.

``oblint`` is a domain-specific static-analysis suite that proves (at
lint time) the invariants Waffle's security argument rests on: the
adversary-visible access sequence must be independent of plaintext keys
(Theorem 5.1), replay must be deterministic (the chaos harness's
differential oracle re-executes episodes from a seed), and every server
access must flow through the recording wrapper / ``commit_round``
contract.  The chaos oracle checks these properties on sampled episodes
at runtime; ``oblint`` enforces them on every commit over the whole
source tree.

Architecture
------------
* a :class:`Rule` is a plugin: an id (``OBL...``), a severity, a
  description, and a ``check(module)`` generator producing
  :class:`Finding` objects;
* the :class:`LintEngine` parses each file once into a :class:`Module`
  (AST + source + comment-derived suppressions) and runs every rule;
* findings are filtered through **inline suppressions**
  (``# oblint: disable=RULE -- reason``, same line) and the repo-level
  **allowlist** (``.oblint.json``); both must carry a written reason —
  a reasonless suppression is itself reported (``OBL001``).

The suppression / allowlist policy is deliberately strict: every
exception to a security invariant must state its security argument in
the place the exception is made, so reviewers see the claim next to the
code it covers (DESIGN.md §9).
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "AllowlistEntry",
    "Finding",
    "LintEngine",
    "LintReport",
    "Module",
    "Rule",
    "load_allowlist",
]

#: ``# oblint: disable=OBL201,OBL303 -- reason`` (reason mandatory; the
#: separator accepts an em dash or two or more ASCII hyphens).
_SUPPRESSION_RE = re.compile(
    r"#\s*oblint:\s*disable=([A-Z0-9,\s]+?)\s*(?:(?:—|–|--+)\s*(.*))?$"
)

#: ``# oblint-fixture-path: repro/core/planted.py`` — lets test fixtures
#: pretend to live at a path so path-scoped rules apply to them.
_FIXTURE_PATH_RE = re.compile(r"#\s*oblint-fixture-path:\s*(\S+)")

#: Editor/merge droppings that must never be committed to a linted tree
#: (OBL004); a stray ``.tmp`` next to a module is dead code waiting to be
#: confused with the real thing.
_ARTIFACT_PATTERNS = ("*.tmp", "*.orig", "*.rej", "*.bak")

#: Findings the engine emits itself (no :class:`Rule` plugin): OBL001/2
#: suppression hygiene, OBL003 stale allowlist entries, OBL004 stray
#: artifact files.  Registered as known ids so suppressing or
#: allowlisting them is not itself flagged as an unknown rule.
_ENGINE_RULE_IDS = frozenset({"OBL001", "OBL002", "OBL003", "OBL004"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # module-relative posix path, e.g. "repro/core/proxy.py"
    line: int
    col: int
    message: str
    severity: str = "error"  # "error" | "warning"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity} {self.rule}: {self.message}")


@dataclass(frozen=True)
class _Suppression:
    rules: tuple[str, ...]
    reason: str
    line: int


@dataclass(frozen=True)
class AllowlistEntry:
    """One repo-level exception: a rule pinned to a path glob + reason."""

    rule: str
    path: str  # fnmatch glob over the module-relative path
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (fnmatch.fnmatchcase(finding.rule, self.rule)
                and fnmatch.fnmatchcase(finding.path, self.path))


class Module:
    """One parsed source file handed to every rule."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.relpath = relpath
        self.suppressions: dict[int, list[_Suppression]] = {}
        self._scan_comments()

    def _comments(self) -> Iterator[tuple[int, str]]:
        """Yield (lineno, text) for real COMMENT tokens only — docstrings
        and string literals mentioning the syntax must not count."""
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except tokenize.TokenError:  # pragma: no cover - parse caught it
            return

    def _scan_comments(self) -> None:
        for lineno, text in self._comments():
            override = _FIXTURE_PATH_RE.search(text)
            if override:
                #: Fixtures may re-home themselves so path-scoped rules
                #: apply: ``# oblint-fixture-path: repro/core/planted.py``.
                self.relpath = override.group(1)
            if "oblint" not in text:
                continue
            match = _SUPPRESSION_RE.search(text)
            if not match:
                continue
            rules = tuple(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )
            reason = (match.group(2) or "").strip()
            self.suppressions.setdefault(lineno, []).append(
                _Suppression(rules=rules, reason=reason, line=lineno)
            )

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` under ``rule``."""
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=rule.severity,
        )


class Rule:
    """Base class every lint rule plugs into the engine with.

    Subclasses set :attr:`id` (``OBLnnn``), :attr:`name` (a short slug
    used in reports), :attr:`severity` and :attr:`description`, and
    implement :meth:`check`.
    """

    id = "OBL000"
    name = "abstract-rule"
    severity = "error"
    description = ""

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id} {self.name}>"


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    allowlisted: list[tuple[Finding, AllowlistEntry]] = field(
        default_factory=list)
    files_checked: int = 0
    rules_run: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule))]
        lines.append(
            f"oblint: {self.files_checked} files, {self.rules_run} rules: "
            f"{len(self.errors)} error(s), "
            f"{len(self.findings) - len(self.errors)} warning(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.allowlisted)} allowlisted"
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "findings": [vars(f) for f in self.findings],
            "suppressed": [
                {"finding": vars(f), "reason": reason}
                for f, reason in self.suppressed
            ],
            "allowlisted": [
                {"finding": vars(f), "rule": entry.rule,
                 "path": entry.path, "reason": entry.reason}
                for f, entry in self.allowlisted
            ],
        }


def load_allowlist(path: str | Path) -> list[AllowlistEntry]:
    """Load ``.oblint.json``: ``{"entries": [{rule, path, reason}, ...]}``.

    Every entry must carry a non-empty ``reason`` — the file is the
    repo's catalogue of accepted security exceptions, not a mute button.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = []
    for i, item in enumerate(raw.get("entries", [])):
        rule = item.get("rule", "")
        glob = item.get("path", "")
        reason = (item.get("reason") or "").strip()
        if not rule or not glob:
            raise ValueError(f"allowlist entry {i} needs 'rule' and 'path'")
        if not reason:
            raise ValueError(
                f"allowlist entry {i} ({rule} @ {glob}) has no reason; "
                "every exception must state its security argument"
            )
        entries.append(AllowlistEntry(rule=rule, path=glob, reason=reason))
    return entries


class LintEngine:
    """Runs a rule set over a source tree and filters the findings."""

    def __init__(self, rules: Sequence[Rule],
                 allowlist: Sequence[AllowlistEntry] = ()) -> None:
        ids = [rule.id for rule in rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids: {ids}")
        self.rules = list(rules)
        self.allowlist = list(allowlist)
        self.known_ids = set(ids) | set(_ENGINE_RULE_IDS)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    @staticmethod
    def discover(paths: Iterable[str | Path]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: set[Path] = set()
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                files.update(p for p in path.rglob("*.py")
                             if "__pycache__" not in p.parts)
            elif path.suffix == ".py":
                files.add(path)
        return sorted(files)

    @staticmethod
    def _relpath(path: Path) -> str:
        """Module-relative posix path: everything from the top package.

        ``/repo/src/repro/core/proxy.py`` -> ``repro/core/proxy.py``;
        files outside a package keep their file name.
        """
        resolved = path.resolve()
        parts = list(resolved.parts)
        top = len(parts) - 1
        for i in range(len(parts) - 2, -1, -1):
            if (Path(*parts[: i + 1]) / "__init__.py").exists():
                top = i
            else:
                break
        return "/".join(parts[top:])

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @staticmethod
    def _stray_artifacts(paths: Iterable[str | Path]) -> list[Path]:
        """Artifact files (``*.tmp``/``*.orig``/...) under ``paths``."""
        found: set[Path] = set()
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                for pattern in _ARTIFACT_PATTERNS:
                    found.update(p for p in path.rglob(pattern)
                                 if "__pycache__" not in p.parts)
            elif path.exists() and any(
                    fnmatch.fnmatchcase(path.name, pattern)
                    for pattern in _ARTIFACT_PATTERNS):
                found.add(path)
        return sorted(found)

    def run(self, paths: Iterable[str | Path]) -> LintReport:
        report = LintReport(rules_run=len(self.rules))
        used_allowlist: set[int] = set()
        # OBL004: artifact files are findings even though they are not
        # Python modules (and therefore can carry no inline suppression;
        # only the allowlist can except them).
        for stray in self._stray_artifacts(paths):
            finding = Finding(
                rule="OBL004", path=self._relpath(stray), line=1, col=1,
                message=(f"stray editor/merge artifact {stray.name!r} "
                         "committed to the tree; delete it"))
            for i, entry in enumerate(self.allowlist):
                if entry.matches(finding):
                    used_allowlist.add(i)
                    report.allowlisted.append((finding, entry))
                    break
            else:
                report.findings.append(finding)
        for path in self.discover(paths):
            source = path.read_text(encoding="utf-8")
            try:
                module = Module(path, self._relpath(path), source)
            except SyntaxError as error:
                report.findings.append(Finding(
                    rule="OBL002", path=self._relpath(path),
                    line=error.lineno or 1, col=(error.offset or 0) + 1,
                    message=f"file does not parse: {error.msg}"))
                report.files_checked += 1
                continue
            report.files_checked += 1
            self._check_suppression_hygiene(module, report)
            for rule in self.rules:
                for finding in rule.check(module):
                    self._file_finding(module, finding, report,
                                       used_allowlist)
        for i, entry in enumerate(self.allowlist):
            if i not in used_allowlist:
                report.findings.append(Finding(
                    rule="OBL003", path=entry.path, line=1, col=1,
                    severity="warning",
                    message=(f"allowlist entry for {entry.rule} matched "
                             "nothing; delete it or fix the glob")))
        return report

    def _file_finding(self, module: Module, finding: Finding,
                      report: LintReport,
                      used_allowlist: set[int]) -> None:
        for suppression in module.suppressions.get(finding.line, []):
            if finding.rule in suppression.rules and suppression.reason:
                report.suppressed.append((finding, suppression.reason))
                return
        for i, entry in enumerate(self.allowlist):
            if entry.matches(finding):
                used_allowlist.add(i)
                report.allowlisted.append((finding, entry))
                return
        report.findings.append(finding)

    def _check_suppression_hygiene(self, module: Module,
                                   report: LintReport) -> None:
        """OBL001: reasonless suppressions; OBL002: unknown rule ids."""
        for suppressions in module.suppressions.values():
            for suppression in suppressions:
                if not suppression.reason:
                    report.findings.append(Finding(
                        rule="OBL001", path=module.relpath,
                        line=suppression.line, col=1,
                        message=("suppression without a reason; write "
                                 "'# oblint: disable=RULE -- why this is "
                                 "safe'")))
                for rule_id in suppression.rules:
                    if rule_id not in self.known_ids:
                        report.findings.append(Finding(
                            rule="OBL002", path=module.relpath,
                            line=suppression.line, col=1,
                            message=f"unknown rule id {rule_id!r} in "
                                    "suppression"))
