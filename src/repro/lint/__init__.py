"""``oblint``: domain-specific static analysis for oblivious-protocol code.

Public surface::

    from repro.lint import run_lint
    report = run_lint(["src/repro"])        # uses .oblint.json if present
    print(report.describe())                # doctest-style; CLI does this
    sys.exit(0 if report.ok else 1)

Rules (see :mod:`repro.lint.rules` and DESIGN.md §9):

=======  ==========================================================
OBL001   suppression comment without a reason
OBL002   unknown rule id in a suppression / unparsable file
OBL003   allowlist entry that matched nothing (warning)
OBL004   stray editor/merge artifact (*.tmp, *.orig, ...) in the tree
OBL101   plaintext key/value reaches a server-storage call
OBL102   plaintext key/value reaches a trace/log emission
OBL103   key-dependent branch guards server I/O
OBL201   wall-clock / raw monotonic read; obs.clock() outside obs,analysis
OBL202   unseeded random.Random() / stray SystemRandom
OBL203   module-level random.* call (shared global RNG)
OBL204   os.urandom outside crypto/
OBL205   hash-order-dependent iteration over a set
OBL301   concrete backend constructed inside core/ha
OBL302   socket use outside net/
OBL303   print() outside cli.py / dashboard
OBL304   store delete bypassing the commit_round contract
OBL305   native crypto wheel (nacl/cryptography) imported outside crypto/
OBL401   lock-owning class mutates shared state without its lock
OBL501   missing annotations in the mypy-strict gated packages
=======  ==========================================================
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.engine import (
    AllowlistEntry,
    Finding,
    LintEngine,
    LintReport,
    Module,
    Rule,
    load_allowlist,
)
from repro.lint.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "AllowlistEntry",
    "Finding",
    "LintEngine",
    "LintReport",
    "Module",
    "Rule",
    "default_rules",
    "find_allowlist",
    "load_allowlist",
    "run_lint",
]

ALLOWLIST_NAME = ".oblint.json"


def find_allowlist(start: str | Path) -> Path | None:
    """Walk up from ``start`` looking for the repo-level allowlist."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        path = candidate / ALLOWLIST_NAME
        if path.is_file():
            return path
    return None


def run_lint(paths: Iterable[str | Path],
             allowlist: str | Path | Sequence[AllowlistEntry] | None = None,
             rules: Sequence[Rule] | None = None) -> LintReport:
    """Lint ``paths`` with the default rule set.

    ``allowlist`` may be a path to ``.oblint.json``, pre-loaded entries,
    or ``None`` to auto-discover the file above the first path.
    """
    paths = list(paths)
    if allowlist is None:
        found = find_allowlist(paths[0]) if paths else None
        entries: Sequence[AllowlistEntry] = (
            load_allowlist(found) if found else ())
    elif isinstance(allowlist, (str, Path)):
        entries = load_allowlist(allowlist)
    else:
        entries = allowlist
    engine = LintEngine(default_rules(), entries)
    return engine.run(paths)
