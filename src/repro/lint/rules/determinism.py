"""Determinism rules: everything must replay bit-identically from a seed.

The chaos harness (PR 3) re-executes recorded episodes and compares the
adversary-visible trace against the original — a guarantee that is
fiction the moment any code path consults the wall clock, the process
RNG, or hash-seed-dependent iteration order.  These rules pin the whole
tree (not just ``core/``) to the sim clock and injected seeded
``random.Random`` instances.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, Module, Rule
from repro.lint.rules._util import ImportMap, walk_scope

__all__ = [
    "SetIterationOrderRule",
    "UnseededRngRule",
    "UrandomOutsideCryptoRule",
    "WallClockRule",
    "WildRandomCallRule",
]

_WALLCLOCK = {
    "time.time": "time.time() reads the wall clock",
    "time.time_ns": "time.time_ns() reads the wall clock",
    "datetime.datetime.now": "datetime.now() reads the wall clock",
    "datetime.datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.datetime.today": "datetime.today() reads the wall clock",
    "datetime.date.today": "date.today() reads the wall clock",
}

#: Raw monotonic reads: not wall-clock, but still host time — protocol
#: code that branches on them stops replaying.  The one sanctioned
#: funnel is ``repro.obs.clock()``, itself allowed only where timestamps
#: are observation, not protocol input.
_MONOTONIC = {
    "time.monotonic": "time.monotonic() reads host time",
    "time.monotonic_ns": "time.monotonic_ns() reads host time",
}

#: Where the sanctioned ``repro.obs.clock`` funnel may be called: the
#: observability layer itself and the analysis observers that timestamp
#: adversary-visible instants (the timing-leakage observatory).
_CLOCK_OK = ("repro/obs/", "repro/analysis/")

#: Constructors/attributes on ``random`` that are fine when seeded.
_RNG_CLASSES = {"Random", "SystemRandom"}


class WallClockRule(Rule):
    id = "OBL201"
    name = "wallclock"
    description = ("wall-clock and raw monotonic reads (time.time, "
                   "datetime.now, time.monotonic, ...) break chaos replay; "
                   "use the sim clock, time.perf_counter for local "
                   "measurement, or obs.clock() (obs/ and analysis/ only) "
                   "for observation timestamps")

    def check(self, module: Module) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved in _WALLCLOCK:
                yield module.finding(
                    self, node,
                    f"{_WALLCLOCK[resolved]}; replay is no longer "
                    "deterministic — route through the sim clock")
            elif resolved in _MONOTONIC:
                # obs/ implements the sanctioned funnel, so the raw read
                # is allowed there and nowhere else.
                if not module.relpath.startswith("repro/obs/"):
                    yield module.finding(
                        self, node,
                        f"{_MONOTONIC[resolved]}; observation timestamps "
                        "go through repro.obs.clock(), protocol time "
                        "through the sim clock")
            elif resolved == "repro.obs.clock":
                if not module.relpath.startswith(_CLOCK_OK):
                    yield module.finding(
                        self, node,
                        "obs.clock() is sanctioned only inside obs/ and "
                        "analysis/ (observation timestamps); protocol "
                        "code must use the sim clock")


class UnseededRngRule(Rule):
    id = "OBL202"
    name = "unseeded-rng"
    description = ("random.Random() without an explicit seed (or seeded "
                   "with None) draws from OS entropy; SystemRandom outside "
                   "crypto/ is never replayable")

    def check(self, module: Module) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for scope, optional_params in self._scopes(module.tree):
            for node in walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                resolved = imports.resolve(node.func)
                if resolved == "random.Random":
                    if self._possibly_unseeded(node, optional_params):
                        yield module.finding(
                            self, node,
                            "random.Random() without a guaranteed seed; "
                            "pass a derived integer seed so chaos replay "
                            "is exact")
                elif resolved == "random.SystemRandom":
                    if not module.relpath.startswith("repro/crypto/"):
                        yield module.finding(
                            self, node,
                            "SystemRandom outside crypto/ cannot be "
                            "replayed; inject a seeded random.Random "
                            "instead")

    @staticmethod
    def _scopes(tree: ast.AST):
        """Yield (scope, names-of-params-defaulting-to-None) pairs."""
        yield tree, frozenset()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            optional: set[str] = set()
            args = node.args
            positional = [*args.posonlyargs, *args.args]
            for arg, default in zip(positional[len(positional)
                                               - len(args.defaults):],
                                    args.defaults):
                if isinstance(default, ast.Constant) and default.value is None:
                    optional.add(arg.arg)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if isinstance(default, ast.Constant) and default.value is None:
                    optional.add(arg.arg)
            yield node, frozenset(optional)

    @staticmethod
    def _possibly_unseeded(call: ast.Call,
                           optional_params: frozenset[str]) -> bool:
        if not call.args:
            return True
        seed = call.args[0]
        # `Random(seed)` where ``seed`` is a parameter defaulting to None
        # silently falls back to OS entropy for every caller that omits
        # it — the exact hole that makes "replay from a seed" fiction.
        if isinstance(seed, ast.Name) and seed.id in optional_params:
            return True
        # Likewise a literal None surviving anywhere in the expression,
        # e.g. `Random(None if seed is None else seed + 1)`.
        return any(isinstance(sub, ast.Constant) and sub.value is None
                   for sub in ast.walk(seed))


class WildRandomCallRule(Rule):
    id = "OBL203"
    name = "module-level-random"
    description = ("module-level random.* calls share mutable global state "
                   "across components; use an injected seeded "
                   "random.Random instance")

    def check(self, module: Module) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if (resolved and resolved.startswith("random.")
                    and resolved.split(".", 1)[1] not in _RNG_CLASSES):
                yield module.finding(
                    self, node,
                    f"call to module-level {resolved}(); the global RNG is "
                    "shared process state — draw from an injected "
                    "random.Random(seed)")


class UrandomOutsideCryptoRule(Rule):
    id = "OBL204"
    name = "urandom-outside-crypto"
    description = ("os.urandom outside crypto/ injects fresh OS entropy "
                   "into protocol state, breaking replay; key material "
                   "generation in crypto/ is the one legitimate user")

    def check(self, module: Module) -> Iterator[Finding]:
        if module.relpath.startswith("repro/crypto/"):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if imports.resolve(node.func) == "os.urandom":
                yield module.finding(
                    self, node,
                    "os.urandom outside crypto/; derive bytes from a "
                    "seeded RNG (rng.randbytes) or move into crypto/")


class SetIterationOrderRule(Rule):
    id = "OBL205"
    name = "set-iteration-order"
    description = ("iterating a set of ids depends on PYTHONHASHSEED for "
                   "str keys: two runs of the same episode emit requests "
                   "in different orders; wrap in sorted()")

    _CONVERTERS = {"list", "tuple"}
    _SET_MAKERS = {"set", "frozenset"}

    def check(self, module: Module) -> Iterator[Finding]:
        for fn_or_mod in self._scopes(module.tree):
            set_vars = self._set_vars(fn_or_mod)
            for node in self._iter_sites(fn_or_mod):
                target = self._iter_expr(node)
                if target is None:
                    continue
                if self._is_set_expr(target, set_vars):
                    yield module.finding(
                        self, node,
                        "iteration over a set is hash-order dependent; "
                        "wrap the set in sorted() for a canonical order")

    @staticmethod
    def _scopes(tree: ast.AST):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _set_vars(self, scope: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in walk_scope(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                if self._makes_set(node.value):
                    names.add(node.targets[0].id)
                else:
                    names.discard(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                note = ast.dump(node.annotation)
                if "'set'" in note or "'Set'" in note:
                    names.add(node.target.id)
        return names

    def _makes_set(self, expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in self._SET_MAKERS:
            return True
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._makes_set(expr.left) or self._makes_set(expr.right)
        return False

    @staticmethod
    def _iter_sites(scope: ast.AST):
        for node in walk_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) and node.func.id in {"list", "tuple"}:
                yield node
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                yield node

    @staticmethod
    def _iter_expr(node: ast.AST) -> ast.AST | None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return node.iter
        if isinstance(node, ast.Call) and node.args:
            return node.args[0]
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            return node.generators[0].iter
        return None

    def _is_set_expr(self, expr: ast.AST, set_vars: set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in set_vars
        if self._makes_set(expr):
            return True
        return False
