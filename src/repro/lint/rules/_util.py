"""Shared AST helpers for oblint rules."""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "dotted_name", "receiver_name", "walk_functions",
           "walk_scope"]


def walk_scope(scope: ast.AST):
    """Walk ``scope`` without descending into nested function scopes."""
    yield scope
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_name(func: ast.AST) -> str | None:
    """For ``a.b.method(...)`` return ``b`` — the immediate receiver."""
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Attribute):
            return base.attr
        if isinstance(base, ast.Name):
            return base.id
    return None


class ImportMap:
    """Alias resolution for a module: maps local names to dotted origins.

    ``import random as r`` -> ``r`` resolves to ``random``;
    ``from os import urandom`` -> ``urandom`` resolves to ``os.urandom``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain through the import aliases."""
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return name
        return f"{origin}.{rest}" if rest else origin


def walk_functions(tree: ast.AST):
    """Yield every (Async)FunctionDef in the tree, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
