"""Concurrency rule: shared state mutates only under its owning lock.

Classes that create a ``threading.Lock``/``RLock``/``Condition`` in
``__init__`` have declared which attributes are shared across threads.
Any other method that writes ``self.<attr>`` (assignment, augmented
assignment, subscript store, or a mutating method call such as
``.append``) outside a ``with self.<lock>:`` block is a data race — the
batch frontend and the network server both dispatch from worker threads.
``__init__`` itself runs before the object escapes to other threads and
is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, Module, Rule
from repro.lint.rules._util import dotted_name

__all__ = ["UnlockedSharedWriteRule"]

_LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "Lock", "RLock", "Condition",
}

#: Method names that mutate their receiver in place.  ``set`` is
#: deliberately absent: ``Event.set()`` is itself thread-safe.
_MUTATORS = {
    "append", "extend", "add", "insert", "remove", "discard", "pop",
    "popitem", "popleft", "appendleft", "clear", "update", "setdefault",
}

_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


class UnlockedSharedWriteRule(Rule):
    id = "OBL401"
    name = "unlocked-shared-write"
    description = ("attribute of a lock-owning class mutated outside "
                   "'with self.<lock>:'; worker threads race on it")

    def check(self, module: Module) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = self._lock_attrs(cls)
            if not locks:
                continue
            for method in cls.body:
                if not isinstance(method,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                yield from self._check_method(module, method, locks)

    @staticmethod
    def _lock_attrs(cls: ast.ClassDef) -> set[str]:
        """Names of self attributes bound to a lock in ``__init__``."""
        locks: set[str] = set()
        for method in cls.body:
            if not (isinstance(method, ast.FunctionDef)
                    and method.name == "__init__"):
                continue
            for node in ast.walk(method):
                if not (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)):
                    continue
                factory = dotted_name(node.value.func)
                is_lock = factory in _LOCK_FACTORIES
                # threading.Condition(self._lock) shares the lock: the
                # condition attribute is a lock handle too.
                if not is_lock:
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        locks.add(target.attr)
        return locks

    def _check_method(self, module: Module, method: ast.AST,
                      locks: set[str]) -> Iterator[Finding]:
        yield from self._walk(module, list(method.body), locks,  # type: ignore[attr-defined]
                              held=False)

    def _walk(self, module: Module, body: list[ast.stmt],
              locks: set[str], held: bool) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner_held = held or any(
                    self._is_lock_expr(item.context_expr, locks)
                    for item in stmt.items)
                yield from self._walk(module, stmt.body, locks, inner_held)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs run later, in unknown lock context
            if not held:
                yield from self._flag_writes(module, stmt, locks)
            for field_name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, field_name, None)
                if isinstance(block, list):
                    yield from self._walk(module, block, locks, held)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    yield from self._walk(module, handler.body, locks, held)

    @staticmethod
    def _is_lock_expr(expr: ast.AST, locks: set[str]) -> bool:
        return (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in locks)

    def _flag_writes(self, module: Module, stmt: ast.stmt,
                     locks: set[str]) -> Iterator[Finding]:
        # Only the statement's own (non-compound) expression is examined
        # here; compound bodies are recursed into by _walk.
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                attr = self._self_attr_target(target)
                if attr and attr not in locks:
                    yield module.finding(
                        self, stmt,
                        f"write to self.{attr} outside the owning lock; "
                        "wrap in 'with self.<lock>:'")
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"):
                yield module.finding(
                    self, stmt,
                    f"self.{func.value.attr}.{func.attr}() outside the "
                    "owning lock; wrap in 'with self.<lock>:'")

    @staticmethod
    def _self_attr_target(target: ast.AST) -> str | None:
        """self.x = / self.x[k] = — return the attribute name."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = UnlockedSharedWriteRule._self_attr_target(element)
                if found:
                    return found
        return None
