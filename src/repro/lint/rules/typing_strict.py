"""Typing-completeness rule for the mypy-strict-gated packages.

CI runs ``mypy --strict`` on ``crypto/``, ``core/``, ``ds/`` and
``storage/``; this rule is the local, dependency-free proxy for the two
strict flags that catch the most regressions — ``disallow_untyped_defs``
and ``disallow_incomplete_defs`` — so a missing annotation fails
``repro.cli lint`` on the developer's machine even when mypy is not
installed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, Module, Rule

__all__ = ["TypingCompletenessRule"]

_GATED = ("repro/crypto/", "repro/core/", "repro/ds/", "repro/storage/")


class TypingCompletenessRule(Rule):
    id = "OBL501"
    name = "typing-completeness"
    description = ("every def in the mypy-strict gated packages "
                   "(crypto/, core/, ds/, storage/) must annotate all "
                   "parameters and its return type")

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.relpath.startswith(_GATED):
            return
        for parent, fn in self._methods(module.tree):
            missing = self._missing(fn, is_method=isinstance(
                parent, ast.ClassDef))
            if missing:
                yield module.finding(
                    self, fn,
                    f"def {fn.name}(...) missing annotations for "
                    f"{', '.join(missing)}; mypy --strict will reject it")

    @staticmethod
    def _methods(tree: ast.AST):
        stack: list[tuple[ast.AST, ast.AST]] = [(tree, tree)]
        while stack:
            parent, node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    yield node, child
                    stack.append((node, child))
                elif isinstance(child, ast.ClassDef):
                    stack.append((child, child))
                else:
                    stack.append((parent, child))

    @staticmethod
    def _missing(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 is_method: bool) -> list[str]:
        missing: list[str] = []
        args = fn.args
        positional = [*args.posonlyargs, *args.args]
        skip_first = is_method and positional and positional[0].arg in (
            "self", "cls")
        for i, arg in enumerate(positional):
            if i == 0 and skip_first:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        has_params = bool(positional[1:] if skip_first else positional) \
            or bool(args.kwonlyargs) or args.vararg or args.kwarg
        # mypy --strict accepts `def __init__(self, x: int):` without a
        # return annotation, but a zero-arg __init__ needs `-> None`.
        init_exempt = fn.name == "__init__" and has_params
        if fn.returns is None and not init_exempt:
            missing.append("return")
        return missing
