"""Rule registry: every oblint rule plugin, in id order."""

from __future__ import annotations

from repro.lint.engine import Rule
from repro.lint.rules.concurrency import UnlockedSharedWriteRule
from repro.lint.rules.determinism import (
    SetIterationOrderRule,
    UnseededRngRule,
    UrandomOutsideCryptoRule,
    WallClockRule,
    WildRandomCallRule,
)
from repro.lint.rules.layering import (
    NativeCryptoImportRule,
    PrintOutsideCliRule,
    RawBackendRule,
    SocketOutsideNetRule,
    UnbatchedDeleteRule,
)
from repro.lint.rules.secretflow import (
    SecretToServerRule,
    SecretToTraceRule,
    TaintedBranchRule,
)
from repro.lint.rules.typing_strict import TypingCompletenessRule

__all__ = ["ALL_RULES", "default_rules"]

ALL_RULES: tuple[type[Rule], ...] = (
    SecretToServerRule,
    SecretToTraceRule,
    TaintedBranchRule,
    WallClockRule,
    UnseededRngRule,
    WildRandomCallRule,
    UrandomOutsideCryptoRule,
    SetIterationOrderRule,
    RawBackendRule,
    SocketOutsideNetRule,
    PrintOutsideCliRule,
    UnbatchedDeleteRule,
    NativeCryptoImportRule,
    UnlockedSharedWriteRule,
    TypingCompletenessRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [rule() for rule in ALL_RULES]
