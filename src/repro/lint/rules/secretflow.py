"""Secret-flow taint rules: plaintext keys never reach the server's view.

Theorem 5.1's argument is that the adversary-visible sequence — storage
ids, batch contents, timing — is computable without the plaintext keys.
These rules run an intra-procedural taint analysis over ``core/`` and
``baselines/``: plaintext keys/values are **sources**, the PRF/AEAD
kernels are **sanitizers**, and server-storage calls, trace/log emission,
and branches guarding server I/O are **sinks**.

Taint is two bits per variable, which is what makes the analysis usable
on the real proxy: for the round's ``read_batch = {sid: key}`` dict the
*keys* (what ``sorted(read_batch)`` yields and what the server sees) are
PRF outputs and clean, while the *values* are plaintext keys and tainted.
A single-bit analysis would poison the whole dict and flag the honest
``multi_get(sorted(read_batch))`` hot path.

* ``ELEMS`` — the taint of what iteration over the value yields
  (dict keys, list/set elements; for scalars, the value itself);
* ``VALUES`` — the taint of what subscripting yields (dict values;
  equal to ``ELEMS`` for everything else).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, Module, Rule
from repro.lint.rules._util import receiver_name

__all__ = [
    "SecretToServerRule",
    "SecretToTraceRule",
    "TaintedBranchRule",
]

ELEMS = 1
VALUES = 2
BOTH = ELEMS | VALUES

_SCOPES = ("repro/core/", "repro/baselines/")

#: Parameter names that carry plaintext keys or values.
_SOURCE_PARAMS = {
    "key", "keys", "items", "plaintext", "plaintexts",
    "value", "values", "request", "requests",
}
#: Attribute loads that yield plaintext (e.g. ``op.key``).
_SOURCE_ATTRS = {"key", "plaintext"}
#: Calls that *produce* plaintext from ciphertext.
_SOURCE_CALLS = {"decrypt", "decrypt_many"}

#: Calls whose output is sanctified: PRF-derived ids, AEAD ciphertext,
#: and the codebase's id-encoding helpers built on them.
_SANITIZERS = {
    "derive", "derive_many", "derive_bytes", "derive_batch",
    "encrypt", "encrypt_many", "seal", "seal_many",
    "_encode_id", "_encode_ids", "_get_index",
    "hexdigest", "digest", "hash_key",
}

#: Pure helpers that never launder taint but also never create it.
_CLEAN_BUILTINS = {
    "len", "range", "int", "float", "bool", "str", "isinstance", "min",
    "max", "sum", "abs", "id", "repr", "type", "round", "divmod",
}

_SERVER_METHODS = {
    "get", "put", "delete", "multi_get", "multi_put", "multi_delete",
    "commit_round", "execute",
}
_STOREISH = ("store", "backend", "server", "redis", "inner", "storage")

_TRACE_METHODS = {"event", "span", "record_span", "observe_span",
                  "observe_kernel", "debug", "info", "warning", "log"}
_TRACEISH = ("obs", "tracer", "trace", "log", "logger")


def _is_server_sink(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute)
            and func.attr in _SERVER_METHODS):
        return False
    recv = receiver_name(func)
    return bool(recv) and any(s in recv.lower() for s in _STOREISH)


def _is_trace_sink(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute)
            and func.attr in _TRACE_METHODS):
        return False
    recv = receiver_name(func)
    return bool(recv) and any(s in recv.lower() for s in _TRACEISH)


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _FunctionTaint:
    """Intra-procedural two-bit taint over one function body."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.fn = fn
        self.env: dict[str, int] = {}
        self.kinds: dict[str, str] = {}  # name -> "dict" | "seq"
        self.server_sinks: list[tuple[ast.Call, str]] = []
        self.trace_sinks: list[tuple[ast.Call, str]] = []
        self.tainted_guards: list[ast.stmt] = []
        self._collect = False
        self._seed_params()

    def _seed_params(self) -> None:
        args = self.fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in _SOURCE_PARAMS:
                self.env[arg.arg] = BOTH

    def run(self) -> None:
        # Two passes: the first stabilises taint through loops (a value
        # tainted late in the body flows into uses earlier in the next
        # iteration); the second collects findings.
        self._execute(self.fn.body)
        self._collect = True
        self._execute(self.fn.body)

    # ------------------------------------------------------------------
    # expression taint
    # ------------------------------------------------------------------
    def taint(self, node: ast.AST | None) -> int:
        if node is None or isinstance(node, ast.Constant):
            return 0
        if isinstance(node, ast.Name):
            return self.env.get(node.id, 0)
        if isinstance(node, ast.Attribute):
            mask = BOTH if node.attr in _SOURCE_ATTRS else 0
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self":
                return mask | self.env.get(f"self.{node.attr}", 0)
            return mask | self._scalar(self.taint(base))
        if isinstance(node, ast.Subscript):
            base_mask = self.taint(node.value)
            kind = self._kind_of(node.value)
            bit = VALUES if kind == "dict" else ELEMS
            return BOTH if base_mask & bit else 0
        if isinstance(node, (ast.BinOp,)):
            return self._scalar(self.taint(node.left)
                                | self.taint(node.right))
        if isinstance(node, ast.BoolOp):
            mask = 0
            for value in node.values:
                mask |= self.taint(value)
            return self._scalar(mask)
        if isinstance(node, ast.UnaryOp):
            return self._scalar(self.taint(node.operand))
        if isinstance(node, ast.Compare):
            mask = self.taint(node.left)
            for comp in node.comparators:
                mask |= self.taint(comp)
            return self._scalar(mask)
        if isinstance(node, ast.IfExp):
            return self.taint(node.body) | self.taint(node.orelse)
        if isinstance(node, ast.JoinedStr):
            mask = 0
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    mask |= self.taint(value.value)
            return self._scalar(mask)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            mask = 0
            for element in node.elts:
                if isinstance(element, ast.Starred):
                    mask |= self.taint(element.value) & ELEMS and BOTH
                else:
                    mask |= self._scalar(self.taint(element))
            return mask
        if isinstance(node, ast.Dict):
            mask = 0
            for key in node.keys:
                if key is not None and self.taint(key):
                    mask |= ELEMS
            for value in node.values:
                if self.taint(value):
                    mask |= VALUES
            return mask
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp_taint(node)
        if isinstance(node, ast.DictComp):
            return self._dictcomp_taint(node)
        if isinstance(node, ast.Starred):
            return self.taint(node.value)
        if isinstance(node, ast.Await):
            return self.taint(node.value)
        if isinstance(node, ast.NamedExpr):
            mask = self.taint(node.value)
            self.env[node.target.id] = mask
            return mask
        # Conservative default: union of child taints, scalarised.
        mask = 0
        for child in ast.iter_child_nodes(node):
            mask |= self.taint(child)
        return self._scalar(mask)

    def _call_taint(self, call: ast.Call) -> int:
        name = _callee_name(call)
        if name in _SANITIZERS:
            return 0
        if name in _SOURCE_CALLS:
            return BOTH
        if name in _CLEAN_BUILTINS:
            return 0
        if name in {"sorted", "list", "tuple", "set", "frozenset",
                    "iter", "reversed"}:
            arg_mask = self.taint(call.args[0]) if call.args else 0
            return BOTH if arg_mask & ELEMS else 0
        if name == "enumerate":
            arg_mask = self.taint(call.args[0]) if call.args else 0
            return BOTH if arg_mask & ELEMS else 0
        if name == "zip":
            mask = 0
            for arg in call.args:
                mask |= self.taint(arg)
            return BOTH if mask & ELEMS else 0
        if name in {"items", "keys", "values"} and isinstance(
                call.func, ast.Attribute):
            base_mask = self.taint(call.func.value)
            if name == "items":
                return base_mask
            bit = ELEMS if name == "keys" else VALUES
            return BOTH if base_mask & bit else 0
        if name in {"pop", "popleft", "popitem"} and isinstance(
                call.func, ast.Attribute):
            base_mask = self.taint(call.func.value)
            kind = self._kind_of(call.func.value)
            bit = VALUES if kind == "dict" and name == "pop" else ELEMS
            return BOTH if base_mask & bit else 0
        # Unknown call: propagate the union of receiver and arg taints.
        mask = 0
        if isinstance(call.func, ast.Attribute):
            mask |= self.taint(call.func.value)
        for arg in call.args:
            mask |= self.taint(arg)
        for keyword in call.keywords:
            mask |= self.taint(keyword.value)
        return self._scalar(mask)

    def _comp_taint(self, comp: ast.AST) -> int:
        saved = dict(self.env)
        for generator in comp.generators:  # type: ignore[attr-defined]
            self._bind_loop_target(generator.target, generator.iter)
        element = self.taint(comp.elt)  # type: ignore[attr-defined]
        self.env = saved
        return BOTH if element else 0

    def _dictcomp_taint(self, comp: ast.DictComp) -> int:
        saved = dict(self.env)
        for generator in comp.generators:
            self._bind_loop_target(generator.target, generator.iter)
        mask = 0
        if self.taint(comp.key):
            mask |= ELEMS
        if self.taint(comp.value):
            mask |= VALUES
        self.env = saved
        return mask

    @staticmethod
    def _scalar(mask: int) -> int:
        return BOTH if mask else 0

    def _kind_of(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return self.kinds.get(node.id)
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            return self.kinds.get(f"self.{node.attr}")
        return None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _execute(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # analysed as their own scope
        self._scan_sinks(stmt)
        if isinstance(stmt, ast.Assign):
            mask = self.taint(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, stmt.value, mask)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, stmt.value,
                                  self.taint(stmt.value))
            self._note_annotation_kind(stmt)
        elif isinstance(stmt, ast.AugAssign):
            mask = self._scalar(self.taint(stmt.value))
            name = self._target_name(stmt.target)
            if name:
                self.env[name] = self.env.get(name, 0) | mask
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt.target, stmt.iter)
            self._execute(stmt.body)
            self._execute(stmt.orelse)
        elif isinstance(stmt, (ast.If, ast.While)):
            test_mask = self.taint(stmt.test)
            if test_mask and self._collect and \
                    self._guards_server_io(stmt.body):
                self.tainted_guards.append(stmt)
            self._execute(stmt.body)
            self._execute(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, item.context_expr,
                                      self.taint(item.context_expr))
            self._execute(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._execute(stmt.body)
            for handler in stmt.handlers:
                self._execute(handler.body)
            self._execute(stmt.orelse)
            self._execute(stmt.finalbody)

    def _note_annotation_kind(self, stmt: ast.AnnAssign) -> None:
        name = self._target_name(stmt.target)
        if not name:
            return
        note = ast.dump(stmt.annotation).lower()
        if "'dict'" in note:
            self.kinds[name] = "dict"
        elif "'list'" in note or "'set'" in note or "'deque'" in note:
            self.kinds[name] = "seq"

    def _bind_target(self, target: ast.AST, value: ast.AST | None,
                     mask: int) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = mask
            if value is not None:
                self._note_kind(target.id, value)
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            self.env[f"self.{target.attr}"] = mask
            if value is not None:
                self._note_kind(f"self.{target.attr}", value)
        elif isinstance(target, ast.Subscript):
            # d[k] = v taints the container's key/value compartments.
            base = self._target_name(target.value)
            if base is None:
                return
            kind = self.kinds.get(base)
            add = 0
            if self.taint(target.slice):
                add |= ELEMS
            if mask:
                add |= VALUES if kind == "dict" else ELEMS
            self.env[base] = self.env.get(base, 0) | add
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._bind_unpack(target, value, mask)

    def _bind_unpack(self, target: ast.Tuple | ast.List,
                     value: ast.AST | None, mask: int) -> None:
        # Positional special cases: zip / items / enumerate yield tuples
        # whose members carry *different* compartments of taint.
        per_slot: list[int] | None = None
        if isinstance(value, ast.Call):
            name = _callee_name(value)
            if name == "zip":
                per_slot = [BOTH if self.taint(a) & ELEMS else 0
                            for a in value.args]
            elif name == "enumerate" and value.args:
                inner = self.taint(value.args[0])
                per_slot = [0, BOTH if inner & ELEMS else 0]
            elif name == "items" and isinstance(value.func, ast.Attribute):
                base_mask = self.taint(value.func.value)
                per_slot = [BOTH if base_mask & ELEMS else 0,
                            BOTH if base_mask & VALUES else 0]
        for i, element in enumerate(target.elts):
            if per_slot is not None and i < len(per_slot):
                self._bind_target(element, None, per_slot[i])
            else:
                self._bind_target(element, None, self._scalar(mask))

    def _bind_loop_target(self, target: ast.AST, iterable: ast.AST) -> None:
        iter_mask = self.taint(iterable)
        if isinstance(target, (ast.Tuple, ast.List)):
            self._bind_unpack(target, iterable,
                              BOTH if iter_mask & ELEMS else 0)
        else:
            self._bind_target(target, None,
                              BOTH if iter_mask & ELEMS else 0)

    @staticmethod
    def _target_name(node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            return f"self.{node.attr}"
        return None

    def _note_kind(self, name: str, value: ast.AST) -> None:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            self.kinds[name] = "dict"
        elif isinstance(value, ast.Call) and \
                _callee_name(value) in {"dict", "defaultdict",
                                        "OrderedDict", "Counter"}:
            self.kinds[name] = "dict"
        elif isinstance(value, (ast.List, ast.Set, ast.ListComp,
                                ast.SetComp)):
            self.kinds[name] = "seq"
        elif isinstance(value, ast.Call) and \
                _callee_name(value) in {"list", "set", "sorted", "deque",
                                        "tuple"}:
            self.kinds[name] = "seq"

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def _scan_sinks(self, stmt: ast.stmt) -> None:
        if not self._collect:
            return
        for node in self._own_calls(stmt):
            if _is_server_sink(node):
                for arg in (*node.args,
                            *(k.value for k in node.keywords)):
                    if self.taint(arg) & ELEMS:
                        self.server_sinks.append((node, ast.unparse(arg)))
                        break
            elif _is_trace_sink(node):
                for arg in (*node.args,
                            *(k.value for k in node.keywords)):
                    if self.taint(arg):
                        self.trace_sinks.append((node, ast.unparse(arg)))
                        break

    @staticmethod
    def _own_calls(stmt: ast.stmt):
        """Call nodes in this statement, excluding nested compound bodies
        (those are visited when _execute recurses into them)."""
        compound_blocks: set[int] = set()
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(stmt, field_name, None)
            if isinstance(block, list):
                for sub in block:
                    compound_blocks.update(
                        id(n) for n in ast.walk(sub))
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and id(node) not in compound_blocks:
                yield node

    def _guards_server_io(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _is_server_sink(node):
                    return True
        return False


def _functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class _TaintRuleBase(Rule):
    def _analyses(self, module: Module):
        if not module.relpath.startswith(_SCOPES):
            return
        for fn in _functions(module.tree):
            analysis = _FunctionTaint(fn)
            analysis.run()
            yield analysis


class SecretToServerRule(_TaintRuleBase):
    id = "OBL101"
    name = "secret-to-server"
    description = ("a plaintext key/value reaches a server-storage call "
                   "without passing through crypto.prf/crypto.aead: the "
                   "adversary-visible id stream is key-dependent")

    def check(self, module: Module) -> Iterator[Finding]:
        for analysis in self._analyses(module):
            for call, arg_src in analysis.server_sinks:
                yield module.finding(
                    self, call,
                    f"tainted argument {arg_src!r} flows into a server "
                    "storage call; route ids through crypto.prf and "
                    "payloads through crypto.aead first")


class SecretToTraceRule(_TaintRuleBase):
    id = "OBL102"
    name = "secret-to-trace"
    description = ("a plaintext key/value reaches a trace/log emission; "
                   "obs output is exportable and must stay key-neutral")

    def check(self, module: Module) -> Iterator[Finding]:
        for analysis in self._analyses(module):
            for call, arg_src in analysis.trace_sinks:
                yield module.finding(
                    self, call,
                    f"tainted value {arg_src!r} flows into a trace/log "
                    "call; emit counts or PRF-derived ids only")


class TaintedBranchRule(_TaintRuleBase):
    id = "OBL103"
    name = "tainted-branch-io"
    description = ("server I/O guarded by a key-dependent condition: "
                   "whether the access happens leaks the predicate "
                   "(the data-dependent-branch failure class)")

    def check(self, module: Module) -> Iterator[Finding]:
        for analysis in self._analyses(module):
            for stmt in analysis.tainted_guards:
                yield module.finding(
                    self, stmt,
                    "branch condition derived from a plaintext key guards "
                    "a server storage call; server I/O per round must be "
                    "unconditional (B reads + B writes)")
