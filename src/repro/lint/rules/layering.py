"""Layering rules: every server access goes through the blessed path.

The security argument treats the :class:`RecordingStore` wrapper as the
adversary's eye: whatever crosses it is what the server sees.  Core code
that instantiates a raw backend, opens its own socket, or deletes keys
outside the ``commit_round`` contract creates accesses the recording
layer never sees — the trace the chaos oracle audits is then a lie.
``print()`` is banned outside the CLI/dashboard because stray stdout
corrupts machine-readable CLI output and bypasses the obs export path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, Module, Rule
from repro.lint.rules._util import ImportMap, receiver_name

__all__ = [
    "NativeCryptoImportRule",
    "PrintOutsideCliRule",
    "RawBackendRule",
    "SocketOutsideNetRule",
    "UnbatchedDeleteRule",
]

#: Concrete backends; layered code receives a StorageBackend, it never
#: constructs one (construction lives in datastore wiring and tests).
_BACKENDS = {"RedisSim", "InMemoryStore", "PersistentStore", "ShardedStore"}

_CORE_SCOPES = ("repro/core/", "repro/ha/")
_WIRING_FILES = {"repro/core/datastore.py"}

_PRINT_OK = {"repro/cli.py", "repro/obs/dashboard.py"}

#: Store methods that mutate outside the atomic round commit.
_UNBATCHED = {"delete", "multi_delete"}

_STOREISH = ("store", "backend", "server", "redis", "inner", "storage")


class RawBackendRule(Rule):
    id = "OBL301"
    name = "raw-backend"
    description = ("core/ha code must not instantiate RedisSim or other "
                   "concrete backends: accesses would bypass the "
                   "RecordingStore wrapper the security audit observes")

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.relpath.startswith(_CORE_SCOPES):
            return
        if module.relpath in _WIRING_FILES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in _BACKENDS:
                yield module.finding(
                    self, node,
                    f"direct {name}() construction in core; accept an "
                    "injected StorageBackend so the RecordingStore "
                    "wrapper sees every access")


class SocketOutsideNetRule(Rule):
    id = "OBL302"
    name = "socket-outside-net"
    description = ("raw socket use outside net/ creates a server channel "
                   "the recording layer cannot observe")

    def check(self, module: Module) -> Iterator[Finding]:
        if module.relpath.startswith("repro/net/"):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "socket" or \
                            alias.name.startswith("socket."):
                        yield module.finding(
                            self, node,
                            "socket import outside net/; all transport "
                            "lives behind repro.net")
            elif isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                if resolved and resolved.startswith("socket."):
                    yield module.finding(
                        self, node,
                        f"direct {resolved}() outside net/; use "
                        "RemoteStore / StorageServer")


class PrintOutsideCliRule(Rule):
    id = "OBL303"
    name = "print-outside-cli"
    description = ("print() outside cli.py/dashboard bypasses the obs "
                   "export path and corrupts machine-readable output")

    def check(self, module: Module) -> Iterator[Finding]:
        if module.relpath in _PRINT_OK:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "print":
                yield module.finding(
                    self, node,
                    "print() outside the CLI; emit through the obs "
                    "export/logging path instead")


#: Native crypto wheels; every import stays inside repro/crypto/ so the
#: backend registry is the single place that probes, falls back, and
#: proves byte-identity against the pure oracle.
_NATIVE_CRYPTO = {"nacl", "cryptography"}

_CRYPTO_SCOPE = "repro/crypto/"


class NativeCryptoImportRule(Rule):
    id = "OBL305"
    name = "native-crypto-import"
    description = ("nacl/cryptography imports outside crypto/ bypass the "
                   "backend registry's availability probe and pure "
                   "fallback; only repro.crypto may touch native wheels")

    def check(self, module: Module) -> Iterator[Finding]:
        if module.relpath.startswith(_CRYPTO_SCOPE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module is not None:
                names = [node.module]
            else:
                continue
            for name in names:
                root = name.split(".", 1)[0]
                if root in _NATIVE_CRYPTO:
                    yield module.finding(
                        self, node,
                        f"import of native crypto package {root!r} "
                        "outside crypto/; go through "
                        "repro.crypto.backend.get_backend so the pure "
                        "fallback and parity oracle apply")


class UnbatchedDeleteRule(Rule):
    id = "OBL304"
    name = "unbatched-delete"
    description = ("store.delete/multi_delete in core bypasses the "
                   "commit_round contract: deletes and puts must land "
                   "as one atomic round or a crash mid-round leaks a "
                   "partially-applied access pattern")

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.relpath.startswith(_CORE_SCOPES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _UNBATCHED):
                continue
            recv = receiver_name(func)
            if recv and any(s in recv.lower() for s in _STOREISH):
                yield module.finding(
                    self, node,
                    f"{recv}.{func.attr}() outside commit_round; round "
                    "deletes and puts must commit atomically")
