"""Closed-loop client simulation: latency *distributions*, not just means.

The paper reports average latency; operators care about tails.  This
module runs a discrete-event simulation of ``T`` closed-loop clients
(each issues a request, waits for its response, thinks, repeats) against
a batching proxy whose round time comes from the calibrated cost model,
and records per-request latencies including the real queueing effects
the harness's analytic model averages away:

* a request waits until the current batch round *completes*;
* a round dispatches when ``R`` requests are pending (or when the
  round-timeout fires — Waffle's "waits to receive R client requests"
  has to be bounded in practice, and the timeout's latency effect is
  visible in the p99).

This is a deliberately small single-server queueing model — enough to
produce honest percentile tables for the latency example/bench without
pretending to be a network simulator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.seeding import seeded_rng
from repro.sim.metrics import LatencyRecorder

__all__ = ["ClosedLoopResult", "simulate_closed_loop"]


@dataclass(frozen=True, slots=True)
class ClosedLoopResult:
    """Outcome of one closed-loop simulation."""

    requests: int
    rounds: int
    duration_s: float
    throughput_ops: float
    latency: "LatencySummaryLike"
    timeout_dispatches: int


class LatencySummaryLike:  # pragma: no cover - satisfied by LatencySummary
    pass


def simulate_closed_loop(round_time_s: float, batch_capacity: int,
                         clients: int, think_time_s: float = 0.0,
                         round_timeout_s: float | None = None,
                         duration_s: float = 10.0,
                         exponential_think: bool = False,
                         seed: int | None = None) -> ClosedLoopResult:
    """Simulate ``clients`` closed-loop clients against a batching proxy.

    Parameters
    ----------
    round_time_s:
        Service time of one batch round (from the cost model).
    batch_capacity:
        R — requests the proxy waits for before dispatching.
    clients:
        Closed-loop population.
    think_time_s:
        Client think time between response and next request.  With
        ``exponential_think`` it is the *mean* of an exponential draw,
        which de-synchronizes the client population (otherwise a batch's
        clients stay in lockstep and every percentile coincides).
    round_timeout_s:
        Dispatch a partial batch after this long with at least one
        pending request.  Defaults to ``2 * round_time_s``.
    duration_s:
        Simulated time horizon.
    """
    if round_time_s <= 0 or batch_capacity < 1 or clients < 1:
        raise ConfigurationError("invalid closed-loop parameters")
    timeout = round_timeout_s if round_timeout_s is not None \
        else 2 * round_time_s
    rng = seeded_rng(seed)

    def draw_think() -> float:
        if think_time_s <= 0:
            return 0.0
        if exponential_think:
            return rng.expovariate(1.0 / think_time_s)
        return think_time_s

    # Event queue: (time, order, kind, payload).  Kinds: "arrive" a client
    # request arrives; "round_done" the in-flight batch completes.
    events: list[tuple[float, int, str, float]] = []
    order = 0
    for _ in range(clients):
        heapq.heappush(events, (0.0, order, "arrive", 0.0))
        order += 1

    # Simulated-clock metrics: latencies are *simulated* seconds, so the
    # histogram carries a clock=sim label to keep it distinguishable from
    # wall-clock series of the same shape.
    lat_hist = OBS.registry.histogram(
        "closedloop.latency.seconds", clock="sim") if OBS.enabled else None

    pending: list[float] = []  # arrival times of queued requests
    oldest_pending: float | None = None
    busy_until: float | None = None
    in_flight: list[float] = []
    recorder = LatencyRecorder()
    rounds = 0
    timeout_dispatches = 0
    served = 0
    now = 0.0

    def try_dispatch(current: float) -> None:
        nonlocal busy_until, in_flight, pending, rounds, timeout_dispatches
        nonlocal oldest_pending, order
        if busy_until is not None or not pending:
            return
        timed_out = (oldest_pending is not None
                     and current - oldest_pending >= timeout)
        if len(pending) < batch_capacity and not timed_out:
            return
        take = min(batch_capacity, len(pending))
        in_flight = pending[:take]
        pending = pending[take:]
        oldest_pending = pending[0] if pending else None
        busy_until = current + round_time_s
        rounds += 1
        if timed_out and take < batch_capacity:
            timeout_dispatches += 1
        heapq.heappush(events, (busy_until, order, "round_done", 0.0))
        order += 1

    while events:
        now, _, kind, _ = heapq.heappop(events)
        if now > duration_s:
            break
        if kind == "arrive":
            pending.append(now)
            if oldest_pending is None or now < oldest_pending:
                oldest_pending = pending[0]
            try_dispatch(now)
            # A timeout check must fire even with no further arrivals.
            if busy_until is None and pending:
                deadline = pending[0] + timeout
                heapq.heappush(events, (deadline, order, "timeout", 0.0))
                order += 1
        elif kind == "timeout":
            try_dispatch(now)
        else:  # round_done
            for arrival in in_flight:
                recorder.record(now - arrival)
                if lat_hist is not None:
                    lat_hist.observe(now - arrival)
                served += 1
                next_arrival = now + draw_think()
                heapq.heappush(events, (next_arrival, order, "arrive", 0.0))
                order += 1
            in_flight = []
            busy_until = None
            try_dispatch(now)

    duration = min(now, duration_s)
    if OBS.enabled:
        reg = OBS.registry
        reg.counter("closedloop.rounds.total", clock="sim").inc(rounds)
        reg.counter("closedloop.requests.total", clock="sim").inc(served)
        reg.counter("closedloop.timeout_dispatches.total",
                    clock="sim").inc(timeout_dispatches)
        OBS.event("closedloop.done", clients=clients, rounds=rounds,
                  served=served, duration_s=duration)
    return ClosedLoopResult(
        requests=served,
        rounds=rounds,
        duration_s=duration,
        throughput_ops=served / duration if duration > 0 else 0.0,
        latency=recorder.summary(),
        timeout_dispatches=timeout_dispatches,
    )
