"""Simulated-time substrate.

The paper measures wall-clock throughput of a C++ proxy against Redis over
10 Gbps Ethernet.  A pure-Python re-run of that measurement would say more
about CPython than about Waffle, so all performance numbers in this
reproduction come from a simulated clock: the systems execute their real
protocol logic and charge calibrated costs (round trips, bytes, server
ops, crypto, proxy bookkeeping) to a :class:`SimClock`.  DESIGN.md §1 and
§5 document the substitution and the calibration.

The one deliberate exception is :mod:`repro.sim.perf`, which measures
*wall-clock* proxy performance (rounds/sec, µs/request, kernel
breakdown) against a scalar reference implementation — see DESIGN.md
"Hot path & wall-clock performance".  It is imported lazily
(``from repro.sim.perf import ...``) because it pulls in the full proxy
stack.
"""

from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.metrics import LatencyRecorder, LatencySummary, ThroughputMeter

__all__ = ["CostModel", "LatencyRecorder", "LatencySummary", "SimClock",
           "ThroughputMeter"]
