"""A simulated clock measured in seconds.

All performance accounting advances this clock explicitly; nothing in the
library reads wall-clock time, so experiments are deterministic and
independent of the host machine.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def reset(self) -> None:
        self._now = 0.0
