"""A discrete-event model of the multi-core proxy pipeline.

Figure 2c's shape — throughput peaking at 4 cores, then declining — is
reproduced in the cost model by an *analytic* efficiency curve
(:meth:`CostModel.core_efficiency`).  This module grounds that curve in
mechanism: it simulates the proxy as the pipeline its implementation
implies,

1. **assembly** (serial): dedup, fake-query selection, index updates —
   operations on shared BSTs/cache that must hold the proxy lock;
2. **crypto/work** (parallel): PRF + AEAD + per-item bookkeeping,
   spread across ``workers`` cores, but each chunk re-acquires the
   shared lock for a fraction ``lock_fraction`` of its work (cache
   insertions, response map updates);
3. **server I/O** (no CPU): the pipelined round trips, which overlap
   with the *next* round's assembly;
4. **coordination** (serial, grows with workers): waking, scheduling
   and joining ``workers`` threads costs ``coordination_s`` each.

The simulation processes rounds through these stages and reports
steady-state throughput.  ``speedup_curve`` traces throughput against
worker count; the pipeline bench compares it to the analytic curve, so
the analytic shortcut used everywhere else is not a free parameter but a
summary of this mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel

__all__ = ["PipelineModel", "PipelineResult", "speedup_curve"]


@dataclass(frozen=True, slots=True)
class PipelineResult:
    """Steady-state outcome of one pipeline simulation."""

    workers: int
    round_time_s: float
    throughput_rounds_per_s: float
    serial_share: float


class PipelineModel:
    """Event-driven round processing with a shared proxy lock.

    Parameters
    ----------
    parallel_work_s:
        CPU work per round that can spread across workers (crypto,
        per-item bookkeeping).
    serial_work_s:
        Assembly + response routing, always under the lock.
    lock_fraction:
        Fraction of each parallel chunk that must hold the lock.
    coordination_s:
        Per-worker scheduling overhead added to the serial path.
    network_s:
        Server round-trip time per round; overlaps the next round's
        assembly (classic pipelining), so it only binds when it exceeds
        the CPU time.
    """

    def __init__(self, parallel_work_s: float, serial_work_s: float,
                 lock_fraction: float = 0.12,
                 lock_contention_growth: float = 0.40,
                 coordination_s: float = 35e-6,
                 network_s: float = 0.0) -> None:
        if parallel_work_s < 0 or serial_work_s < 0 or network_s < 0:
            raise ConfigurationError("work amounts must be non-negative")
        if not 0 <= lock_fraction <= 1:
            raise ConfigurationError("lock fraction must be in [0, 1]")
        if lock_contention_growth < 0:
            raise ConfigurationError("contention growth must be >= 0")
        self.parallel_work_s = parallel_work_s
        self.serial_work_s = serial_work_s
        self.lock_fraction = lock_fraction
        #: Each additional waiter inflates time under the lock (cache-line
        #: bouncing, futex traffic) by this fraction — the mechanism that
        #: drags many-core throughput *below* single-core, as Figure 2c
        #: measures.
        self.lock_contention_growth = lock_contention_growth
        self.coordination_s = coordination_s
        self.network_s = network_s

    def simulate(self, workers: int, rounds: int = 200) -> PipelineResult:
        """Process ``rounds`` rounds; return steady-state metrics."""
        if workers < 1:
            raise ConfigurationError("need at least one worker")
        if rounds < 1:
            raise ConfigurationError("need at least one round")
        chunk = self.parallel_work_s / workers
        # Time under the lock inflates with the number of waiters.
        contention = 1.0 + self.lock_contention_growth * (workers - 1)
        locked_per_chunk = chunk * self.lock_fraction * contention
        free_per_chunk = chunk * (1.0 - self.lock_fraction)

        clock = 0.0
        network_free_at = 0.0
        completed = []
        for _ in range(rounds):
            # Serial assembly (holds the lock throughout).
            clock += self.serial_work_s
            clock += self.coordination_s * (workers - 1)

            # Parallel phase: workers run their free portions
            # concurrently, but the locked portions serialize.  A round's
            # parallel phase therefore lasts at least the longest free
            # chunk, and at least the total locked demand.
            locked_total = locked_per_chunk * workers
            clock += max(free_per_chunk, locked_total)
            if locked_total > free_per_chunk:
                # Lock convoy: the excess queueing shows up as extra wall
                # time beyond the overlap above.
                clock += (locked_total - free_per_chunk) \
                    * 0.5 * (workers - 1) / max(1, workers)

            # Network I/O: pipelined with the next round's assembly.
            dispatch = max(clock, network_free_at)
            network_free_at = dispatch + self.network_s
            completed.append(network_free_at)

        # Steady-state rate over the back half (skip warm-up).
        half = len(completed) // 2
        window = completed[-1] - completed[half]
        done = len(completed) - half - 1
        rate = done / window if window > 0 else float("inf")
        round_time = 1.0 / rate if rate > 0 else float("inf")
        serial = (self.serial_work_s
                  + self.coordination_s * (workers - 1))
        return PipelineResult(
            workers=workers,
            round_time_s=round_time,
            throughput_rounds_per_s=rate,
            serial_share=serial / round_time if round_time else 0.0,
        )


def speedup_curve(model: PipelineModel, worker_counts=(1, 2, 4, 6, 8, 12),
                  rounds: int = 200) -> dict[int, float]:
    """Throughput speedup relative to one worker, per worker count."""
    base = model.simulate(1, rounds).throughput_rounds_per_s
    return {
        workers: model.simulate(workers, rounds).throughput_rounds_per_s
        / base
        for workers in worker_counts
    }


def model_from_cost(config, cost: CostModel,
                    stats=None) -> PipelineModel:
    """Build a pipeline model with work amounts matching the cost model's
    charging for one Waffle round of batch size B."""
    b = config.b
    kib = config.value_size / 1024
    parallel = (
        2 * b * cost.proxy_item_s
        + 2 * b * cost.aead_s(1, kib)
        + 2 * b * cost.prf_s
    )
    serial = (
        config.r * cost.proxy_item_s * 0.5          # dedup/assembly
        + (b + config.r) * cost.lru_op_s(config.c) * 0.5
        + 2 * b * cost.index_op_s(config.n) * 0.5
    )
    network = 2 * cost.pipelined_round_trip_s(b, kib)
    return PipelineModel(parallel_work_s=parallel, serial_work_s=serial,
                         coordination_s=0.02 * parallel,
                         network_s=network)
