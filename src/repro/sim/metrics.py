"""Throughput and latency measurement over simulated time."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LatencyRecorder", "LatencySummary", "ThroughputMeter"]


class ThroughputMeter:
    """Counts completed operations against a simulated-time window."""

    __slots__ = ("_ops", "_start", "_end")

    def __init__(self) -> None:
        self._ops = 0
        self._start: float | None = None
        self._end: float | None = None

    def record(self, n_ops: int, now: float) -> None:
        """Record ``n_ops`` operations completed at simulated time ``now``."""
        if n_ops < 0:
            raise ValueError("operation count must be non-negative")
        if self._start is None:
            self._start = now
        self._end = now
        self._ops += n_ops

    @property
    def operations(self) -> int:
        return self._ops

    def ops_per_second(self) -> float:
        """Average throughput over the recorded window.

        The window runs from the first to the last :meth:`record` call's
        timestamp, so a single ``record`` (or several at one instant)
        spans zero time: with operations completed in a zero-length
        window the instantaneous rate is unbounded and this returns
        ``math.inf`` rather than a misleading ``0.0``.  An empty meter —
        or a degenerate window with zero operations — reports ``0.0``.
        """
        if self._start is None or self._end is None:
            return 0.0
        if self._end <= self._start:
            return math.inf if self._ops > 0 else 0.0
        return self._ops / (self._end - self._start)


@dataclass
class LatencySummary:
    """Summary statistics of a latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float


class LatencyRecorder:
    """Collects per-request latencies and reports percentiles."""

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency_s: float) -> None:
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self._samples.append(latency_s)

    def __len__(self) -> int:
        return len(self._samples)

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        if not ordered:
            return 0.0
        # Nearest-rank percentile: robust and assumption-free.
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> LatencySummary:
        ordered = sorted(self._samples)
        count = len(ordered)
        mean = sum(ordered) / count if count else 0.0
        return LatencySummary(
            count=count,
            mean=mean,
            p50=self._percentile(ordered, 0.50),
            p95=self._percentile(ordered, 0.95),
            p99=self._percentile(ordered, 0.99),
            max=ordered[-1] if ordered else 0.0,
        )
