"""Wall-clock performance harness: real seconds, not simulated ones.

Everything else in :mod:`repro.sim` charges *simulated* time so the
paper's figures do not measure CPython (DESIGN.md §1).  This module is
the deliberate exception: the ROADMAP's north star is a proxy that also
runs fast in real time, so we need a measurement of what the hardware
actually does per round — and a scalar reference implementation to hold
the batched kernels accountable against.

Three layers:

* **Scalar reference kernels** — :class:`ScalarPrf` and
  :class:`ScalarCipher` preserve the original one-call-at-a-time
  implementations (fresh ``hmac.new`` per derivation, per-byte generator
  XOR).  They are bit-compatible with the optimized kernels and expose
  the same ``derive_many``/``encrypt_many``/``decrypt_many`` surface, so
  an unmodified :class:`~repro.core.proxy.WaffleProxy` runs on either —
  which is both the equivalence oracle and the benchmark baseline.
* **Kernel microbenchmarks** — :func:`bench_prf_kernel`,
  :func:`bench_aead_kernel`, :func:`bench_index_kernel`,
  :func:`bench_cache_kernel` time one kernel in isolation at a
  representative round shape.
* **End-to-end rounds** — :func:`bench_rounds` drives a real proxy
  against an in-memory store and reports rounds/sec and µs/request, with
  a PRF/AEAD/other breakdown captured by timing wrappers, and
  :func:`compare_traces` checks that the adversary-visible access
  sequence is independent of which kernel set ran.

:func:`run_wallclock_benchmark` bundles all of it into one
machine-readable dict (``benchmarks/bench_wallclock.py`` writes it to
``BENCH_wallclock.json`` so successive PRs accumulate a trajectory).
"""

from __future__ import annotations

import hashlib
import hmac
import os
import random
import time
from typing import Callable, Iterable, Sequence

from repro.core.batch import ClientRequest
from repro.core.config import WaffleConfig
from repro.core.proxy import WaffleProxy
from repro.crypto.keys import KeyChain
from repro.ds.lru import LruCache
from repro.ds.treap import Treap
from repro.errors import IntegrityError
from repro.storage.memory import InMemoryStore
from repro.storage.recording import RecordingStore
from repro.workloads.trace import Operation

__all__ = [
    "ScalarCipher",
    "ScalarPrf",
    "bench_aead_kernel",
    "bench_cache_kernel",
    "bench_index_kernel",
    "bench_prf_kernel",
    "bench_rounds",
    "bench_rounds_parallel",
    "compare_obs_traces",
    "compare_parallel_traces",
    "compare_shard_traces",
    "compare_telemetry_traces",
    "compare_traces",
    "parallel_round_config",
    "run_parallel_benchmark",
    "run_wallclock_benchmark",
    "scalar_keychain",
]

_NONCE_LEN = 16
_TAG_LEN = 32
_BLOCK_LEN = 32
_DIGEST_HEX_LEN = 32


# ----------------------------------------------------------------------
# scalar reference kernels (the pre-optimization implementations)
# ----------------------------------------------------------------------
class ScalarPrf:
    """The original per-call PRF: a fresh ``hmac.new`` every derivation.

    Bit-compatible with :class:`repro.crypto.prf.Prf`; kept as the
    benchmark baseline and the equivalence oracle for the cached-HMAC
    fast path.
    """

    __slots__ = ("_secret",)

    def __init__(self, secret: bytes) -> None:
        if not secret:
            raise ValueError("PRF secret must be non-empty")
        self._secret = bytes(secret)

    def derive(self, key: str, timestamp: int) -> str:
        message = key.encode("utf-8") + b"\x00" + str(int(timestamp)).encode()
        digest = hmac.new(self._secret, message, hashlib.sha256).hexdigest()
        return digest[:_DIGEST_HEX_LEN]

    def derive_many(self, pairs: Iterable[tuple[str, int]]) -> list[str]:
        return [self.derive(key, timestamp) for key, timestamp in pairs]

    def derive_bytes(self, data: bytes) -> bytes:
        return hmac.new(self._secret, data, hashlib.sha256).digest()


class ScalarCipher:
    """The original AEAD: per-block ``sha256(key||nonce||ctr)`` with a
    per-byte generator XOR.  Bit-compatible with
    :class:`repro.crypto.aead.AuthenticatedCipher`."""

    __slots__ = ("_enc_key", "_mac_key", "_randbytes")

    def __init__(self, enc_key: bytes, mac_key: bytes, rng=None) -> None:
        if not enc_key or not mac_key:
            raise ValueError("cipher keys must be non-empty")
        if enc_key == mac_key:
            raise ValueError("encryption and MAC keys must be independent")
        self._enc_key = bytes(enc_key)
        self._mac_key = bytes(mac_key)
        self._randbytes = rng.randbytes if rng is not None else os.urandom

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK_LEN - 1) // _BLOCK_LEN):
            block_input = self._enc_key + nonce + counter.to_bytes(8, "big")
            blocks.append(hashlib.sha256(block_input).digest())
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes) -> bytes:
        nonce = self._randbytes(_NONCE_LEN)
        stream = self._keystream(nonce, len(plaintext))
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()
        return nonce + body + tag

    def decrypt(self, blob: bytes) -> bytes:
        if len(blob) < _NONCE_LEN + _TAG_LEN:
            raise IntegrityError("ciphertext too short")
        nonce = blob[:_NONCE_LEN]
        body = blob[_NONCE_LEN:-_TAG_LEN]
        tag = blob[-_TAG_LEN:]
        expected = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("authentication tag mismatch")
        stream = self._keystream(nonce, len(body))
        return bytes(c ^ s for c, s in zip(body, stream))

    def encrypt_many(self, plaintexts: Iterable[bytes]) -> list[bytes]:
        return [self.encrypt(plaintext) for plaintext in plaintexts]

    def decrypt_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        return [self.decrypt(blob) for blob in blobs]

    def ciphertext_overhead(self) -> int:
        return _NONCE_LEN + _TAG_LEN


def scalar_keychain(seed: int, rng=None) -> KeyChain:
    """A :class:`KeyChain` whose kernels are the scalar references.

    Key material is identical to ``KeyChain.from_seed(seed)`` — only the
    kernel implementations differ — so the two chains produce identical
    storage ids and mutually decryptable ciphertexts.
    """
    chain = KeyChain.from_seed(seed, rng=rng)
    chain.prf = ScalarPrf(chain.prf._secret)
    chain.cipher = ScalarCipher(
        enc_key=chain.cipher._enc_key,
        mac_key=chain.cipher._mac_key,
        rng=rng,
    )
    return chain


# ----------------------------------------------------------------------
# timing utilities
# ----------------------------------------------------------------------
def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class _TimedPrf:
    """Pass-through PRF accumulating wall-clock seconds spent inside."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.seconds = 0.0

    def derive(self, key, timestamp):
        start = time.perf_counter()
        out = self._inner.derive(key, timestamp)
        self.seconds += time.perf_counter() - start
        return out

    def derive_many(self, pairs):
        start = time.perf_counter()
        out = self._inner.derive_many(pairs)
        self.seconds += time.perf_counter() - start
        return out

    def derive_bytes(self, data):
        return self._inner.derive_bytes(data)


class _TimedCipher:
    """Pass-through cipher accumulating wall-clock seconds spent inside."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.seconds = 0.0

    def _timed(self, method, arg):
        start = time.perf_counter()
        out = method(arg)
        self.seconds += time.perf_counter() - start
        return out

    def encrypt(self, plaintext):
        return self._timed(self._inner.encrypt, plaintext)

    def decrypt(self, blob):
        return self._timed(self._inner.decrypt, blob)

    def encrypt_many(self, plaintexts):
        return self._timed(self._inner.encrypt_many, plaintexts)

    def decrypt_many(self, blobs):
        return self._timed(self._inner.decrypt_many, blobs)

    def ciphertext_overhead(self):
        return self._inner.ciphertext_overhead()


# ----------------------------------------------------------------------
# kernel microbenchmarks
# ----------------------------------------------------------------------
def bench_prf_kernel(batch: int = 1000, repeats: int = 3) -> dict:
    """Scalar vs batched storage-id derivation for one read batch."""
    secret = b"wallclock-prf-secret"
    from repro.crypto.prf import Prf

    scalar, batched = ScalarPrf(secret), Prf(secret)
    pairs = [(f"user{i:08d}", i % 97) for i in range(batch)]
    assert scalar.derive_many(pairs) == batched.derive_many(pairs)
    scalar_s = _best_of(lambda: scalar.derive_many(pairs), repeats)
    batched_s = _best_of(lambda: batched.derive_many(pairs), repeats)
    return {
        "kernel": "prf",
        "batch": batch,
        "scalar_ops_per_sec": batch / scalar_s,
        "batched_ops_per_sec": batch / batched_s,
        "speedup": scalar_s / batched_s,
    }


def bench_aead_kernel(batch: int = 64, value_size: int = 1024,
                      repeats: int = 3) -> dict:
    """Scalar vs batched encrypt+decrypt for one write+read batch."""
    from repro.crypto.aead import AuthenticatedCipher

    keys = {"enc_key": b"wallclock-enc-key", "mac_key": b"wallclock-mac-key"}
    scalar = ScalarCipher(rng=random.Random(7), **keys)
    batched = AuthenticatedCipher(rng=random.Random(7), **keys)
    values = [os.urandom(value_size) for _ in range(batch)]
    assert scalar.encrypt_many(values) == batched.encrypt_many(values)

    scalar_enc = _best_of(lambda: scalar.encrypt_many(values), repeats)
    batched_enc = _best_of(lambda: batched.encrypt_many(values), repeats)
    blobs = batched.encrypt_many(values)
    scalar_dec = _best_of(lambda: scalar.decrypt_many(blobs), repeats)
    batched_dec = _best_of(lambda: batched.decrypt_many(blobs), repeats)
    return {
        "kernel": "aead",
        "batch": batch,
        "value_size": value_size,
        "scalar_encrypt_ops_per_sec": batch / scalar_enc,
        "batched_encrypt_ops_per_sec": batch / batched_enc,
        "encrypt_speedup": scalar_enc / batched_enc,
        "scalar_decrypt_ops_per_sec": batch / scalar_dec,
        "batched_decrypt_ops_per_sec": batch / batched_dec,
        "decrypt_speedup": scalar_dec / batched_dec,
    }


def bench_index_kernel(population: int = 4096, take: int = 256,
                       repeats: int = 3) -> dict:
    """Repeated ``pop_min`` vs one ``pop_min_many`` on a treap."""

    def build() -> Treap:
        tree = Treap(seed=11)
        for i in range(population):
            tree.insert(f"k{i:06d}", (i % 131, i, f"k{i:06d}"))
        return tree

    def scalar(tree: Treap) -> list:
        return [tree.pop_min() for _ in range(take)]

    def batched(tree: Treap) -> list:
        return tree.pop_min_many(take)

    assert scalar(build()) == batched(build())

    def timed(pop) -> float:
        # Trees are rebuilt outside the timed window: only the pops count.
        best = float("inf")
        for _ in range(repeats):
            tree = build()
            start = time.perf_counter()
            pop(tree)
            best = min(best, time.perf_counter() - start)
        return best

    scalar_s = timed(scalar)
    batched_s = timed(batched)
    return {
        "kernel": "index",
        "population": population,
        "take": take,
        "scalar_ops_per_sec": take / scalar_s,
        "batched_ops_per_sec": take / batched_s,
        "speedup": scalar_s / batched_s,
    }


def bench_cache_kernel(population: int = 4096, lookups: int = 4096,
                       hit_fraction: float = 0.5, repeats: int = 3) -> dict:
    """``in`` + ``get`` double descent vs single-lookup ``get_if_present``."""
    cache = LruCache(population)
    for i in range(population):
        cache.put(f"k{i:06d}", b"v")
    probe_rng = random.Random(3)
    probes = [
        f"k{probe_rng.randrange(population):06d}"
        if probe_rng.random() < hit_fraction else f"m{probe_rng.randrange(population):06d}"
        for _ in range(lookups)
    ]

    def scalar() -> int:
        hits = 0
        for key in probes:
            if key in cache:
                cache.get(key)
                hits += 1
        return hits

    miss = object()

    def batched() -> int:
        # The bulk probe kernel the proxy's read phase uses for runs of
        # consecutive READ requests; the per-call get_if_present form
        # lost to the double descent on attribute dispatch alone.
        return sum(value is not miss
                   for value in cache.get_if_present_many(probes, miss))

    assert scalar() == batched()
    scalar_s = _best_of(scalar, repeats)
    batched_s = _best_of(batched, repeats)
    return {
        "kernel": "cache",
        "lookups": lookups,
        "scalar_ops_per_sec": lookups / scalar_s,
        "batched_ops_per_sec": lookups / batched_s,
        "speedup": scalar_s / batched_s,
    }


# ----------------------------------------------------------------------
# end-to-end rounds
# ----------------------------------------------------------------------
def _build_proxy(config: WaffleConfig, keychain: KeyChain,
                 record: bool = False) -> WaffleProxy:
    inner = InMemoryStore(write_once=True)
    store = RecordingStore(inner) if record else inner
    proxy = WaffleProxy(config, store, keychain=keychain,
                        keep_round_stats=False)
    items = {
        f"user{i:08d}": (b"value-%08d" % i).ljust(config.value_size, b".")[: config.value_size]
        for i in range(config.n)
    }
    proxy.initialize(items)
    return proxy


def _request_stream(config: WaffleConfig, rounds: int,
                    seed: int) -> list[list[ClientRequest]]:
    rng = random.Random(seed)
    keys = [f"user{i:08d}" for i in range(config.n)]
    batches = []
    for _ in range(rounds):
        batch = []
        for _ in range(config.r):
            key = keys[rng.randrange(config.n)]
            if rng.random() < 0.3:
                value = (b"write-%08d" % rng.randrange(10**8))
                batch.append(ClientRequest(
                    op=Operation.WRITE, key=key,
                    value=value.ljust(config.value_size, b"_")[: config.value_size]))
            else:
                batch.append(ClientRequest(op=Operation.READ, key=key))
        batches.append(batch)
    return batches


def bench_rounds(n: int = 2048, rounds: int = 30, seed: int = 99,
                 scalar: bool = False) -> dict:
    """Drive a real proxy for ``rounds`` batches and time each round.

    ``scalar=True`` swaps the seed-era kernels in (same key material), so
    the pair of runs quantifies the end-to-end effect of the batched fast
    path alone.  The PRF/AEAD share of each round is measured by timing
    wrappers; the remainder is index/cache/bookkeeping.
    """
    config = WaffleConfig.paper_defaults(n=n, seed=seed)
    keychain = scalar_keychain(seed) if scalar else KeyChain.from_seed(seed)
    proxy = _build_proxy(config, keychain)
    prf_timer = _TimedPrf(proxy.keychain.prf)
    cipher_timer = _TimedCipher(proxy.keychain.cipher)
    proxy.keychain.prf = prf_timer
    proxy.keychain.cipher = cipher_timer

    batches = _request_stream(config, rounds, seed)
    start = time.perf_counter()
    for batch in batches:
        proxy.handle_batch(batch)
    elapsed = time.perf_counter() - start

    requests = rounds * config.r
    return {
        "mode": "scalar" if scalar else "batched",
        "n": n,
        "b": config.b,
        "r": config.r,
        "value_size": config.value_size,
        "rounds": rounds,
        "seconds": elapsed,
        "rounds_per_sec": rounds / elapsed,
        "us_per_request": elapsed / requests * 1e6,
        "breakdown_seconds": {
            "prf": prf_timer.seconds,
            "aead": cipher_timer.seconds,
            "index_cache_other": max(0.0, elapsed - prf_timer.seconds
                                     - cipher_timer.seconds),
        },
    }


def compare_traces(n: int = 512, rounds: int = 12, seed: int = 31) -> dict:
    """Run scalar-kernel and batched-kernel proxies on one fixed workload
    and compare the adversary-visible access sequences and responses."""
    digests = {}
    for mode, chain in (("scalar", scalar_keychain(seed)),
                        ("batched", KeyChain.from_seed(seed))):
        config = WaffleConfig.paper_defaults(n=n, seed=seed)
        proxy = _build_proxy(config, chain, record=True)
        responses = hashlib.sha256()
        for batch in _request_stream(config, rounds, seed):
            for resp in proxy.handle_batch(batch):
                responses.update(resp.key.encode() + b"\x00" + resp.value)
        trace = hashlib.sha256()
        for rec in proxy.store.records:
            trace.update(
                f"{rec.op}:{rec.storage_id}:{rec.round}:{rec.seq}\n".encode())
        digests[mode] = {"trace": trace.hexdigest(),
                         "responses": responses.hexdigest()}
    digests["identical"] = digests["scalar"] == digests["batched"]
    return digests


def _trace_digest(records) -> str:
    digest = hashlib.sha256()
    for rec in records:
        digest.update(
            f"{rec.op}:{rec.storage_id}:{rec.round}:{rec.seq}\n".encode())
    return digest.hexdigest()


def compare_obs_traces(n: int = 256, rounds: int = 8, seed: int = 47) -> dict:
    """Trace neutrality oracle: observability must not change the trace.

    Runs Waffle and all three baselines (Pancake, PathORAM, TaoStore) on
    fixed-seed workloads twice each — once with observability disabled,
    once fully enabled — and digests the adversary-visible access
    sequence from the :class:`RecordingStore`.  Instrumentation that
    consumes rng draws or adds/perturbs server accesses shows up here as
    a digest mismatch.  Leaves observability disabled on return.
    """
    from repro import obs
    from repro.baselines.pancake.proxy import PancakeProxy
    from repro.baselines.pathoram import PathOram
    from repro.baselines.taostore import TaoStore
    from repro.workloads.trace import TraceRequest

    keys = [f"user{i:08d}" for i in range(n)]

    def run_waffle() -> str:
        config = WaffleConfig.paper_defaults(n=n, seed=seed)
        proxy = _build_proxy(config, KeyChain.from_seed(seed), record=True)
        for batch in _request_stream(config, rounds, seed):
            proxy.handle_batch(batch)
        return _trace_digest(proxy.store.records)

    def run_pancake() -> str:
        store = RecordingStore(InMemoryStore())
        proxy = PancakeProxy(
            keys, {key: b"v" * 32 for key in keys}, [1.0 / n] * n, store,
            batch_size=32, keychain=KeyChain.from_seed(seed), seed=seed)
        rng = random.Random(seed + 1)
        for _ in range(rounds):
            for _ in range(8):
                proxy.submit(TraceRequest(Operation.READ,
                                          keys[rng.randrange(n)]))
            proxy.process_batch()
        return _trace_digest(store.records)

    def run_pathoram() -> str:
        store = RecordingStore(InMemoryStore())
        oram = PathOram({key: b"v" * 32 for key in keys}, store,
                        keychain=KeyChain.from_seed(seed), seed=seed)
        rng = random.Random(seed + 2)
        for _ in range(rounds * 4):
            oram.get(keys[rng.randrange(n)])
        return _trace_digest(store.records)

    def run_taostore() -> str:
        store = RecordingStore(InMemoryStore())
        tao = TaoStore({key: b"v" * 32 for key in keys}, store,
                       keychain=KeyChain.from_seed(seed), seed=seed)
        rng = random.Random(seed + 3)
        for _ in range(rounds * 4):
            tao.submit(TraceRequest(Operation.READ, keys[rng.randrange(n)]))
            tao.drain()
        return _trace_digest(store.records)

    out: dict = {}
    identical = True
    for name, runner in (("waffle", run_waffle), ("pancake", run_pancake),
                         ("pathoram", run_pathoram),
                         ("taostore", run_taostore)):
        off = runner()
        with obs.capture():
            on = runner()
        out[name] = {"off": off, "on": on, "identical": off == on}
        identical = identical and off == on
    out["identical"] = identical
    return out


# ----------------------------------------------------------------------
# parallel round execution (repro.parallel)
# ----------------------------------------------------------------------
def parallel_round_config(n: int = 1024, seed: int = 23, b: int = 128,
                          value_size: int = 4096) -> WaffleConfig:
    """A crypto-heavy round shape for the multi-core benchmark.

    The paper-defaults shape at small N (B=10, 1 KiB values) spends a
    few hundred microseconds of crypto per round — far below the cost of
    dispatching to a process pool.  Figure 2c's regime is the opposite:
    large batches of large values where PRF+AEAD dominate the round.
    This shape (B=128, 4 KiB values by default) puts ~50 ms of kernel
    work in each round, which is what the workers parallelize.
    """
    r = max(1, (2 * b) // 5)
    f_d = max(1, b // 5)
    return WaffleConfig(n=n, b=b, r=r, f_d=f_d, d=4 * f_d, c=n // 4,
                        value_size=value_size, seed=seed)


def bench_rounds_parallel(workers: int = 1, n: int = 1024, rounds: int = 12,
                          seed: int = 23, b: int = 128,
                          value_size: int = 4096,
                          min_batch: int | None = None,
                          backend: str | None = None,
                          transport: str = "shm") -> dict:
    """Drive one proxy through ``rounds`` batches with ``workers`` workers.

    Returns wall-clock throughput plus the adversary-trace and response
    digests, so one sweep yields both the speedup curve and the
    byte-identity evidence.  ``workers=1`` runs fully inline (no pool) —
    the baseline every other worker count is compared against.

    ``backend`` selects the crypto backend (byte-identical; the digests
    prove it per run) and ``transport`` the chunk channel (``"shm"``
    segments vs the legacy ``"pipe"``), so one sweep can label every
    combination the speedup claims rest on.
    """
    from repro.parallel import WorkerPool, attach_pool

    config = parallel_round_config(n=n, seed=seed, b=b,
                                   value_size=value_size)
    proxy = _build_proxy(config, KeyChain.from_seed(seed, backend=backend),
                         record=True)
    # What actually ran (a requested-but-absent backend falls back to
    # pure); captured pre-attach since pooled wrappers hide the kernel.
    backend_used: str = proxy.keychain.prf.backend_name
    pool = None
    if workers > 1:
        pool = (WorkerPool(workers, transport=transport)
                if min_batch is None
                else WorkerPool(workers, min_batch=min_batch,
                                transport=transport))
        attach_pool(proxy, pool)
    try:
        batches = _request_stream(config, rounds, seed)
        responses = hashlib.sha256()
        start = time.perf_counter()
        for batch in batches:
            for resp in proxy.handle_batch(batch):
                responses.update(resp.key.encode() + b"\x00" + resp.value)
        elapsed = time.perf_counter() - start
    finally:
        if pool is not None:
            pool.close()
    return {
        "workers": workers,
        "backend": backend_used,
        "transport": transport if workers > 1 else "inline",
        "n": n,
        "b": config.b,
        "r": config.r,
        "value_size": config.value_size,
        "rounds": rounds,
        "seconds": elapsed,
        "rounds_per_sec": rounds / elapsed,
        "us_per_request": elapsed / (rounds * config.r) * 1e6,
        "trace": _trace_digest(proxy.store.records),
        "responses": responses.hexdigest(),
    }


def compare_parallel_traces(worker_counts: Sequence[int] = (1, 2, 4, 8),
                            n: int = 256, rounds: int = 6, seed: int = 31,
                            b: int = 32, value_size: int = 512) -> dict:
    """Byte-identity oracle across worker counts (small/fast shape).

    ``min_batch=1`` forces every kernel call through the pool, so even
    the small plan-phase PRF batches exercise the chunked dispatch path.
    """
    runs = {
        workers: bench_rounds_parallel(
            workers=workers, n=n, rounds=rounds, seed=seed, b=b,
            value_size=value_size, min_batch=1)
        for workers in worker_counts
    }
    digests = {workers: {"trace": row["trace"],
                         "responses": row["responses"]}
               for workers, row in runs.items()}
    reference = next(iter(digests.values()))
    digests["identical"] = all(row == reference
                               for row in digests.values()
                               if isinstance(row, dict))
    return digests


def compare_backend_traces(worker_counts: Sequence[int] = (1, 2, 4),
                           backends: Sequence[str] | None = None,
                           n: int = 256, rounds: int = 6, seed: int = 31,
                           b: int = 32, value_size: int = 512) -> dict:
    """Byte-identity oracle over the backend × worker matrix.

    Every available crypto backend at every worker count must reproduce
    the serial ``pure`` run's adversary trace and responses exactly —
    the acceptance contract that makes both the backend and the pool
    pure wall-clock knobs.  ``min_batch=1`` forces even the small
    plan-phase batches across the process boundary.
    """
    from repro.crypto.backend import available_backend_names

    if backends is None:
        backends = available_backend_names()
    reference = bench_rounds_parallel(
        workers=1, n=n, rounds=rounds, seed=seed, b=b,
        value_size=value_size, min_batch=1, backend="pure")
    combos: dict = {}
    identical = True
    for backend in backends:
        for workers in worker_counts:
            row = bench_rounds_parallel(
                workers=workers, n=n, rounds=rounds, seed=seed, b=b,
                value_size=value_size, min_batch=1, backend=backend)
            match = (row["trace"] == reference["trace"]
                     and row["responses"] == reference["responses"])
            combos[f"{backend}x{workers}"] = {
                "backend": row["backend"], "workers": workers,
                "trace": row["trace"], "responses": row["responses"],
                "identical": match,
            }
            identical = identical and match
    return {"reference": {"trace": reference["trace"],
                          "responses": reference["responses"]},
            "combos": combos, "identical": identical}


def compare_telemetry_traces(workers: int = 2, n: int = 256, rounds: int = 6,
                             seed: int = 31, b: int = 32,
                             value_size: int = 512) -> dict:
    """Worker-telemetry neutrality oracle (the PR-7 acceptance check).

    A pooled run with full observability on — per-chunk telemetry deltas
    piggybacking on every response frame — must reproduce the serial,
    observability-off run's adversary trace and responses byte for byte.
    The telemetry must also actually arrive: the merged
    ``parallel.worker.chunks.total`` counters must account for at least
    one chunk per round, each labelled with the worker that ran it.
    ``min_batch=1`` forces every kernel call through the pool so the
    piggyback rides every dispatch path.
    """
    from repro import obs

    reference = bench_rounds_parallel(
        workers=1, n=n, rounds=rounds, seed=seed, b=b,
        value_size=value_size, min_batch=1)
    with obs.capture() as handle:
        pooled = bench_rounds_parallel(
            workers=workers, n=n, rounds=rounds, seed=seed, b=b,
            value_size=value_size, min_batch=1)
        worker_chunks = 0.0
        worker_ids: list[str] = []
        for name, labels, metric in handle.registry:
            if name == "parallel.worker.chunks.total":
                worker_chunks += metric.value
                worker = dict(labels).get("worker")
                if worker and worker not in worker_ids:
                    worker_ids.append(worker)
    identical = (pooled["trace"] == reference["trace"]
                 and pooled["responses"] == reference["responses"])
    return {
        "workers": workers,
        "trace": {"off": reference["trace"], "on": pooled["trace"]},
        "responses": {"off": reference["responses"],
                      "on": pooled["responses"]},
        "worker_chunks_merged": worker_chunks,
        "workers_reporting": sorted(worker_ids),
        "telemetry_arrived": worker_chunks >= rounds,
        "identical": identical,
    }


def compare_shard_traces(partitions: int = 2, shard_workers: int = 2,
                         n_per_partition: int = 256, rounds: int = 6,
                         seed: int = 13) -> dict:
    """Serial vs shard-parallel ``PartitionedWaffle``: per-partition
    adversary traces and the merged responses must be byte-identical."""
    from repro.scaleout.partitioned import PartitionedWaffle

    config = WaffleConfig.paper_defaults(n=n_per_partition, seed=seed)
    candidates = (f"user{i:08d}" for i in range(64 * n_per_partition))
    keys = PartitionedWaffle.plan_partitions(
        candidates, n_per_partition, partitions, master_seed=seed)
    items = {
        key: f"value-of-{key}".encode().ljust(64, b".")
        for key in keys
    }
    rng = random.Random(seed)
    batches = []
    for _ in range(rounds):
        batch = []
        for _ in range(partitions * config.r):
            key = keys[rng.randrange(len(keys))]
            if rng.random() < 0.3:
                batch.append(ClientRequest(
                    op=Operation.WRITE, key=key,
                    value=b"write-%06d" % rng.randrange(10**6)))
            else:
                batch.append(ClientRequest(op=Operation.READ, key=key))
        batches.append(batch)

    out: dict = {}
    for mode, workers in (("serial", 1), ("parallel", shard_workers)):
        store = PartitionedWaffle(config, items, partitions,
                                  master_seed=seed, record=True,
                                  shard_workers=workers)
        try:
            responses = hashlib.sha256()
            for batch in batches:
                for resp in store.execute_batch(batch):
                    responses.update(
                        resp.key.encode() + b"\x00" + resp.value)
            out[mode] = {
                "traces": [_trace_digest(part.recorder.records)
                           for part in store.stores],
                "responses": responses.hexdigest(),
            }
        finally:
            store.close()
    out["identical"] = out["serial"] == out["parallel"]
    return out


def run_parallel_benchmark(worker_counts: Sequence[int] = (1, 2, 4, 8),
                           n: int = 1024, rounds: int = 12,
                           seed: int = 23,
                           backends: Sequence[str] | None = None) -> dict:
    """The full multi-core report consumed by ``benchmarks/bench_parallel.py``.

    Sweeps ``worker_counts`` through :func:`bench_rounds_parallel` on
    the default (shm) transport, overlays the measured speedup curve on
    the :class:`PipelineModel` prediction for the same round shape,
    re-measures the 2-worker point on the legacy pipe transport (the
    regression this engine exists to fix), adds a backend-labelled run
    per available crypto backend, and bundles the byte-identity oracles
    (worker counts, backend × worker matrix, shard partitions).

    ``backends`` restricts the backend matrix; ``None`` measures every
    backend whose wheel imports (always at least ``pure``).
    """
    from repro.crypto.backend import available_backend_names
    from repro.sim.costmodel import CostModel
    from repro.sim.pipeline import model_from_cost

    config = parallel_round_config(n=n, seed=seed)
    measured = {}
    base = None
    for workers in worker_counts:
        row = bench_rounds_parallel(workers=workers, n=n, rounds=rounds,
                                    seed=seed)
        if base is None:
            base = row["rounds_per_sec"]
        row["speedup"] = row["rounds_per_sec"] / base
        measured[workers] = row

    model = model_from_cost(config, CostModel())
    model_base = model.simulate(1).throughput_rounds_per_s
    modeled = {
        workers: model.simulate(workers).throughput_rounds_per_s / model_base
        for workers in worker_counts
    }

    # The transport ablation: same 2-worker run through the PR-5 pickle
    # pipe, so the report always shows what the shm segments bought.
    transports = {}
    ablation_workers = next((w for w in worker_counts if w > 1), None)
    if ablation_workers is not None:
        for transport in ("shm", "pipe"):
            row = bench_rounds_parallel(
                workers=ablation_workers, n=n, rounds=rounds, seed=seed,
                transport=transport)
            row["speedup"] = row["rounds_per_sec"] / base
            transports[transport] = row

    # Backend-labelled runs at the same shape (serial + one pooled
    # point): wall-clock per backend, digests prove byte-identity.
    if backends is None:
        backends = available_backend_names()
    backend_runs: dict = {}
    for backend in backends:
        serial = bench_rounds_parallel(workers=1, n=n, rounds=rounds,
                                       seed=seed, backend=backend)
        serial["speedup"] = serial["rounds_per_sec"] / base
        backend_runs[backend] = {"1": serial}
        if ablation_workers is not None:
            pooled = bench_rounds_parallel(
                workers=ablation_workers, n=n, rounds=rounds, seed=seed,
                backend=backend)
            pooled["speedup"] = pooled["rounds_per_sec"] / base
            backend_runs[backend][str(ablation_workers)] = pooled

    reference = {"trace": measured[worker_counts[0]]["trace"],
                 "responses": measured[worker_counts[0]]["responses"]}

    def _matches(row: dict) -> bool:
        return (row["trace"] == reference["trace"]
                and row["responses"] == reference["responses"])

    return {
        "schema": "repro.parallel/2",
        "cpu_count": os.cpu_count(),
        "config": {"n": config.n, "b": config.b, "r": config.r,
                   "f_d": config.f_d, "value_size": config.value_size,
                   "rounds": rounds},
        "measured": measured,
        "modeled_speedup": modeled,
        "transports": transports,
        "backends": backend_runs,
        "digests_identical": (
            all(_matches(row) for row in measured.values())
            and all(_matches(row) for row in transports.values())
            and all(_matches(row) for runs in backend_runs.values()
                    for row in runs.values())),
        "backend_equivalence": compare_backend_traces(
            worker_counts=tuple(w for w in worker_counts if w <= 4),
            backends=backends),
        "shard_equivalence": compare_shard_traces(),
        "small_shape_equivalence": compare_parallel_traces(),
        "telemetry": compare_telemetry_traces(),
    }


def run_wallclock_benchmark(n: int = 2048, rounds: int = 30,
                            repeats: int = 3) -> dict:
    """The full wall-clock report consumed by ``bench_wallclock.py``."""
    e2e_scalar = min(
        (bench_rounds(n=n, rounds=rounds, scalar=True) for _ in range(repeats)),
        key=lambda row: row["seconds"])
    e2e_batched = min(
        (bench_rounds(n=n, rounds=rounds, scalar=False) for _ in range(repeats)),
        key=lambda row: row["seconds"])
    return {
        "schema": "repro.wallclock/1",
        "kernels": {
            "prf": bench_prf_kernel(repeats=repeats),
            "aead": bench_aead_kernel(repeats=repeats),
            "index": bench_index_kernel(repeats=repeats),
            "cache": bench_cache_kernel(repeats=repeats),
        },
        "end_to_end": {
            "scalar": e2e_scalar,
            "batched": e2e_batched,
            "rounds_per_sec_speedup": (
                e2e_batched["rounds_per_sec"] / e2e_scalar["rounds_per_sec"]),
        },
        "trace_equivalence": compare_traces(),
    }
