"""Calibrated cost model: charges simulated time for protocol primitives.

Why a cost model
----------------
The paper's performance numbers (Figures 2-3, Table 2 throughput) come from
a C++ proxy and Redis on dedicated machines with 10 Gbps Ethernet.  The
protocol *behaviour* — what is read, written, cached, faked — is fully
reproduced by this library; the *clock* is modelled.  Every system driver
runs its real protocol and charges the primitives below to a
:class:`~repro.sim.clock.SimClock`.  Ratios between systems then follow
from genuine operation counts (round trips saved by batching, bytes moved
per request, per-item proxy work), which is what the paper's comparisons
measure.

Calibration
-----------
Constants were fixed once, by hand, so that the paper's default
configuration (N=10^6-scaled, B=2500-scaled, R=40%, f_D=20%, 4 cores)
lands near the reported numbers, and never tuned per experiment:

* ``rtt_s`` / ``transfer_per_kib_s``: a same-rack 10 Gbps network
  (1 KiB = 0.82 us at line rate).
* ``server_op_pipelined_s`` vs ``server_op_unbatched_s``: Redis executes
  ~1 M pipelined ops/s but an individual request pays syscall + scheduling;
  the gap between the two constants is what batching buys and is the main
  source of Waffle's advantage over per-request systems (TaoStore).
* ``proxy_item_s``: per-object bookkeeping in the proxy (batch assembly,
  hash-map updates, response routing).  Dominates Waffle's round time, as
  the paper's core-count experiment (Fig 2c) implies.
* ``lru_*``: Figure 2d shows Waffle slowing down as the cache grows; the
  paper attributes this to LRU recency tracking.  We model a cache
  operation as ``lru_base_s + lru_log_s * log2(C+1)``.
* ``core_efficiency``: Figure 2c's shape — +58.9% throughput from 1 to 4
  cores, then a ~40% decline from contention — is a property of their
  proxy's synchronization.  We reproduce it with an Amdahl-style curve
  (sigma = 0.44; end-to-end throughput then gains ~59% from 1 to 4 cores
  once the fixed network share is included) plus a linear contention penalty
  beyond 4 cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CostModel"]


@dataclass
class CostModel:
    """Cost constants (seconds) and derived helpers."""

    #: Proxy <-> server network round-trip time.
    rtt_s: float = 150e-6
    #: Wire time per KiB (10 Gbps line rate).
    transfer_per_kib_s: float = 0.82e-6
    #: Server-side cost per command inside a pipeline.
    server_op_pipelined_s: float = 0.2e-6
    #: Server-side cost per stand-alone command (syscall + scheduling).
    server_op_unbatched_s: float = 60e-6
    #: One PRF evaluation at the proxy.
    prf_s: float = 1e-6
    #: Authenticated encryption or decryption, per KiB.
    aead_per_kib_s: float = 3e-6
    #: Per-object proxy bookkeeping (batch assembly, routing, maps).
    proxy_item_s: float = 20e-6
    #: LRU bookkeeping: base + log-factor (see module docstring).
    lru_base_s: float = 0.5e-6
    lru_log_s: float = 0.3e-6
    #: Ordered-index (treap) operation: charged per log2(n) factor.
    index_log_s: float = 0.1e-6
    #: Client-side per-request overhead for unproxied (insecure) access.
    client_overhead_s: float = 295e-6
    #: Closed-loop client threads driving the system (paper: multi-threaded
    #: client machine).  Used to convert service time into throughput for
    #: per-request systems and into queueing latency for TaoStore.
    client_threads: int = 20
    #: Proxy cores (Figure 2c sweeps this; 4 is the paper's default).
    cores: int = 4
    #: Pancake-specific: one updateCache maintenance step.
    pancake_update_cache_s: float = 2e-6
    #: Pancake-specific: sampling the fake-query distribution (alias table).
    pancake_sample_s: float = 1.5e-6
    #: Pancake-specific: residual per-slot proxy overhead (coin flip,
    #: per-request response routing and locking).  The paper measures
    #: Waffle 45-57% faster than Pancake at equal batch shapes but does
    #: not itemize the cause; this constant encodes that measured
    #: implementation gap (see DESIGN.md §5).
    pancake_slot_s: float = 55e-6
    #: TaoStore-specific: per-bucket sequencer/flush serialization
    #: overhead — the serialized write-back that caps TaoStore's
    #: throughput (~300 ms request latency in the paper's Figure 2b).
    taostore_bucket_s: float = 640e-6

    #: Amdahl sigma for the core-efficiency curve (eff(4) = 1.589).
    core_sigma: float = 0.40
    #: Contention decline per core beyond 4 (Figure 2c's drop-off).
    core_contention: float = 0.12
    #: Floor on the post-peak efficiency factor.
    core_floor: float = 0.50

    derived: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def core_efficiency(self, cores: int | None = None) -> float:
        """Effective parallel speedup of the proxy's CPU-bound work."""
        c = self.cores if cores is None else cores
        if c < 1:
            raise ValueError("core count must be positive")
        base = c / (1.0 + self.core_sigma * (c - 1))
        peak = 4 / (1.0 + self.core_sigma * 3)
        if c <= 4:
            return base
        penalty = max(self.core_floor, 1.0 - self.core_contention * (c - 4))
        return peak * penalty

    def transfer_s(self, n_items: int, value_kib: float) -> float:
        """Wire time for ``n_items`` values of ``value_kib`` KiB each."""
        return n_items * value_kib * self.transfer_per_kib_s

    def aead_s(self, n_items: int, value_kib: float) -> float:
        """Encrypt or decrypt ``n_items`` values."""
        return n_items * max(value_kib, 0.0625) * self.aead_per_kib_s

    def lru_op_s(self, cache_size: int) -> float:
        """One cache recency/insert/evict operation on a cache of given size."""
        return self.lru_base_s + self.lru_log_s * math.log2(cache_size + 2)

    def index_op_s(self, index_size: int) -> float:
        """One ordered-index (BST) operation."""
        return self.index_log_s * math.log2(index_size + 2)

    def pipelined_round_trip_s(self, n_ops: int, value_kib: float) -> float:
        """One batched server round trip carrying ``n_ops`` operations."""
        return (
            self.rtt_s
            + n_ops * self.server_op_pipelined_s
            + self.transfer_s(n_ops, value_kib)
        )

    def unbatched_op_s(self, value_kib: float) -> float:
        """One stand-alone server operation (its own round trip)."""
        return self.rtt_s + self.server_op_unbatched_s + self.transfer_s(1, value_kib)
