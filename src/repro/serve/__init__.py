"""``repro.serve`` — the asyncio serving frontend.

Everything below the proxy already scales (batched kernels, worker
pools, sharded partitions); this package is the piece that faces the
*clients*: a long-lived asyncio server that accepts thousands of
concurrent connections, coalesces arriving get/put requests into Waffle
rounds, and applies an explicit admission/backpressure policy so that
overload degrades into retryable shedding instead of unbounded queueing.

Three layers (DESIGN.md §13):

* :mod:`repro.serve.policy` — pluggable round-release schedulers
  (on-fill, max-wait, fixed-interval).  Policies are pure decision
  functions over timestamps, so the same objects drive the live server
  on ``time.perf_counter`` and the deterministic tests on a
  :class:`~repro.sim.clock.SimClock`.
* :mod:`repro.serve.frontend` — :class:`AsyncFrontend`, the coalescing
  core: a bounded pending queue (:class:`AdmissionController`), one
  dispatcher task, rounds executed one at a time off the event loop.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` —
  :class:`ServeServer` speaking the :mod:`repro.net.protocol` framing
  over asyncio streams, and :class:`AsyncServeClient`, its stub.
* :mod:`repro.serve.sharded` — :class:`ShardedFrontend`, the
  multi-proxy scale-out: key-hash routing to P per-partition frontends
  over a :class:`~repro.scaleout.PartitionedWaffle`, rounds running
  concurrently across partitions on a shared sized executor
  (DESIGN.md §14).

The security posture of every release policy is *observable*: the
frontend records the release instant each policy commits to, and the
PR-7 timing observatory (:mod:`repro.analysis.timing`) scores the live
schedule exactly like the simulated one — fixed-interval release scores
0.0 leakage because its committed schedule is a constant grid.
"""

from repro.serve.admission import AdmissionController
from repro.serve.client import AsyncServeClient
from repro.serve.frontend import AsyncFrontend
from repro.serve.policy import (
    FixedIntervalPolicy,
    MaxWaitPolicy,
    OnFillPolicy,
    RandomizedIntervalPolicy,
    ReleasePolicy,
    make_policy,
)
from repro.serve.server import ServeServer
from repro.serve.sharded import ShardedFrontend

__all__ = [
    "AdmissionController",
    "AsyncFrontend",
    "AsyncServeClient",
    "FixedIntervalPolicy",
    "MaxWaitPolicy",
    "OnFillPolicy",
    "RandomizedIntervalPolicy",
    "ReleasePolicy",
    "ServeServer",
    "ShardedFrontend",
    "make_policy",
]
