"""The long-lived serving endpoint: framed get/put over asyncio streams.

:class:`ServeServer` binds an :class:`~repro.serve.frontend.AsyncFrontend`
to a TCP listener speaking the :mod:`repro.net.protocol` framing.  One
lightweight task per connection; each connection processes its frames
sequentially (one in-flight request per connection, matching
:class:`repro.net.client.RemoteStore`'s per-connection ordering), while
concurrency comes from many connections — the fan-in the frontend
coalesces into rounds.

Commands (requests are ``["NAME", args...]`` value trees):

=========  =====================================  =======================
command    arguments                              reply
=========  =====================================  =======================
``GET``    key                                    value bytes
``PUT``    key, value bytes                       ``b"OK"``
``PING``   —                                      ``b"PONG"``
``STATS``  —                                      ``[admitted, shed,
                                                  depth, high_water,
                                                  rounds]``
``SHARDS``  —                                     per-partition
                                                  ``[admitted, shed,
                                                  depth, high_water,
                                                  rounds]`` rows (one
                                                  row for an unsharded
                                                  frontend)
=========  =====================================  =======================

Failure behaviour is the battery's whole point:

* a **shed** request surfaces as a wire error named ``OverloadedError``
  (the client stub re-raises the retryable taxonomy type);
* a **slow-loris** peer (stalling mid-frame) pends inside its own
  connection task; rounds keep firing for everyone else;
* a peer that **disconnects mid-round** merely loses its reply — the
  dispatcher owns round execution, so the round commits and every other
  waiter resolves normally (the write failure is swallowed per
  connection).
"""

from __future__ import annotations

import asyncio

from repro.errors import ClosedError
from repro.net.protocol import (
    decode_message,
    encode_message,
    read_frame_async,
    write_frame_async,
)
from repro.obs import OBS
from repro.serve.frontend import AsyncFrontend

__all__ = ["ServeServer"]


class ServeServer:
    """Serve an :class:`AsyncFrontend` (or `ShardedFrontend`) over TCP.

    Parameters
    ----------
    frontend:
        The coalescing core to expose (not yet started; :meth:`start`
        starts both).  Anything with the frontend surface works —
        ``start``/``close``/``get``/``put``/``stats`` — so the sharded
        multi-proxy frontend (:mod:`repro.serve.sharded`) plugs in
        unchanged.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    """

    def __init__(self, frontend: AsyncFrontend,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.frontend = frontend
        self._host = host
        self._port = port
        self._server: asyncio.base_events.Server | None = None
        self.address: tuple[str, int] | None = None
        self.connections_total = 0
        self.connections_active = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServeServer":
        await self.frontend.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def stop(self) -> None:
        """Stop accepting, drain in-flight rounds, close the frontend."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.frontend.close()

    async def __aenter__(self) -> "ServeServer":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections_total += 1
        self.connections_active += 1
        if OBS.enabled:
            OBS.registry.counter("serve.connections.total").inc()
            OBS.registry.gauge("serve.connections.active").set(
                self.connections_active)
        try:
            while True:
                try:
                    request = decode_message(await read_frame_async(reader))
                except (ConnectionError, asyncio.CancelledError, OSError):
                    return
                reply = await self._dispatch(request)
                try:
                    await write_frame_async(writer, encode_message(reply))
                except (ConnectionError, OSError):
                    # Peer died while its round was in flight; the round
                    # itself already committed for everyone else.
                    return
        finally:
            self.connections_active -= 1
            if OBS.enabled:
                OBS.registry.gauge("serve.connections.active").set(
                    self.connections_active)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request):
        if not isinstance(request, list) or not request:
            return ValueError("malformed request")
        name = request[0]
        try:
            if name == "GET":
                return await self.frontend.get(request[1])
            if name == "PUT":
                await self.frontend.put(request[1], bytes(request[2]))
                return b"OK"
            if name == "PING":
                return b"PONG"
            if name == "STATS":
                stats = self.frontend.stats()
                return [stats["admitted"], stats["shed"], stats["depth"],
                        stats["high_water"], stats["rounds"]]
            if name == "SHARDS":
                per_partition = getattr(self.frontend,
                                        "per_partition_stats", None)
                rows = (per_partition() if per_partition is not None
                        else [self.frontend.stats()])
                return [[row["admitted"], row["shed"], row["depth"],
                         row["high_water"], row["rounds"]]
                        for row in rows]
            return ValueError(f"unknown command {name!r}")
        except ClosedError as error:
            return error
        except Exception as error:  # noqa: BLE001 - errors travel the wire
            return error
