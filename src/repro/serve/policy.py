"""Round-release policies: *when* the serving frontend fires a round.

Waffle's guarantees cover *which* storage ids a round touches; the
timing observatory (:mod:`repro.analysis.timing`, DESIGN.md §12) showed
that *when* rounds fire is its own leakage surface.  This module makes
that surface an explicit policy object on the serving frontend:

* :class:`OnFillPolicy` — fire the moment R requests are pending.
  Lowest latency under load, but the release schedule tracks the
  arrival rate: the leaky baseline the timing attacks invert.
* :class:`MaxWaitPolicy` — on-fill plus a deadline: a partial batch
  fires once its oldest request has waited ``max_wait_s``.  The
  deployable latency/overhead compromise (the async sibling of
  :class:`repro.core.scheduler.BatchScheduler`).
* :class:`FixedIntervalPolicy` — fire on a fixed grid regardless of
  arrivals (Cloak-style temporal shaping).  The schedule the policy
  commits to is a constant grid, so the load-inference and onset
  attacks score exactly 0.0 against it.
* :class:`RandomizedIntervalPolicy` — fire on a *seeded jittered* grid:
  each committed gap is ``interval_s`` plus a uniform draw from
  ``[-jitter_s, +jitter_s]`` out of a private seeded rng.  The
  schedule is still decided before any request arrives (workload
  independent — the Cloak randomized-shaping point on the
  privacy-vs-latency frontier), but its gaps are no longer constant:
  partial batches release off-grid-looking instants, which defeats an
  adversary fingerprinting the deployment by its exact grid period.
  Leakage is bounded by residual noise (the tests pin it under the
  oracle's shaped-schedule ceiling), not exactly 0.0 like the fixed
  grid.

Grid policies additionally support :meth:`~FixedIntervalPolicy.align`:
a sharded deployment (:mod:`repro.serve.sharded`) pins every
partition's epoch to one shared instant *before* the dispatchers start,
so P independent fixed-interval schedules commit to the *same* grid and
their merged release schedule is indistinguishable from a single
proxy's.

Policies are pure decision functions over timestamps — they never read
a clock themselves.  The frontend supplies ``now`` (``time.perf_counter``
live, :attr:`repro.sim.clock.SimClock.now` in tests), which keeps the
policies byte-for-byte testable on simulated time and keeps oblint's
determinism pass (OBL201) trivially satisfied.

The **committed release instant** is the policy's answer to
:meth:`release_time`: on-fill and max-wait release "now" (the schedule
is workload-shaped), while fixed-interval releases *the grid tick* —
sub-tick dispatch jitter is host noise below the adversary's sampling
resolution, not protocol information, and the timing oracle scores the
committed schedule.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

__all__ = [
    "FixedIntervalPolicy",
    "MaxWaitPolicy",
    "OnFillPolicy",
    "RandomizedIntervalPolicy",
    "ReleasePolicy",
    "make_policy",
]


class ReleasePolicy(ABC):
    """Decides when pending requests become a Waffle round.

    The dispatcher asks :meth:`due` whether to fire given the queue
    state and the current time, :meth:`next_deadline` for the instant it
    should re-ask without new arrivals (``None`` = only arrivals can
    change the answer), and :meth:`release_time` for the instant the
    schedule commits to; :meth:`mark_release` then advances any internal
    schedule state.
    """

    #: Policy name used in metrics labels and benchmark rows.
    name: str = "abstract"

    #: Whether the policy fires rounds with an empty queue (shaped
    #: schedules do: an empty round is all fake queries, still B/B/B).
    fires_empty: bool = False

    @abstractmethod
    def due(self, pending: int, oldest_arrival: float | None,
            now: float) -> bool:
        """Should a round fire right now?"""

    @abstractmethod
    def next_deadline(self, pending: int, oldest_arrival: float | None,
                      now: float) -> float | None:
        """Earliest future instant at which :meth:`due` may flip to True."""

    def release_time(self, now: float) -> float:
        """The release instant the schedule commits to (default: now)."""
        return now

    def mark_release(self, release_time: float) -> None:
        """Advance schedule state after a round fired at ``release_time``."""


class OnFillPolicy(ReleasePolicy):
    """Fire as soon as R requests are pending — the leaky baseline.

    Pure on-fill never fires a partial batch: under light load requests
    wait until the batch fills (the frontend's close() drains
    stragglers).  Use :class:`MaxWaitPolicy` for bounded latency.
    """

    name = "on_fill"

    def __init__(self, r: int) -> None:
        if r < 1:
            raise ConfigurationError("batch size r must be >= 1")
        self.r = r

    def due(self, pending: int, oldest_arrival: float | None,
            now: float) -> bool:
        return pending >= self.r

    def next_deadline(self, pending: int, oldest_arrival: float | None,
                      now: float) -> float | None:
        return None  # only a new arrival can fill the batch


class MaxWaitPolicy(ReleasePolicy):
    """On-fill with a straggler deadline on the oldest pending request."""

    name = "max_wait"

    def __init__(self, r: int, max_wait_s: float) -> None:
        if r < 1:
            raise ConfigurationError("batch size r must be >= 1")
        if max_wait_s <= 0:
            raise ConfigurationError("max_wait_s must be positive")
        self.r = r
        self.max_wait_s = max_wait_s

    def due(self, pending: int, oldest_arrival: float | None,
            now: float) -> bool:
        if pending >= self.r:
            return True
        if pending > 0 and oldest_arrival is not None:
            return now - oldest_arrival >= self.max_wait_s
        return False

    def next_deadline(self, pending: int, oldest_arrival: float | None,
                      now: float) -> float | None:
        if pending > 0 and oldest_arrival is not None:
            return oldest_arrival + self.max_wait_s
        return None


class FixedIntervalPolicy(ReleasePolicy):
    """Fire on a fixed grid — temporal shaping, arrivals be damned.

    The grid is ``epoch + k * interval_s``; the epoch is pinned by the
    first :meth:`due`/:meth:`next_deadline` query (the frontend's start).
    A round that overruns its tick does not trigger make-up bursts: the
    next release lands on the next *future* grid point, so committed
    gaps are always exact multiples of ``interval_s``.  With no pending
    requests the round is dispatched anyway (``fires_empty``) — an
    all-fake batch, shape-identical to a full one, which is precisely
    what decouples the schedule from the workload.
    """

    name = "fixed_interval"
    fires_empty = True

    def __init__(self, interval_s: float) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        self.interval_s = interval_s
        self._epoch: float | None = None
        self._next_tick: float | None = None

    def _arm(self, now: float) -> None:
        if self._epoch is None:
            self._epoch = now
            self._next_tick = now + self.interval_s

    def align(self, epoch: float) -> None:
        """Pin the grid's epoch before the dispatcher first queries.

        A sharded deployment aligns every partition's policy to one
        shared epoch so the P committed grids coincide tick-for-tick
        (float-exactly: each tick is computed as ``epoch + k *
        interval`` from identical operands).  Aligning an already-armed
        policy is a configuration error — the grid is committed.
        """
        if self._epoch is not None:
            raise ConfigurationError(
                "cannot re-align an armed fixed-interval grid")
        self._epoch = epoch
        self._next_tick = epoch + self.interval_s

    def due(self, pending: int, oldest_arrival: float | None,
            now: float) -> bool:
        self._arm(now)
        assert self._next_tick is not None
        return now >= self._next_tick

    def next_deadline(self, pending: int, oldest_arrival: float | None,
                      now: float) -> float | None:
        self._arm(now)
        return self._next_tick

    def release_time(self, now: float) -> float:
        """The grid tick this release commits to (never ``now`` itself)."""
        self._arm(now)
        assert self._epoch is not None and self._next_tick is not None
        if now < self._next_tick:  # pragma: no cover - defensive
            return self._next_tick
        # The latest grid point at or before now.
        ticks = math.floor((now - self._epoch) / self.interval_s)
        return self._epoch + max(1, ticks) * self.interval_s

    def mark_release(self, release_time: float) -> None:
        # Skip any ticks the round overran; never schedule in the past.
        self._next_tick = release_time + self.interval_s


class RandomizedIntervalPolicy(ReleasePolicy):
    """Fire on a seeded jittered grid — randomized temporal shaping.

    Every committed gap is an independent draw ``interval_s +
    U(-jitter_s, +jitter_s)`` from a private ``random.Random(seed)``.
    The whole schedule is therefore fixed by ``(interval_s, jitter_s,
    seed, epoch)`` before the first request arrives: arrivals influence
    *what* a round carries, never *when* it fires, so the load-inference
    attack sees only seeded noise (bounded in the tests by the oracle's
    shaped-schedule ceiling).  Like the fixed grid, empty rounds are
    dispatched as all-fake batches, and an overrun *merges* skipped
    scheduled ticks into one release — the committed instants are always
    a subsequence of the pre-drawn schedule, never make-up bursts.
    """

    name = "randomized_interval"
    fires_empty = True

    def __init__(self, interval_s: float, jitter_s: float,
                 seed: int = 0) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if not 0 <= jitter_s < interval_s:
            raise ConfigurationError(
                "jitter_s must satisfy 0 <= jitter_s < interval_s "
                "(gaps must stay positive)")
        self.interval_s = interval_s
        self.jitter_s = jitter_s
        self.seed = seed
        self._rng = random.Random(seed)
        self._epoch: float | None = None
        self._next_tick: float | None = None
        self._pending_tick: float | None = None

    def _draw_gap(self) -> float:
        if self.jitter_s == 0:
            return self.interval_s
        return self.interval_s + self._rng.uniform(-self.jitter_s,
                                                   self.jitter_s)

    def _arm(self, now: float) -> None:
        if self._epoch is None:
            self._epoch = now
            self._next_tick = now + self._draw_gap()

    def align(self, epoch: float) -> None:
        """Pin the schedule's epoch (sharded deployments share one).

        Partitions constructed with the same ``(interval_s, jitter_s,
        seed)`` and aligned to the same epoch commit to float-identical
        schedules, so the merged sharded schedule deduplicates to the
        single-proxy one.
        """
        if self._epoch is not None:
            raise ConfigurationError(
                "cannot re-align an armed randomized-interval schedule")
        self._epoch = epoch
        self._next_tick = epoch + self._draw_gap()

    def due(self, pending: int, oldest_arrival: float | None,
            now: float) -> bool:
        self._arm(now)
        assert self._next_tick is not None
        return now >= self._next_tick

    def next_deadline(self, pending: int, oldest_arrival: float | None,
                      now: float) -> float | None:
        self._arm(now)
        return self._next_tick

    def release_time(self, now: float) -> float:
        """The latest pre-drawn scheduled tick at or before ``now``."""
        self._arm(now)
        assert self._next_tick is not None
        tick = self._next_tick
        upcoming = tick + self._draw_gap()
        if now >= tick:
            while upcoming <= now:  # overrun: merge skipped ticks
                tick, upcoming = upcoming, upcoming + self._draw_gap()
        self._pending_tick = upcoming
        return tick

    def mark_release(self, release_time: float) -> None:
        assert self._pending_tick is not None
        self._next_tick = self._pending_tick
        self._pending_tick = None


def make_policy(name: str, r: int, max_wait_s: float = 0.01,
                interval_s: float = 0.02, jitter_s: float | None = None,
                seed: int = 0) -> ReleasePolicy:
    """Factory used by the CLI, benchmarks, and the chaos harness."""
    normalized = name.replace("-", "_")
    if normalized == "on_fill":
        return OnFillPolicy(r)
    if normalized == "max_wait":
        return MaxWaitPolicy(r, max_wait_s)
    if normalized == "fixed_interval":
        return FixedIntervalPolicy(interval_s)
    if normalized == "randomized_interval":
        jitter = interval_s * 0.5 if jitter_s is None else jitter_s
        return RandomizedIntervalPolicy(interval_s, jitter, seed=seed)
    raise ConfigurationError(
        f"unknown release policy {name!r}; choose on-fill, max-wait, "
        "fixed-interval, or randomized-interval")
