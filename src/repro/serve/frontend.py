"""The coalescing core: many awaiting clients, one round dispatcher.

:class:`AsyncFrontend` is the asyncio sibling of
:class:`repro.core.frontend.ConcurrentFrontend`: clients ``await
get()``/``put()`` from any task and are resolved when the round carrying
their request completes.  The differences are what make it a *server*
core rather than a test harness:

* **admission control** — a bounded pending queue
  (:class:`~repro.serve.admission.AdmissionController`); offered load
  past the cap is shed with a retryable
  :class:`~repro.errors.OverloadedError` before it touches the proxy;
* **pluggable release scheduling** — a
  :class:`~repro.serve.policy.ReleasePolicy` decides when pending
  requests become a round, and the frontend records every committed
  release instant in :attr:`release_times` so the PR-7 timing
  observatory can score the live schedule;
* **off-loop execution** — rounds run one at a time on a *dedicated*
  executor, so the event loop keeps accepting connections and arrivals
  while Algorithm 1 grinds (the proxy stays single-threaded per round,
  exactly like the paper's per-batch critical section).  The frontend
  owns a single-thread pool by default; a sharded deployment
  (:mod:`repro.serve.sharded`) passes one sized executor so P
  frontends' rounds run concurrently without fighting the event loop's
  default pool (or each other's unrelated ``run_in_executor`` work).

Determinism: the pending queue is FIFO and asyncio is single-threaded,
so the requests of each round are exactly the admission order — an
N-task fan-in that enqueues in a known order produces byte-identical
responses *and* a byte-identical adversary trace to executing the same
round partition serially (``tests/test_serve_concurrent.py`` pins both
digests).

Round failures follow the library taxonomy: a retryable error
(`is_retryable`) is retried up to ``max_round_retries`` times — invoking
``on_retry`` first, e.g. to reconnect a dropped transport — because
deterministic replay re-issues the identical access pattern and leaks
nothing new; a fatal error is delivered to every waiter of the round.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Callable

from repro.core.batch import ClientRequest, ClientResponse
from repro.errors import ClosedError, ConfigurationError, is_retryable
from repro.obs import OBS
from repro.serve.admission import AdmissionController
from repro.serve.policy import OnFillPolicy, ReleasePolicy
from repro.workloads.trace import Operation

__all__ = ["AsyncFrontend"]

#: A round executor: list of prepared requests -> list of responses.
RoundExecutor = Callable[[list[ClientRequest]], list[ClientResponse]]


class _Waiter:
    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: ClientRequest, future: "asyncio.Future[bytes]",
                 enqueued_at: float) -> None:
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at


class AsyncFrontend:
    """Round-coalescing asyncio facade over a Waffle datastore.

    Parameters
    ----------
    datastore:
        The deployment to serve (supplies ``execute`` and ``r`` unless
        overridden).
    policy:
        Release scheduler; defaults to :class:`OnFillPolicy` at the
        datastore's R.
    queue_cap:
        Admission cap on pending (undispatched) requests.
    execute:
        Round executor override — the chaos harness wraps the datastore
        call with fault retry/bookkeeping here.
    r:
        Batch size override when ``execute`` is supplied without a
        datastore.
    clock:
        Timestamp source for arrival times and release instants
        (``time.perf_counter`` by default; tests inject a SimClock read).
    max_round_retries / on_retry:
        Retry budget for retryable round failures, and the hook invoked
        before each retry (e.g. ``transport.reconnect``).
    executor:
        Where rounds run.  ``None`` (default) creates a dedicated
        single-thread pool owned (and shut down) by this frontend —
        rounds are strictly sequential, so one thread is exactly
        enough, and round execution can never be starved by unrelated
        work on the loop's default pool.  A sharded deployment passes
        one shared sized executor so partitions' rounds run
        concurrently; a shared executor is never shut down here.
    shard:
        Partition label for a sharded deployment.  When set, the
        ``serve.shard.*`` per-partition metrics are emitted and every
        ``serve.round`` span/metric carries a ``shard`` label so the
        profiler decomposes round time per partition.
    """

    def __init__(self, datastore=None, *,
                 policy: ReleasePolicy | None = None,
                 queue_cap: int = 1024,
                 execute: RoundExecutor | None = None,
                 r: int | None = None,
                 clock: Callable[[], float] = time.perf_counter,
                 max_round_retries: int = 0,
                 on_retry: Callable[[], None] | None = None,
                 executor: Executor | None = None,
                 shard: str | None = None) -> None:
        if datastore is None and (execute is None or r is None):
            raise ConfigurationError(
                "AsyncFrontend needs a datastore, or execute= plus r=")
        self.datastore = datastore
        self.r = r if r is not None else datastore.config.r
        self._execute: RoundExecutor = (
            execute if execute is not None else datastore.execute_batch)
        self.policy = policy if policy is not None else OnFillPolicy(self.r)
        self.admission = AdmissionController(queue_cap)
        self._clock = clock
        self.max_round_retries = max_round_retries
        self.on_retry = on_retry
        self.shard = shard
        self._round_labels = ({"policy": self.policy.name} if shard is None
                              else {"policy": self.policy.name,
                                    "shard": shard})
        if executor is None:
            self._executor: Executor = ThreadPoolExecutor(
                max_workers=1,
                thread_name_prefix="serve-round" if shard is None
                else f"serve-round-{shard}")
            self._owns_executor = True
        else:
            self._executor = executor
            self._owns_executor = False
        self._pending: deque[_Waiter] = deque()
        self._wakeup = asyncio.Event()
        self._closed = False
        self._dispatcher: asyncio.Task | None = None
        #: Release instants the schedule committed to, in round order —
        #: the series the timing adversary consumes.
        self.release_times: list[float] = []
        self.rounds_dispatched = 0
        #: Requests carried by each dispatched round (0 = all-fake).
        self.round_sizes: list[int] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncFrontend":
        if self._dispatcher is None:
            self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return self

    async def close(self) -> None:
        """Drain pending requests into final rounds, then stop."""
        self._closed = True
        self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncFrontend":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # client interface (called from any task)
    # ------------------------------------------------------------------
    async def get(self, key: str) -> bytes:
        return await self.submit(ClientRequest(op=Operation.READ, key=key))

    async def put(self, key: str, value: bytes) -> bytes:
        return await self.submit(
            ClientRequest(op=Operation.WRITE, key=key, value=value))

    async def submit(self, request: ClientRequest) -> bytes:
        if self._closed:
            raise ClosedError("serving frontend is closed")
        # Admission before enqueue: the pending queue can never exceed
        # its cap, and a shed request leaves no trace anywhere below.
        self.admission.admit()  # raises OverloadedError at the cap
        if OBS.enabled:
            OBS.registry.counter("serve.requests.total",
                                 op=request.op.value).inc()
            if self.shard is None:
                OBS.registry.gauge("serve.pending.depth").set(
                    self.admission.depth)
            else:
                OBS.registry.counter("serve.shard.requests.total",
                                     shard=self.shard,
                                     op=request.op.value).inc()
                OBS.registry.gauge("serve.shard.pending.depth",
                                   shard=self.shard).set(
                    self.admission.depth)
        waiter = _Waiter(request, asyncio.get_running_loop().create_future(),
                         self._clock())
        self._pending.append(waiter)
        self._wakeup.set()
        return await waiter.future

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        policy = self.policy
        while True:
            now = self._clock()
            pending = len(self._pending)
            oldest = self._pending[0].enqueued_at if pending else None
            if self._closed and pending == 0:
                return
            fire = policy.due(pending, oldest, now) \
                and (pending > 0 or (policy.fires_empty and not self._closed))
            if self._closed and pending > 0:
                fire = True  # drain stragglers regardless of policy
            if fire:
                await self._run_round(now)
                continue
            deadline = policy.next_deadline(pending, oldest, now)
            # No await between the queue snapshot above and this clear, so
            # a set event always reflects an arrival we will re-examine.
            self._wakeup.clear()
            timeout = None if deadline is None else max(0.0, deadline - now)
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout)
            except asyncio.TimeoutError:
                continue

    async def _run_round(self, now: float) -> None:
        take = [self._pending.popleft()
                for _ in range(min(self.r, len(self._pending)))]
        self.admission.release(len(take))
        release_time = self.policy.release_time(now)
        self.policy.mark_release(release_time)
        self.release_times.append(release_time)
        self.rounds_dispatched += 1
        self.round_sizes.append(len(take))
        requests = [waiter.request for waiter in take]
        observing = OBS.enabled
        if observing:
            start = time.perf_counter()
            for waiter in take:
                OBS.registry.histogram("serve.wait.seconds",
                                       **self._round_labels).observe(
                    max(0.0, now - waiter.enqueued_at))
            if self.shard is None:
                OBS.registry.gauge("serve.pending.depth").set(
                    self.admission.depth)
            else:
                OBS.registry.gauge("serve.shard.pending.depth",
                                   shard=self.shard).set(
                    self.admission.depth)
        loop = asyncio.get_running_loop()
        try:
            responses = await loop.run_in_executor(
                self._executor, self._execute_with_retry, requests)
        except BaseException as error:  # noqa: BLE001 - deliver to waiters
            for waiter in take:
                if not waiter.future.done():
                    waiter.future.set_exception(error)
            if observing:
                OBS.observe_span("serve.round", time.perf_counter() - start,
                                 labels=self._round_labels,
                                 requests=len(take), error=True)
            return
        by_id = {resp.request_id: resp.value for resp in responses}
        for waiter in take:
            if not waiter.future.done():  # a dead connection may have gone
                waiter.future.set_result(by_id[waiter.request.request_id])
        if observing:
            OBS.registry.counter("serve.rounds.total",
                                 **self._round_labels).inc()
            if self.shard is not None:
                OBS.registry.counter("serve.shard.rounds.total",
                                     shard=self.shard).inc()
            OBS.observe_span("serve.round", time.perf_counter() - start,
                             labels=self._round_labels,
                             requests=len(take), error=False)

    def _execute_with_retry(self,
                            requests: list[ClientRequest]
                            ) -> list[ClientResponse]:
        """Run one round in the executor thread, retrying transients.

        A retried round replays the identical storage access pattern
        (deterministic proxy), so retrying leaks nothing beyond the
        failure itself — the same argument the chaos oracle's
        replay-prefix check pins for the HA failover path.
        """
        attempts = self.max_round_retries + 1
        for attempt in range(attempts):
            try:
                return self._execute(requests)
            except Exception as error:  # noqa: BLE001 - classified below
                if attempt + 1 >= attempts or not is_retryable(error):
                    raise
                if self.on_retry is not None:
                    self.on_retry()
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One flat stats row (STATS replies, bench reports, CLI)."""
        row = self.admission.snapshot()
        row.update(
            policy=self.policy.name,
            rounds=self.rounds_dispatched,
            real_requests=sum(self.round_sizes),
            empty_rounds=sum(1 for size in self.round_sizes if size == 0),
        )
        if self.shard is not None:
            row["shard"] = self.shard
        return row
