"""The asyncio client stub for :class:`~repro.serve.server.ServeServer`.

A thin, ordered stub: one connection, one in-flight request at a time
(the concurrency tests open N *clients*, not N requests on one client —
matching how the thread-based :class:`repro.net.client.RemoteStore`
multiplies).  Wire errors come back as ``E``-tagged values and are
re-raised as their taxonomy types via :meth:`_WireError.raise_`, so a
shed request surfaces here as the retryable
:class:`~repro.errors.OverloadedError` the caller can back off on.
"""

from __future__ import annotations

import asyncio

from repro.net.protocol import (
    _WireError,
    decode_message,
    encode_message,
    read_frame_async,
    write_frame_async,
)

__all__ = ["AsyncServeClient"]


class AsyncServeClient:
    """Framed request/reply client over an asyncio stream pair."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request/reply
    # ------------------------------------------------------------------
    async def _call(self, request: list):
        if self._reader is None or self._writer is None:
            raise ConnectionError("client is not connected")
        await write_frame_async(self._writer, encode_message(request))
        reply = decode_message(await read_frame_async(self._reader))
        if isinstance(reply, _WireError):
            reply.raise_()
        return reply

    async def get(self, key: str) -> bytes:
        return await self._call(["GET", key])

    async def put(self, key: str, value: bytes) -> None:
        await self._call(["PUT", key, value])

    async def ping(self) -> bytes:
        return await self._call(["PING"])

    async def stats(self) -> dict:
        admitted, shed, depth, high_water, rounds = await self._call(["STATS"])
        return {"admitted": admitted, "shed": shed, "depth": depth,
                "high_water": high_water, "rounds": rounds}

    async def shards(self) -> list[dict]:
        """Per-partition stats rows (a single row when unsharded)."""
        rows = await self._call(["SHARDS"])
        return [{"partition": index, "admitted": admitted, "shed": shed,
                 "depth": depth, "high_water": high_water, "rounds": rounds}
                for index, (admitted, shed, depth, high_water, rounds)
                in enumerate(rows)]
