"""Admission control: the bounded pending queue and its shedding stats.

An open-loop client population does not slow down when the proxy falls
behind — arrivals keep coming, and an unbounded pending queue converts
overload into unbounded latency and memory.  The serving frontend
therefore admits a request only while the pending queue is below a hard
cap; past the cap the request is **shed** with
:class:`~repro.errors.OverloadedError` — retryable by taxonomy, and
invisible to the adversary (a shed request never reaches the proxy, so
the storage-visible trace is byte-identical with or without shedding;
``tests/test_serve_backpressure.py`` pins exactly that digest).

The controller is deliberately dumb bookkeeping — no locks (asyncio is
single-threaded), no timers — so the property tests can drive it
directly: depth never exceeds ``cap``, and ``admitted + shed`` accounts
for every offered request.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, OverloadedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-queue admission bookkeeping for the serving frontend.

    Parameters
    ----------
    cap:
        Maximum pending (admitted but not yet dispatched) requests.
    """

    __slots__ = ("cap", "depth", "admitted", "shed", "high_water")

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ConfigurationError("admission cap must be >= 1")
        self.cap = cap
        #: Current pending depth (mirrors the frontend's queue length).
        self.depth = 0
        self.admitted = 0
        self.shed = 0
        #: Highest depth ever observed — the cap property's witness.
        self.high_water = 0

    def admit(self) -> None:
        """Account one arriving request; raises when the queue is full."""
        if self.depth >= self.cap:
            self.shed += 1
            raise OverloadedError(
                f"pending queue at cap ({self.cap}); retry later")
        self.depth += 1
        self.admitted += 1
        if self.depth > self.high_water:
            self.high_water = self.depth

    def release(self, count: int) -> None:
        """Account ``count`` requests leaving the queue for a round."""
        if count < 0 or count > self.depth:  # pragma: no cover - invariant
            raise ConfigurationError(
                f"cannot release {count} of {self.depth} pending")
        self.depth -= count

    def snapshot(self) -> dict:
        """Stats row for dashboards, benchmark reports and STATS replies."""
        return {
            "cap": self.cap,
            "depth": self.depth,
            "admitted": self.admitted,
            "shed": self.shed,
            "high_water": self.high_water,
        }
