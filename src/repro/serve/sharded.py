"""Sharded serving: one coalescing frontend per partition, rounds in
parallel.

:class:`ShardedFrontend` is the multi-proxy scale-out of
:class:`~repro.serve.frontend.AsyncFrontend`: live get/put traffic is
key-hash-routed (via :meth:`PartitionedWaffle.partition_of`, the same
keyed-blake2s router the batch path uses) to P *independent* frontends,
one per :class:`~repro.scaleout.PartitionedWaffle` partition.  Each
partition frontend owns its release policy instance, its clock reads,
its bounded admission queue, and drives its own Waffle datastore (own
proxy, keychain, server) — nothing is shared across partitions except
the executor threads their rounds run on.

Why this is allowed to be parallel (DESIGN.md §14): partitions are
fully disjoint oblivious deployments.  A per-partition adversary — one
tape per partition's server — sees exactly the round sequence that
partition's frontend committed, and each frontend is the PR-8 frontend
verbatim, so each tape is byte-identical to a serial single-proxy
deployment over that partition's keys.  Concurrency reorders events
only *between* tapes, which no per-partition adversary observes.  The
cross-partition observer additionally learns per-partition round counts
and timing — the same (documented) multinomial leakage the batched
scale-out path already concedes, and with epoch-aligned grid policies
not even that: every partition commits to the *same* fixed grid, so the
merged release schedule deduplicates to a single constant-gap series
and the load-inference attack scores exactly 0.0 against it.

Throughput composition: shard-parallelism here multiplies with the
PR-5/6 worker-pool crypto (attach a pool per partition's proxy) and
with :class:`~repro.parallel.PipelinedStore` overlap per partition —
the three mechanisms parallelize different axes (partitions, crypto
lanes within a round, round k's commit vs round k+1's fetch).

Shed semantics under per-partition admission: a request is shed by the
queue of the one partition that owns its key.  A flash crowd on keys
hashing to partition 3 overloads (and sheds from) partition 3 only;
other partitions keep admitting — and because a shed request never
reaches any proxy, the per-partition traces stay byte-identical to a
run that was offered only the admitted requests.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro.core.batch import ClientRequest
from repro.errors import ConfigurationError
from repro.scaleout.partitioned import PartitionedWaffle
from repro.serve.frontend import AsyncFrontend, RoundExecutor
from repro.serve.policy import OnFillPolicy, ReleasePolicy
from repro.workloads.trace import Operation

__all__ = ["ShardedFrontend"]

#: Builds partition ``index``'s release policy (fresh instance each —
#: policies are stateful schedules and must never be shared).
PolicyFactory = Callable[[int], ReleasePolicy]

#: Test/chaos hook: wraps partition ``index``'s round executor.
ExecuteWrapper = Callable[[int, RoundExecutor], RoundExecutor]


class ShardedFrontend:
    """Key-hash-routed fan-out over P per-partition `AsyncFrontend`s.

    Parameters
    ----------
    partitioned:
        The :class:`PartitionedWaffle` deployment to serve.  Its router
        decides which partition owns each key; its per-partition
        datastores execute the rounds.
    policy_factory:
        ``index -> ReleasePolicy`` — every partition gets its own
        instance (default: :class:`OnFillPolicy` at the partition R).
        Grid policies (fixed/randomized interval) built by the factory
        are epoch-aligned across partitions at :meth:`start`.
    queue_cap:
        Per-partition admission cap (total pending capacity is
        ``P * queue_cap``; shedding is per owning partition).
    shard_workers:
        Threads on the shared round executor — the concurrency across
        partition rounds.  Defaults to one per partition, clamped to
        the partition count (more could never run).
    clock:
        Timestamp source handed to every partition frontend.
    max_round_retries / on_retry:
        Per-partition retry budget, as on :class:`AsyncFrontend`.
    wrap_execute:
        Optional ``(index, execute) -> execute`` wrapper — the chaos
        battery splices per-partition fault injection here, exactly
        like the single-proxy harness wraps ``execute``.
    """

    def __init__(self, partitioned: PartitionedWaffle, *,
                 policy_factory: PolicyFactory | None = None,
                 queue_cap: int = 1024,
                 shard_workers: int | None = None,
                 clock: Callable[[], float] = time.perf_counter,
                 max_round_retries: int = 0,
                 on_retry: Callable[[], None] | None = None,
                 wrap_execute: ExecuteWrapper | None = None) -> None:
        partitions = partitioned.partitions
        workers = partitions if shard_workers is None else shard_workers
        if workers < 1:
            raise ConfigurationError("need at least one shard worker")
        self.partitioned = partitioned
        self.partitions = partitions
        self.shard_workers = min(workers, partitions)
        self._clock = clock
        self._executor = ThreadPoolExecutor(
            max_workers=self.shard_workers,
            thread_name_prefix="shard-round")
        if policy_factory is None:
            def policy_factory(index: int) -> ReleasePolicy:
                return OnFillPolicy(partitioned.config.r)
        self.frontends: list[AsyncFrontend] = []
        for index, store in enumerate(partitioned.stores):
            execute: RoundExecutor = store.execute_batch
            if wrap_execute is not None:
                execute = wrap_execute(index, execute)
            self.frontends.append(AsyncFrontend(
                execute=execute, r=partitioned.config.r,
                policy=policy_factory(index), queue_cap=queue_cap,
                clock=clock, max_round_retries=max_round_retries,
                on_retry=on_retry, executor=self._executor,
                shard=str(index)))
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ShardedFrontend":
        """Align grid epochs, then start every partition dispatcher.

        The shared epoch is read *once*, before any dispatcher can arm
        a policy, so P fixed-interval schedules commit to one float-
        identical grid — the alignment the §14 merged-schedule argument
        rests on.  Policies without a grid (on-fill, max-wait) have no
        ``align`` and are skipped.
        """
        if not self._started:
            epoch = self._clock()
            for frontend in self.frontends:
                align = getattr(frontend.policy, "align", None)
                if align is not None:
                    align(epoch)
            await asyncio.gather(*(f.start() for f in self.frontends))
            self._started = True
        return self

    async def close(self) -> None:
        """Drain every partition's stragglers, then stop the executor."""
        await asyncio.gather(*(f.close() for f in self.frontends))
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "ShardedFrontend":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # client interface
    # ------------------------------------------------------------------
    async def get(self, key: str) -> bytes:
        return await self.submit(ClientRequest(op=Operation.READ, key=key))

    async def put(self, key: str, value: bytes) -> bytes:
        return await self.submit(
            ClientRequest(op=Operation.WRITE, key=key, value=value))

    async def submit(self, request: ClientRequest) -> bytes:
        owner = self.partitioned.partition_of(request.key)
        return await self.frontends[owner].submit(request)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def merged_release_times(self) -> list[float]:
        """The cross-partition adversary's schedule view.

        Sorted union of every partition's committed release instants,
        with exact duplicates collapsed: epoch-aligned grid partitions
        commit to float-identical ticks, so P simultaneous releases are
        one observable event — the merged series is the single-proxy
        grid, and scores identically under the timing attacks.
        """
        merged = sorted(t for frontend in self.frontends
                        for t in frontend.release_times)
        out: list[float] = []
        for t in merged:
            if not out or t != out[-1]:
                out.append(t)
        return out

    def per_partition_stats(self) -> list[dict]:
        """One stats row per partition (SHARDS replies, bench reports)."""
        return [frontend.stats() for frontend in self.frontends]

    def stats(self) -> dict:
        """Aggregate stats row, shape-compatible with `AsyncFrontend`.

        Counters sum across partitions (``high_water`` too: the rows in
        :meth:`per_partition_stats` keep the per-queue peaks; the sum
        bounds total simultaneously-pending requests).
        """
        rows = self.per_partition_stats()
        aggregate = {
            "cap": sum(row["cap"] for row in rows),
            "depth": sum(row["depth"] for row in rows),
            "admitted": sum(row["admitted"] for row in rows),
            "shed": sum(row["shed"] for row in rows),
            "high_water": sum(row["high_water"] for row in rows),
            "policy": rows[0]["policy"] if rows else "none",
            "rounds": sum(row["rounds"] for row in rows),
            "real_requests": sum(row["real_requests"] for row in rows),
            "empty_rounds": sum(row["empty_rounds"] for row in rows),
            "partitions": self.partitions,
            "shard_workers": self.shard_workers,
        }
        return aggregate
