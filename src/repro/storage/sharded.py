"""Hash-sharded composite store.

The paper lists scalability as future work (§10); the scalability ablation
in this repository runs Waffle against a sharded server to show the proxy
protocol is oblivious to how the server distributes data.  Keys are
assigned to shards by a stable hash of the storage id — which, for Waffle,
is already a PRF output, so shard placement leaks nothing beyond what the
id itself leaks.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.storage.base import StorageBackend

__all__ = ["ShardedStore"]


class ShardedStore(StorageBackend):
    """Routes operations to one of several backends by key hash."""

    __slots__ = ("_shards",)

    def __init__(self, shards: Sequence[StorageBackend]) -> None:
        if not shards:
            raise ConfigurationError("ShardedStore requires at least one shard")
        self._shards = list(shards)

    def shard_index(self, key: str) -> int:
        digest = hashlib.blake2s(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % len(self._shards)

    def _shard(self, key: str) -> StorageBackend:
        return self._shards[self.shard_index(key)]

    def get(self, key: str) -> bytes:
        return self._shard(key).get(key)

    def put(self, key: str, value: bytes) -> None:
        self._shard(key).put(key, value)

    def delete(self, key: str) -> None:
        self._shard(key).delete(key)

    def __contains__(self, key: str) -> bool:
        return key in self._shard(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        # Group by shard to model per-shard pipelines, then restore order.
        by_shard: dict[int, list[tuple[int, str]]] = {}
        for pos, key in enumerate(keys):
            by_shard.setdefault(self.shard_index(key), []).append((pos, key))
        out: list[bytes | None] = [None] * len(keys)
        for index, entries in by_shard.items():
            values = self._shards[index].multi_get([key for _, key in entries])
            for (pos, _), value in zip(entries, values):
                out[pos] = value
        return out  # type: ignore[return-value]

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        by_shard: dict[int, list[tuple[str, bytes]]] = {}
        for key, value in items:
            by_shard.setdefault(self.shard_index(key), []).append((key, value))
        for index, entries in by_shard.items():
            self._shards[index].multi_put(entries)

    def multi_delete(self, keys: Sequence[str]) -> None:
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_index(key), []).append(key)
        for index, entries in by_shard.items():
            self._shards[index].multi_delete(entries)

    @property
    def shard_count(self) -> int:
        return len(self._shards)
