"""The adversary's viewpoint: a storage wrapper that records every access.

Waffle's threat model (§3.2) is a passive persistent adversary who observes
every read/write/delete of every (encrypted) storage id but cannot inject
queries.  :class:`RecordingStore` wraps any backend and captures exactly
that view — the sequence of ``(operation, storage_id, round)`` tuples —
which the analysis package replays to measure α/β uniformity (Definition 1)
and to mount inference attacks.

Rounds: Waffle's α/β bounds are stated in batched server accesses (§5.1:
"if the proxy accesses objects in batches, α, β, i and j correspond to the
batched accesses").  The proxy advances the recorder's round counter once
per read-batch/write-batch pair via :meth:`next_round`; unbatched systems
(the insecure baseline, PathORAM per-request accesses) advance it per
operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs import OBS
from repro.storage.base import StorageBackend

__all__ = ["AccessRecord", "RecordingStore"]


@dataclass(frozen=True, slots=True)
class AccessRecord:
    """One adversary-observable server access."""

    op: str  # "read" | "write" | "delete"
    storage_id: str
    round: int
    #: Position of this access in the global observed sequence.
    seq: int


class RecordingStore(StorageBackend):
    """Pass-through backend that logs the adversary-visible trace."""

    __slots__ = ("_inner", "records", "_round", "_seq", "enabled")

    def __init__(self, inner: StorageBackend) -> None:
        self._inner = inner
        self.records: list[AccessRecord] = []
        self._round = 0
        self._seq = 0
        #: Recording can be switched off during initialization bulk-loads
        #: when an experiment only studies the steady state.
        self.enabled = True

    @property
    def round(self) -> int:
        return self._round

    def next_round(self) -> int:
        """Advance the batch-round counter; returns the new round."""
        self._round += 1
        return self._round

    def _record(self, op: str, storage_id: str) -> None:
        if not self.enabled:
            return
        self.records.append(AccessRecord(op, storage_id, self._round, self._seq))
        self._seq += 1
        if OBS.enabled:
            # The live trace of the adversary-visible channel: one event
            # per access, consumable by AlphaMonitor via
            # repro.analysis.monitor.attach_monitor.
            OBS.tracer.event("storage.access", op=op, id=storage_id,
                             round=self._round)
            OBS.registry.counter("storage.accesses.total", op=op).inc()

    # ------------------------------------------------------------------
    # StorageBackend interface (every path records before delegating)
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        self._record("read", key)
        return self._inner.get(key)

    def put(self, key: str, value: bytes) -> None:
        self._record("write", key)
        self._inner.put(key, value)

    def delete(self, key: str) -> None:
        self._record("delete", key)
        self._inner.delete(key)

    def __contains__(self, key: str) -> bool:
        return key in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        for key in keys:
            self._record("read", key)
        return self._inner.multi_get(keys)

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        items = list(items)
        for key, _ in items:
            self._record("write", key)
        self._inner.multi_put(items)

    def multi_delete(self, keys: Sequence[str]) -> None:
        for key in keys:
            self._record("delete", key)
        self._inner.multi_delete(keys)

    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        # The adversary sees the same access sequence whether the round
        # commits atomically or as separate delete/write batches.
        puts = list(puts)
        for key in deletes:
            self._record("delete", key)
        for key, _ in puts:
            self._record("write", key)
        self._inner.commit_round(deletes, puts)

    def clear_records(self) -> None:
        """Drop the trace collected so far (keeps round/seq counters)."""
        self.records = []
