"""A Redis-like in-process key-value server.

The paper's backend is Redis (§8).  ``RedisSim`` reproduces the slice of
Redis the systems use — string GET/SET/DEL/EXISTS/DBSIZE plus MGET/MSET and
command pipelines — behind a textual command interface, so the proxies in
this repository interact with storage the way the paper's proxies interact
with Redis: by issuing commands, optionally pipelined into one round trip.

Two layers are exposed:

* :meth:`execute` — a command dispatcher (``("SET", key, value)`` etc.),
  the "wire protocol" level, used by :class:`Pipeline`;
* the :class:`~repro.storage.base.StorageBackend` methods — typed
  convenience wrappers over :meth:`execute`.

Unlike real Redis, ``GET`` on a missing key raises instead of returning
nil: every system in this repository treats a miss as a protocol bug and
the strictness has caught several during development.  (Waffle additionally
runs the store in ``write_once`` mode.)
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import DuplicateKeyError, KeyNotFoundError, ProtocolError
from repro.obs import OBS
from repro.storage.base import StorageBackend

__all__ = ["Pipeline", "RedisSim"]


class RedisSim(StorageBackend):
    """In-process Redis stand-in with command dispatch and pipelines.

    Parameters
    ----------
    write_once:
        Reject ``SET`` on existing keys (Waffle's server mode).
    """

    __slots__ = ("_data", "_write_once", "command_count")

    def __init__(self, write_once: bool = False) -> None:
        self._data: dict[str, bytes] = {}
        self._write_once = write_once
        #: Total commands executed, for tests and cost accounting.
        self.command_count = 0

    # ------------------------------------------------------------------
    # command interface
    # ------------------------------------------------------------------
    def execute(self, command: tuple[Any, ...]) -> Any:
        """Execute one command tuple and return its reply.

        Supported commands: ``GET key``, ``SET key value``, ``DEL key``,
        ``EXISTS key``, ``DBSIZE``, ``MGET key...``, ``MSET key value ...``.
        """
        self.command_count += 1
        name = command[0].upper()
        if OBS.enabled:
            OBS.registry.counter("storage.commands.total",
                                 backend="redis_sim", command=name).inc()
        if name == "GET":
            (key,) = command[1:]
            try:
                return self._data[key]
            except KeyError:
                raise KeyNotFoundError(key) from None
        if name == "SET":
            key, value = command[1:]
            if self._write_once and key in self._data:
                raise DuplicateKeyError(key)
            self._data[key] = bytes(value)
            return b"OK"
        if name == "DEL":
            (key,) = command[1:]
            try:
                del self._data[key]
            except KeyError:
                raise KeyNotFoundError(key) from None
            return 1
        if name == "EXISTS":
            (key,) = command[1:]
            return int(key in self._data)
        if name == "DBSIZE":
            return len(self._data)
        if name == "MGET":
            return [self.execute(("GET", key)) for key in command[1:]]
        if name == "MSET":
            args = command[1:]
            if len(args) % 2:
                raise ProtocolError("MSET requires key/value pairs")
            for i in range(0, len(args), 2):
                self.execute(("SET", args[i], args[i + 1]))
            return b"OK"
        raise ProtocolError(f"unknown command: {name}")

    def pipeline(self) -> "Pipeline":
        """Start a command pipeline (one logical round trip)."""
        return Pipeline(self)

    # ------------------------------------------------------------------
    # StorageBackend interface
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        return self.execute(("GET", key))

    def put(self, key: str, value: bytes) -> None:
        self.execute(("SET", key, value))

    def delete(self, key: str) -> None:
        self.execute(("DEL", key))

    def __contains__(self, key: str) -> bool:
        return bool(self.execute(("EXISTS", key)))

    def __len__(self) -> int:
        return self.execute(("DBSIZE",))

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        pipe = self.pipeline()
        for key in keys:
            pipe.enqueue(("GET", key))
        return pipe.flush()

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        pipe = self.pipeline()
        for key, value in items:
            pipe.enqueue(("SET", key, value))
        pipe.flush()

    def multi_delete(self, keys: Sequence[str]) -> None:
        pipe = self.pipeline()
        for key in keys:
            pipe.enqueue(("DEL", key))
        pipe.flush()

    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        # One pipeline = one round trip for the whole round commit.
        pipe = self.pipeline()
        for key in deletes:
            pipe.enqueue(("DEL", key))
        for key, value in puts:
            pipe.enqueue(("SET", key, value))
        pipe.flush()


class Pipeline:
    """Buffers commands and executes them in one flush.

    Mirrors redis-py's pipeline object: commands queue locally and
    :meth:`flush` returns the list of replies in order.
    """

    __slots__ = ("_server", "_commands")

    def __init__(self, server: RedisSim) -> None:
        self._server = server
        self._commands: list[tuple] = []

    def enqueue(self, command: tuple) -> "Pipeline":
        self._commands.append(command)
        return self

    def __len__(self) -> int:
        return len(self._commands)

    def flush(self) -> list:
        replies = [self._server.execute(cmd) for cmd in self._commands]
        self._commands = []
        return replies
