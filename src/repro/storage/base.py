"""Abstract storage backend.

Every datastore in this repository (Waffle, the insecure baseline, Pancake,
PathORAM, TaoStore) talks to the server through this interface, so the
recording wrapper and the cost model can be layered under any of them.

Semantics are deliberately strict — they encode the invariants the security
analysis relies on:

* :meth:`put` on an existing key raises :class:`DuplicateKeyError` when the
  backend is created with ``write_once=True`` (Waffle writes every storage
  id at most once);
* :meth:`get`/:meth:`delete` on a missing key raise
  :class:`KeyNotFoundError` — a silent miss would mask protocol bugs.

Backends that model plaintext stores (the insecure baseline, Pancake's
replicas) use ``write_once=False`` and overwrite freely via :meth:`put`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

__all__ = ["StorageBackend"]


class StorageBackend(ABC):
    """Key-value server interface shared by all systems."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Return the value stored under ``key``."""

    @abstractmethod
    def put(self, key: str, value: bytes) -> None:
        """Store ``value`` under ``key``."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``."""

    @abstractmethod
    def __contains__(self, key: str) -> bool:
        """Whether ``key`` currently exists."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored keys."""

    # ------------------------------------------------------------------
    # Batched operations.  Defaults loop over the single-key primitives;
    # RedisSim overrides them with pipelined implementations so the cost
    # model can charge one round trip per batch.
    # ------------------------------------------------------------------
    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        """Return values for ``keys`` in order."""
        return [self.get(key) for key in keys]

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        """Store every ``(key, value)`` pair."""
        for key, value in items:
            self.put(key, value)

    def multi_delete(self, keys: Sequence[str]) -> None:
        """Delete every key in ``keys``."""
        for key in keys:
            self.delete(key)

    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        """Apply one batch round's mutations: deletes, then writes.

        Waffle's proxy commits all of a round's server mutations through
        this single operation so that a proxy crash mid-round leaves the
        server either untouched by the round or holding its complete
        effect — the property snapshot-based failover recovery relies on
        (a recovered proxy deterministically replays the round, which is
        only safe if the aborted attempt consumed no read-once ids and
        wrote no write-once ids).  The default composes the batched
        primitives; transactional backends (or network stubs that ship
        the round as one pipeline) override it.
        """
        self.multi_delete(deletes)
        self.multi_put(puts)
