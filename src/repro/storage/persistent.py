"""Durable storage backend: snapshot + append-only log, like Redis.

The paper's server is Redis, whose durability story is RDB snapshots
plus an append-only file.  This backend reproduces that shape so the
*server* can crash and recover without violating Waffle's invariants
(the proxy's write-once/read-once ids must survive a server restart —
a recovered server holding stale state would hand out already-consumed
ids, which the recovery tests check cannot happen):

* every mutation (SET/DEL) appends a framed record to the AOF;
* :meth:`snapshot` compacts: writes the full dict and truncates the log;
* :meth:`recover` loads snapshot + replays the log tail.

The file format is length-prefixed binary (no pickle — the server is in
the *untrusted* domain, so its files must not be able to execute code in
whoever loads them).
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.base import StorageBackend

__all__ = ["PersistentStore"]

_SET = 1
_DEL = 2


def _frame(op: int, key: bytes, value: bytes = b"") -> bytes:
    return struct.pack(">BII", op, len(key), len(value)) + key + value


class PersistentStore(StorageBackend):
    """Dict store with snapshot + append-only-log durability.

    Parameters
    ----------
    directory:
        Where ``snapshot.db`` and ``appendonly.log`` live.
    write_once:
        Waffle's server mode (duplicate SET rejected).
    fsync:
        Call ``os.fsync`` after every append (slow, crash-proof) — off by
        default, as in Redis's ``everysec``-ish middle ground.
    """

    def __init__(self, directory: str | Path, write_once: bool = False,
                 fsync: bool = False) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._snapshot_path = self._dir / "snapshot.db"
        self._log_path = self._dir / "appendonly.log"
        self._write_once = write_once
        self._fsync = fsync
        self._data: dict[str, bytes] = {}
        self.recover()
        self._log = open(self._log_path, "ab")

    # ------------------------------------------------------------------
    # durability machinery
    # ------------------------------------------------------------------
    def _append(self, op: int, key: str, value: bytes = b"") -> None:
        self._log.write(_frame(op, key.encode("utf-8"), value))
        self._log.flush()
        if self._fsync:
            os.fsync(self._log.fileno())

    def snapshot(self) -> None:
        """Write a full snapshot and truncate the append-only log."""
        tmp = self._snapshot_path.with_suffix(".tmp")
        with open(tmp, "wb") as out:
            out.write(struct.pack(">I", len(self._data)))
            for key, value in self._data.items():
                kb = key.encode("utf-8")
                out.write(struct.pack(">II", len(kb), len(value)))
                out.write(kb)
                out.write(value)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, self._snapshot_path)
        self._log.close()
        self._log = open(self._log_path, "wb")

    def recover(self) -> None:
        """Rebuild state from snapshot + log (also runs at construction)."""
        self._data = {}
        if self._snapshot_path.exists():
            with open(self._snapshot_path, "rb") as inp:
                raw = inp.read()
            cursor = 0
            (count,) = struct.unpack_from(">I", raw, cursor)
            cursor += 4
            for _ in range(count):
                klen, vlen = struct.unpack_from(">II", raw, cursor)
                cursor += 8
                key = raw[cursor:cursor + klen].decode("utf-8")
                cursor += klen
                self._data[key] = raw[cursor:cursor + vlen]
                cursor += vlen
        if self._log_path.exists():
            with open(self._log_path, "rb") as inp:
                raw = inp.read()
            cursor = 0
            while cursor < len(raw):
                if cursor + 9 > len(raw):
                    break  # torn tail record: discard (crash mid-append)
                op, klen, vlen = struct.unpack_from(">BII", raw, cursor)
                if cursor + 9 + klen + vlen > len(raw):
                    break  # torn tail record
                cursor += 9
                key = raw[cursor:cursor + klen].decode("utf-8")
                cursor += klen
                value = raw[cursor:cursor + vlen]
                cursor += vlen
                if op == _SET:
                    self._data[key] = value
                elif op == _DEL:
                    self._data.pop(key, None)
                else:
                    raise StorageError(f"corrupt log record op={op}")

    def close(self) -> None:
        self._log.close()

    def crash(self) -> None:
        """Simulate an abrupt server death (no snapshot, log as-is)."""
        self._log.close()
        self._data = {}

    # ------------------------------------------------------------------
    # StorageBackend interface
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def put(self, key: str, value: bytes) -> None:
        if self._write_once and key in self._data:
            raise DuplicateKeyError(key)
        self._data[key] = bytes(value)
        self._append(_SET, key, bytes(value))

    def delete(self, key: str) -> None:
        try:
            del self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None
        self._append(_DEL, key)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        return [self.get(key) for key in keys]

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        for key, value in items:
            self.put(key, value)

    def multi_delete(self, keys: Sequence[str]) -> None:
        for key in keys:
            self.delete(key)
