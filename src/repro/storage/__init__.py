"""Storage substrate: the untrusted server side of every system.

The paper's testbed runs Redis on a separate machine.  This package
provides a Redis-like in-process server (:class:`RedisSim`) behind a small
backend interface, an access-recording wrapper that captures exactly what a
passive persistent adversary observes, and a hash-sharded composite store
used by the scalability ablations.
"""

from repro.storage.base import StorageBackend
from repro.storage.memory import InMemoryStore
from repro.storage.persistent import PersistentStore
from repro.storage.recording import AccessRecord, RecordingStore
from repro.storage.redis_sim import RedisSim
from repro.storage.sharded import ShardedStore

__all__ = [
    "AccessRecord",
    "InMemoryStore",
    "PersistentStore",
    "RecordingStore",
    "RedisSim",
    "ShardedStore",
    "StorageBackend",
]
