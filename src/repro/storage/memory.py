"""Plain dictionary-backed storage backend."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage.base import StorageBackend

__all__ = ["InMemoryStore"]


class InMemoryStore(StorageBackend):
    """The simplest backend: a dict with the strict interface semantics.

    Parameters
    ----------
    write_once:
        When true, :meth:`put` on an existing key raises
        :class:`DuplicateKeyError`.  Waffle's server is created in this
        mode because its protocol never overwrites a storage id.
    """

    __slots__ = ("_data", "_write_once")

    def __init__(self, write_once: bool = False) -> None:
        self._data: dict[str, bytes] = {}
        self._write_once = write_once

    def get(self, key: str) -> bytes:
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def put(self, key: str, value: bytes) -> None:
        if self._write_once and key in self._data:
            raise DuplicateKeyError(key)
        self._data[key] = value

    def delete(self, key: str) -> None:
        try:
            del self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        return [self.get(key) for key in keys]

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        for key, value in items:
            self.put(key, value)

    def multi_delete(self, keys: Sequence[str]) -> None:
        for key in keys:
            self.delete(key)
