"""Threaded TCP server hosting a storage backend.

One thread per connection; each connection processes framed requests
sequentially (matching Redis's per-connection ordering guarantee, which
the pipelined batch semantics rely on).
"""

from __future__ import annotations

import socket
import threading
import time

from repro.obs import OBS
from repro.net.protocol import (
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.storage.base import StorageBackend
from repro.storage.redis_sim import RedisSim

__all__ = ["StorageServer"]


class StorageServer:
    """Serve a :class:`StorageBackend` over TCP.

    Parameters
    ----------
    backend:
        The store to expose; defaults to a fresh :class:`RedisSim`.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    """

    def __init__(self, backend: StorageBackend | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.backend = backend if backend is not None else RedisSim()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.address: tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StorageServer":
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=2)

    def __enter__(self) -> "StorageServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    request = decode_message(read_frame(conn))
                except (ConnectionError, OSError):
                    return
                reply = self._dispatch(request)
                try:
                    write_frame(conn, encode_message(reply))
                except (ConnectionError, OSError):  # pragma: no cover
                    return

    def _dispatch(self, request):
        if OBS.enabled:
            start = time.perf_counter()
            command = request[0] if isinstance(request, list) and request \
                else "malformed"
            reply = self._dispatch_inner(request)
            duration = time.perf_counter() - start
            size = len(request) - 1 if command == "PIPELINE" else 1
            OBS.registry.counter("net.requests.total",
                                 command=str(command)).inc()
            OBS.observe_span("net.request", duration,
                             labels={"command": str(command)}, commands=size,
                             error=isinstance(reply, Exception))
            return reply
        return self._dispatch_inner(request)

    def _dispatch_inner(self, request):
        if not isinstance(request, list) or not request:
            return ValueError("malformed request")
        name = request[0]
        try:
            # Commands execute under a lock: RedisSim is single-threaded
            # just like Redis's command loop.
            with self._lock:
                if name == "PIPELINE":
                    return [self._execute(tuple(cmd)) for cmd in request[1:]]
                return self._execute(tuple(request))
        except Exception as error:  # noqa: BLE001 - errors travel the wire
            return error

    def _execute(self, command: tuple):
        if hasattr(self.backend, "execute"):
            return self.backend.execute(command)
        # Generic backends: translate the core commands.
        name = command[0].upper()
        if name == "GET":
            return self.backend.get(command[1])
        if name == "SET":
            self.backend.put(command[1], command[2])
            return b"OK"
        if name == "DEL":
            self.backend.delete(command[1])
            return 1
        if name == "EXISTS":
            return int(command[1] in self.backend)
        if name == "DBSIZE":
            return len(self.backend)
        raise ValueError(f"unknown command {name!r}")
