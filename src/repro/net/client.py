"""A StorageBackend that talks to a remote StorageServer.

Drop-in: ``WaffleDatastore(config, items, store=RemoteStore(addr))``
deploys the paper's topology with the storage server on another machine
(or another process/thread — the tests use localhost).
"""

from __future__ import annotations

import socket
import threading
from typing import Iterable, Sequence

from repro.errors import (
    ConnectionDroppedError,
    PartialReplyError,
    StorageTimeoutError,
)
from repro.net.protocol import (
    _WireError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.storage.base import StorageBackend

__all__ = ["RemoteStore"]


class RemoteStore(StorageBackend):
    """Client-side stub speaking the framed storage protocol.

    Thread-safe: one in-flight request at a time per connection, guarded
    by a lock (matching the synchronous proxy's usage).
    """

    def __init__(self, address: tuple[str, int],
                 timeout_s: float = 10.0) -> None:
        self._sock = socket.create_connection(address, timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _call(self, message):
        # Socket failures map onto the library taxonomy so callers can
        # tell retryable transport faults from fatal protocol breaks.
        try:
            with self._lock:
                write_frame(self._sock, encode_message(message))
                reply = decode_message(read_frame(self._sock))
        except TimeoutError as error:
            raise StorageTimeoutError(
                f"no reply within {self._sock.gettimeout()}s"
            ) from error
        except ConnectionError as error:
            raise ConnectionDroppedError(str(error)) from error
        if isinstance(reply, _WireError):
            reply.raise_()
        return reply

    # ------------------------------------------------------------------
    # StorageBackend interface
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes:
        return self._call(["GET", key])

    def put(self, key: str, value: bytes) -> None:
        self._call(["SET", key, bytes(value)])

    def delete(self, key: str) -> None:
        self._call(["DEL", key])

    def __contains__(self, key: str) -> bool:
        return bool(self._call(["EXISTS", key]))

    def __len__(self) -> int:
        return self._call(["DBSIZE"])

    def multi_get(self, keys: Sequence[str]) -> list[bytes]:
        if not keys:
            return []
        commands = [["GET", key] for key in keys]
        replies = self._call(["PIPELINE", *commands])
        if isinstance(replies, _WireError):  # pragma: no cover
            replies.raise_()
        if len(replies) != len(keys):
            raise PartialReplyError(expected=len(keys), got=len(replies))
        return replies

    def multi_put(self, items: Iterable[tuple[str, bytes]]) -> None:
        commands = [["SET", key, bytes(value)] for key, value in items]
        if commands:
            self._call(["PIPELINE", *commands])

    def multi_delete(self, keys: Sequence[str]) -> None:
        commands = [["DEL", key] for key in keys]
        if commands:
            self._call(["PIPELINE", *commands])

    def commit_round(self, deletes: Sequence[str],
                     puts: Sequence[tuple[str, bytes]]) -> None:
        # Ship the whole round commit as one pipeline frame: the server
        # applies it within a single dispatch, so a connection lost before
        # the frame is sent leaves the round entirely unapplied.
        commands = [["DEL", key] for key in deletes]
        commands += [["SET", key, bytes(value)] for key, value in puts]
        if commands:
            self._call(["PIPELINE", *commands])
