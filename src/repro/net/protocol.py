"""Wire protocol: length-prefixed framed messages for storage commands.

Frame layout (all integers big-endian):

* 4 bytes — payload length ``L``
* ``L`` bytes — payload

A payload encodes one *message*: a type tag byte followed by typed
fields.  Commands and replies reuse one recursive value encoding:

=========  ==============================================
tag        meaning
=========  ==============================================
``S``      UTF-8 string (4-byte length + bytes)
``B``      raw bytes (4-byte length + bytes)
``I``      signed 64-bit integer
``L``      list (4-byte count + encoded items)
``N``      none/nil
``E``      error (4-byte length + UTF-8 message)
=========  ==============================================

A request payload is a list: ``[command_name, arg, ...]`` — exactly the
command tuples :meth:`RedisSim.execute` accepts, so the server is a thin
shim.  A pipeline request is ``["PIPELINE", [cmd...], [cmd...]]`` and
its reply is the list of per-command replies.
"""

from __future__ import annotations

import io
import socket
import struct

from repro.errors import ProtocolError

__all__ = [
    "decode_message",
    "encode_message",
    "read_frame",
    "read_frame_async",
    "write_frame",
    "write_frame_async",
]

_MAX_FRAME = 64 * 1024 * 1024  # defensive cap: 64 MiB per frame


# ----------------------------------------------------------------------
# value encoding
# ----------------------------------------------------------------------
def _encode_value(buffer: io.BytesIO, value) -> None:
    if value is None:
        buffer.write(b"N")
    elif isinstance(value, bool):  # bools are ints; reject explicitly
        raise ProtocolError("booleans are not wire values")
    elif isinstance(value, str):
        data = value.encode("utf-8")
        buffer.write(b"S" + struct.pack(">I", len(data)) + data)
    elif isinstance(value, (bytes, bytearray)):
        buffer.write(b"B" + struct.pack(">I", len(value)) + bytes(value))
    elif isinstance(value, int):
        buffer.write(b"I" + struct.pack(">q", value))
    elif isinstance(value, (list, tuple)):
        buffer.write(b"L" + struct.pack(">I", len(value)))
        for item in value:
            _encode_value(buffer, item)
    elif isinstance(value, Exception):
        message = f"{type(value).__name__}:{value}"
        data = message.encode("utf-8")
        buffer.write(b"E" + struct.pack(">I", len(data)) + data)
    else:
        raise ProtocolError(f"cannot encode {type(value).__name__}")


def _take(buffer: io.BytesIO, count: int) -> bytes:
    data = buffer.read(count)
    if len(data) != count:
        raise ProtocolError("truncated message")
    return data


def _decode_value(buffer: io.BytesIO):
    tag = _take(buffer, 1)
    if tag == b"N":
        return None
    if tag == b"S":
        (length,) = struct.unpack(">I", _take(buffer, 4))
        return _take(buffer, length).decode("utf-8")
    if tag == b"B":
        (length,) = struct.unpack(">I", _take(buffer, 4))
        return _take(buffer, length)
    if tag == b"I":
        (value,) = struct.unpack(">q", _take(buffer, 8))
        return value
    if tag == b"L":
        (count,) = struct.unpack(">I", _take(buffer, 4))
        return [_decode_value(buffer) for _ in range(count)]
    if tag == b"E":
        (length,) = struct.unpack(">I", _take(buffer, 4))
        return _WireError(_take(buffer, length).decode("utf-8"))
    raise ProtocolError(f"unknown wire tag {tag!r}")


class _WireError:
    """Marker for an error travelling as a reply value."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message

    def raise_(self) -> None:
        from repro.errors import (
            DuplicateKeyError,
            KeyNotFoundError,
            OverloadedError,
            StorageError,
        )

        name, _, detail = self.message.partition(":")
        if name == "KeyNotFoundError":
            # detail looks like "key not found: 'abc'"
            raise KeyNotFoundError(detail.split(": ", 1)[-1].strip("'"))
        if name == "DuplicateKeyError":
            raise DuplicateKeyError(detail.split(": ", 1)[-1].strip("'"))
        if name == "OverloadedError":
            # Retryable by taxonomy: the request was shed before it
            # reached the proxy (is_retryable() returns True).
            raise OverloadedError(detail.strip() or "server overloaded")
        raise StorageError(self.message)


def encode_message(value) -> bytes:
    """Encode one message (a value tree) to payload bytes."""
    buffer = io.BytesIO()
    _encode_value(buffer, value)
    return buffer.getvalue()


def decode_message(payload: bytes):
    """Decode payload bytes back into a value tree."""
    buffer = io.BytesIO(payload)
    value = _decode_value(buffer)
    if buffer.read(1):
        raise ProtocolError("trailing bytes after message")
    return value


# ----------------------------------------------------------------------
# framing over a socket
# ----------------------------------------------------------------------
def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed frame."""
    if len(payload) > _MAX_FRAME:
        raise ProtocolError("frame exceeds size cap")
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Receive one length-prefixed frame."""
    (length,) = struct.unpack(">I", _read_exact(sock, 4))
    if length > _MAX_FRAME:
        raise ProtocolError("frame exceeds size cap")
    return _read_exact(sock, length)


# ----------------------------------------------------------------------
# framing over asyncio streams (the serving frontend's transport)
# ----------------------------------------------------------------------
async def write_frame_async(writer, payload: bytes) -> None:
    """Send one length-prefixed frame on an ``asyncio.StreamWriter``."""
    if len(payload) > _MAX_FRAME:
        raise ProtocolError("frame exceeds size cap")
    writer.write(struct.pack(">I", len(payload)) + payload)
    await writer.drain()


async def read_frame_async(reader) -> bytes:
    """Receive one length-prefixed frame from an ``asyncio.StreamReader``.

    Raises ``ConnectionError`` on a peer that closes cleanly between
    frames (mirroring :func:`read_frame`'s socket behaviour) and
    :class:`~repro.errors.ProtocolError` on an oversized declaration.
    A peer that stalls mid-frame simply pends here — slow-loris clients
    hold their own connection task, never the server.
    """
    import asyncio

    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("peer closed the connection") from error
    (length,) = struct.unpack(">I", header)
    if length > _MAX_FRAME:
        raise ProtocolError("frame exceeds size cap")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("peer closed mid-frame") from error
