"""Networked deployment substrate.

Everything else in this repository runs the storage server in-process
for speed and determinism.  This package provides the pieces to deploy
the same components across a real network boundary, matching the
paper's three-machine topology (client / proxy / storage server):

* :mod:`repro.net.protocol` — a length-prefixed binary framing of the
  storage command interface (GET/SET/DEL/MGET/MSET/pipelines), RESP-like
  in spirit but typed;
* :mod:`repro.net.server` — a threaded TCP server hosting any
  :class:`~repro.storage.base.StorageBackend` (RedisSim by default);
* :mod:`repro.net.client` — a :class:`~repro.storage.base.StorageBackend`
  implementation that speaks the protocol over a socket, so a Waffle
  proxy can point at a remote server with zero code changes.

The adversary model is unchanged: the server-side recorder observes the
same access sequence whether the commands arrive in-process or over TCP
(a test asserts exactly this).
"""

from repro.net.client import RemoteStore
from repro.net.server import StorageServer

__all__ = ["RemoteStore", "StorageServer"]
