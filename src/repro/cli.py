"""Command-line interface: regenerate any experiment from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig2ab --n 4096 --rounds 40
    python -m repro.cli run table2
    python -m repro.cli bounds --n 1048576 --level high
    python -m repro.cli lint

``run`` executes one experiment from :mod:`repro.bench.experiments` and
prints the paper-style table; ``bounds`` evaluates the Theorem 7.1/7.2
bounds for a preset without running anything; ``lint`` runs the oblint
static-analysis suite (DESIGN.md §9).

Exit codes are part of the CLI contract (scripts and CI dispatch on
them, and ``tests/test_cli.py`` pins them):

* ``0`` — success / clean,
* ``1`` — lint findings or a failed security audit,
* ``2`` — the chaos differential oracle found a violation,
* ``64`` — malformed command line (BSD ``EX_USAGE``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import NoReturn

from repro.bench import experiments
from repro.bench.reporting import format_table
from repro.core.config import SecurityLevel, WaffleConfig

__all__ = ["EXIT_CHAOS", "EXIT_LINT", "EXIT_USAGE", "EXPERIMENTS", "main"]

#: Lint findings (or failed audit) — "the code is wrong".
EXIT_LINT = 1
#: Chaos oracle violation — "the system misbehaved under faults".
EXIT_CHAOS = 2
#: Malformed command line (BSD sysexits.h EX_USAGE).
EXIT_USAGE = 64


class _Parser(argparse.ArgumentParser):
    """ArgumentParser that exits with :data:`EXIT_USAGE` on bad usage.

    argparse's default exit code for usage errors is 2, which would
    collide with :data:`EXIT_CHAOS`; subparsers inherit this class via
    ``parser_class`` so ``repro chaos --bogus`` also exits 64.
    """

    def error(self, message: str) -> NoReturn:
        self.print_usage(sys.stderr)
        self.exit(EXIT_USAGE, f"{self.prog}: error: {message}\n")

#: CLI name -> (callable, kwargs it accepts from the CLI).
EXPERIMENTS = {
    "fig2ab": (experiments.fig2ab_baselines, ("n", "rounds")),
    "fig2c": (experiments.fig2c_cores, ("n", "rounds")),
    "fig2d": (experiments.fig2d_cache, ("n", "rounds")),
    "fig3a": (experiments.fig3a_batch_size, ("n", "rounds")),
    "fig3b": (experiments.fig3b_real_fraction, ("n", "rounds")),
    "fig3c": (experiments.fig3c_fake_dummy, ("n", "rounds")),
    "fig3d": (experiments.fig3d_num_dummies, ("n", "rounds")),
    "table2": (experiments.table2_security_levels, ("n", "rounds")),
    "fig5": (experiments.fig5_correlated, ("n",)),
    "fig6": (experiments.fig6_tradeoff, ("n", "rounds")),
    "attack": (experiments.attack_correlated, ("n",)),
    "ablation-fake-policy": (experiments.ablation_fake_policy,
                             ("n", "rounds")),
    "attack-frequency": (experiments.frequency_attack_comparison, ("n",)),
    "low-security-leak": (experiments.low_security_distinguisher,
                          ("n", "rounds")),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro", description="Waffle reproduction experiment runner")
    sub = parser.add_subparsers(dest="command", required=True,
                                parser_class=_Parser)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--n", type=int, default=None,
                     help="scaled database size (default: experiment's)")
    run.add_argument("--rounds", type=int, default=None,
                     help="batch rounds per data point")
    run.add_argument("--json", action="store_true",
                     help="emit raw rows as JSON instead of a table")
    run.add_argument("--chart", action="store_true",
                     help="additionally render an ASCII chart when the "
                          "experiment produces an (x, y) series")

    bounds = sub.add_parser("bounds", help="evaluate Theorem 7.1/7.2 bounds")
    bounds.add_argument("--n", type=int, default=10**6)
    bounds.add_argument("--level", choices=[l.value for l in SecurityLevel],
                        default=None,
                        help="Table 2 preset (default: §8.2 defaults)")

    audit = sub.add_parser(
        "audit", help="run a workload and emit a security audit report")
    audit.add_argument("--n", type=int, default=2048)
    audit.add_argument("--rounds", type=int, default=200)
    audit.add_argument("--uniform", action="store_true",
                       help="uniform instead of Zipf-0.99 input")

    obs_p = sub.add_parser(
        "obs", help="run an instrumented workload and render the live "
                    "observability dashboard")
    obs_p.add_argument("--n", type=int, default=1024)
    obs_p.add_argument("--rounds", type=int, default=50)
    obs_p.add_argument("--window", type=int, default=10,
                       help="AlphaMonitor window size in rounds")
    obs_p.add_argument("--trace-out", default=None,
                       help="stream the JSONL trace to this file")
    obs_p.add_argument("--prom-out", default=None,
                       help="write a Prometheus text snapshot to this file")
    obs_p.add_argument("--workers", type=int, default=1,
                       help="run the batched crypto on a worker pool "
                            "(telemetry merges back per worker)")
    obs_p.add_argument("--profile", action="store_true",
                       help="render the span-tree profile (per-phase and "
                            "per-worker time decomposition)")
    obs_p.add_argument("--profile-out", default=None, metavar="PATH",
                       help="write the profile snapshot as JSON to PATH")

    chaos = sub.add_parser(
        "chaos", help="run seeded chaos episodes through the differential "
                      "oracle (fault injection + HA failover)")
    chaos.add_argument("--episodes", type=int, default=100,
                       help="number of episodes to sweep (default 100)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed; episode i uses seed + i")
    chaos.add_argument("--ha", choices=["both", "replicated", "quorum"],
                       default="both", help="HA modes to alternate through")
    chaos.add_argument("--steps", type=int, default=16,
                       help="scheduling slots per episode")
    chaos.add_argument("--json", action="store_true",
                       help="emit the sweep report as JSON")
    chaos.add_argument("--save-failure", default=None, metavar="PATH",
                       help="write the first failing episode (shrunk unless "
                            "--no-shrink) as a JSON reproducer")
    chaos.add_argument("--replay", default=None, metavar="PATH",
                       help="run one episode from a reproducer file instead "
                            "of sweeping")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip minimizing failing episodes")

    bench = sub.add_parser(
        "bench", help="run the wall-clock benchmark harness "
                      "(sim/perf; real seconds, not simulated)")
    bench.add_argument("--parallel", action="store_true",
                       help="sweep the multi-core round engine instead of "
                            "the scalar-vs-batched kernel comparison")
    bench.add_argument("--workers", type=_worker_list, default=(1, 2, 4, 8),
                       metavar="W1,W2,...",
                       help="worker counts to sweep with --parallel "
                            "(default 1,2,4,8)")
    bench.add_argument("--backend", action="append", dest="backends",
                       metavar="NAME",
                       help="crypto backend for the --parallel matrix "
                            "(repeatable; default: every available "
                            "backend — see REPRO_CRYPTO_BACKEND)")
    bench.add_argument("--n", type=int, default=None,
                       help="database size (default: harness default)")
    bench.add_argument("--rounds", type=int, default=None,
                       help="batch rounds per measurement")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="additionally write the JSON report to PATH")

    serve = sub.add_parser(
        "serve", help="run the asyncio round-coalescing server "
                      "(repro.serve) over TCP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = pick a free port)")
    serve.add_argument("--n", type=int, default=1024,
                       help="database size")
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--policy",
                       choices=["on-fill", "max-wait", "fixed-interval",
                                "randomized-interval"],
                       default="max-wait",
                       help="round-release policy (DESIGN.md §13/§14)")
    serve.add_argument("--max-wait", type=float, default=0.01,
                       help="max-wait straggler deadline in seconds")
    serve.add_argument("--interval", type=float, default=0.02,
                       help="fixed/randomized-interval base period in "
                            "seconds")
    serve.add_argument("--jitter", type=float, default=None,
                       help="randomized-interval jitter half-width in "
                            "seconds (default interval/2)")
    serve.add_argument("--partitions", type=int, default=1,
                       help="serve a hash-partitioned deployment with "
                            "this many independent proxies "
                            "(DESIGN.md §14; --n is per partition)")
    serve.add_argument("--shard-workers", type=int, default=None,
                       help="threads executing partition rounds "
                            "concurrently (default: one per partition)")
    serve.add_argument("--queue-cap", type=int, default=1024,
                       help="admission cap on pending requests "
                            "(past it requests are shed as Overloaded)")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="serve for this many seconds then exit "
                            "(default 0 = until interrupted)")
    serve.add_argument("--demo-load", type=float, default=0.0,
                       metavar="RATE",
                       help="drive a seeded Poisson client load at RATE "
                            "req/s against the server for --duration")
    serve.add_argument("--stats-json", default=None, metavar="PATH",
                       help="write final serving stats as JSON to PATH")

    lint = sub.add_parser(
        "lint", help="run the oblint static-analysis suite (DESIGN.md §9)")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--allowlist", default=None, metavar="PATH",
                      help="explicit .oblint.json (default: auto-discover "
                           "by walking up from the first path)")
    lint.add_argument("--json", action="store_true",
                      help="emit the report as JSON instead of text")
    lint.add_argument("--report-out", default=None, metavar="PATH",
                      help="additionally write the JSON report to PATH "
                           "(CI uploads this as an artifact)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list every rule and exit")
    return parser


def _run_experiment(args) -> int:
    func, accepted = EXPERIMENTS[args.experiment]
    kwargs = {}
    if args.n is not None and "n" in accepted:
        kwargs["n"] = args.n
    if args.rounds is not None and "rounds" in accepted:
        kwargs["rounds"] = args.rounds
    result = func(**kwargs)
    if isinstance(result, dict):
        print(json.dumps(_jsonable(result), indent=2))
        return 0
    if args.json:
        print(json.dumps(_jsonable(result), indent=2))
    else:
        rows = [{k: v for k, v in row.items() if not isinstance(v, dict)}
                for row in result]
        print(format_table(rows, title=args.experiment))
        if getattr(args, "chart", False):
            chart = _maybe_chart(args.experiment, rows)
            if chart:
                print()
                print(chart)
    return 0


#: experiment -> (x column, y column) for the --chart rendering.
_CHART_AXES = {
    "fig2c": ("cores", "throughput_ops"),
    "fig2d": ("cache_pct", "throughput_ops"),
    "fig3a": ("batch_size", "throughput_ops"),
    "fig3b": ("real_pct", "throughput_ops"),
    "fig3c": ("fake_dummy_pct", "throughput_ops"),
    "fig3d": ("dummies_pct_of_n", "throughput_ops"),
    "fig6": ("alpha_theory", "throughput_ops"),
}


def _maybe_chart(experiment: str, rows: list[dict]) -> str | None:
    from repro.analysis.visualize import line_chart

    axes = _CHART_AXES.get(experiment)
    if not axes or not rows:
        return None
    x, y = axes
    if x not in rows[0] or y not in rows[0]:
        return None
    points = [(float(row[x]), float(row[y])) for row in rows]
    return line_chart({y: points}, title=experiment, x_label=x, y_label=y)


def _jsonable(value):
    from collections import Counter

    if isinstance(value, Counter):
        return {str(k): v for k, v in value.items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "__dict__") and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in vars(value).items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _show_bounds(args) -> int:
    if args.level is None:
        config = WaffleConfig.paper_defaults(n=args.n)
        name = "paper defaults (§8.2)"
    else:
        config = WaffleConfig.security_preset(SecurityLevel(args.level),
                                              n=args.n)
        name = f"Table 2 '{args.level}' preset"
    print(f"{name} at N={args.n}:")
    print(f"  B={config.b} R={config.r} f_D={config.f_d} "
          f"C={config.c} D={config.d}")
    print(f"  alpha (Theorem 7.1)        : {config.alpha_bound()}")
    print(f"  alpha (implementation)     : {config.alpha_bound_effective()}")
    print(f"  beta  (Theorem 7.2)        : {config.beta_bound()}")
    print(f"  security score beta/alpha  : {config.security_score():.4f}")
    print(f"  bandwidth overhead         : {config.bandwidth_overhead():.2f}x")
    return 0


def _run_audit(args) -> int:
    from repro.analysis.report import security_audit
    from repro.bench.harness import run_waffle
    from repro.sim.costmodel import CostModel
    from repro.workloads.ycsb import YcsbWorkload

    config = WaffleConfig.paper_defaults(n=args.n, seed=1)
    workload = YcsbWorkload(args.n, read_proportion=0.5,
                            uniform=args.uniform, theta=0.99,
                            value_size=256, seed=2)
    items = dict(workload.initial_records())
    trace = workload.trace(config.r * args.rounds)
    _, datastore = run_waffle(config, items, trace, CostModel(),
                              record=True, log_ids=True)
    result = security_audit(datastore)
    print(result.markdown)
    return 0 if result.passed else 1


def _run_obs(args) -> int:
    from repro import obs
    from repro.analysis.monitor import AlphaMonitor, attach_monitor
    from repro.core.batch import ClientRequest
    from repro.core.datastore import WaffleDatastore
    from repro.crypto.keys import KeyChain
    from repro.obs.dashboard import render_dashboard
    from repro.obs.export import write_prometheus
    from repro.workloads.ycsb import YcsbWorkload

    config = WaffleConfig.paper_defaults(n=args.n, seed=1)
    handle = obs.enable(trace_path=args.trace_out)
    # Attached before the datastore is built so initialization writes
    # stream into the monitor — otherwise every steady-state read would
    # look like a read of an unobserved id.
    monitor = AlphaMonitor(alpha_budget=config.alpha_bound_effective(),
                           window_rounds=args.window)
    attach_monitor(handle.tracer, monitor)

    workload = YcsbWorkload(args.n, read_proportion=0.5, theta=0.99,
                            value_size=128, seed=2)
    items = dict(workload.initial_records())
    datastore = WaffleDatastore(config, items,
                                keychain=KeyChain.from_seed(1))
    pool = None
    if args.workers > 1:
        from repro.parallel import WorkerPool, attach_pool

        # min_batch=1 so even the dashboard-sized round shape exercises
        # the pool (paper-default batches are small).
        pool = WorkerPool(args.workers, min_batch=1)
        attach_pool(datastore.proxy, pool)
    try:
        trace = workload.trace(config.r * args.rounds)
        for i in range(args.rounds):
            chunk = trace[i * config.r:(i + 1) * config.r]
            datastore.execute_batch([
                ClientRequest(op=req.op, key=req.key, value=req.value)
                for req in chunk])
    finally:
        if pool is not None:
            pool.close()

    print(render_dashboard(handle.registry, monitor=monitor))
    if args.profile:
        from repro.obs.profile import render_profile

        print(render_profile(handle.registry, handle.tracer.records))
    if args.profile_out:
        from repro.obs.profile import profile_snapshot

        with open(args.profile_out, "w", encoding="utf-8") as out:
            json.dump(profile_snapshot(handle.registry,
                                       handle.tracer.records), out, indent=2)
        print(f"profile snapshot -> {args.profile_out}")
    if args.prom_out:
        write_prometheus(handle.registry, args.prom_out)
        print(f"prometheus snapshot -> {args.prom_out}")
    if args.trace_out:
        handle.tracer.flush()
        print(f"trace jsonl -> {args.trace_out}")
    obs.disable()
    return 0


def _run_chaos(args) -> int:
    from pathlib import Path

    from repro.testing import (
        Episode,
        run_episode,
        run_sweep,
        shrink_episode,
    )

    if args.replay is not None:
        episode = Episode.from_json(Path(args.replay))
        result = run_episode(episode)
        if args.json:
            print(json.dumps({
                "ok": result.ok,
                "rounds_committed": result.rounds_committed,
                "failovers": result.failovers,
                "aborted_attempts": result.aborted_attempts,
                "violations": [vars(v) for v in result.violations],
            }, indent=2))
        else:
            print(f"episode seed {episode.seed} ({episode.ha_mode}): "
                  + ("OK" if result.ok else "FAILED"))
            for violation in result.violations:
                print(f"  {violation}")
        return 0 if result.ok else EXIT_CHAOS

    modes = (("replicated", "quorum") if args.ha == "both"
             else (args.ha,))
    report = run_sweep(episodes=args.episodes, base_seed=args.seed,
                       ha_modes=modes, steps=args.steps)
    if args.json:
        print(json.dumps({
            "episodes": report.episodes,
            "rounds_committed": report.rounds_committed,
            "failovers": report.failovers,
            "aborted_attempts": report.aborted_attempts,
            "faults_injected": report.faults_injected,
            "failures": [
                {"seed": episode.seed, "ha_mode": episode.ha_mode,
                 "violations": [vars(v) for v in violations]}
                for episode, violations in report.failures
            ],
        }, indent=2))
    else:
        print(report.describe())
    if report.ok:
        return 0
    episode, _ = report.failures[0]
    if not args.no_shrink:
        shrunk = shrink_episode(
            episode, lambda e: not run_episode(e).ok)
        episode = shrunk.episode
        print(f"first failure shrunk: {shrunk.initial_size} -> "
              f"{shrunk.final_size} operations "
              f"({shrunk.evaluations} evaluations)")
    if args.save_failure:
        episode.to_json(args.save_failure)
        print(f"reproducer -> {args.save_failure}")
    return EXIT_CHAOS


def _worker_list(text: str) -> tuple[int, ...]:
    """Parse ``"1,2,4"`` into worker counts (argparse ``type=``)."""
    try:
        counts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid worker list {text!r}; expected e.g. 1,2,4,8") from None
    if not counts or any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError(
            f"worker counts must be positive integers, got {text!r}")
    return counts


def _run_bench(args) -> int:
    from repro.sim.perf import run_parallel_benchmark, run_wallclock_benchmark

    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.parallel:
        report = run_parallel_benchmark(worker_counts=args.workers,
                                        backends=args.backends, **kwargs)
        print(f"cpu_count={report['cpu_count']}  "
              f"digests_identical={report['digests_identical']}  "
              f"backend_matrix_identical="
              f"{report['backend_equivalence']['identical']}  "
              f"shard_identical={report['shard_equivalence']['identical']}")
        for workers, row in sorted(report["measured"].items()):
            modeled = report["modeled_speedup"].get(workers)
            print(f"  workers={workers}: "
                  f"{row['rounds_per_sec']:.2f} rounds/s "
                  f"(speedup {row['speedup']:.2f}x, "
                  f"model {modeled:.2f}x)")
        for transport, row in sorted(report["transports"].items()):
            print(f"  transport={transport} @ {row['workers']} workers: "
                  f"{row['rounds_per_sec']:.2f} rounds/s "
                  f"(speedup {row['speedup']:.2f}x)")
        for backend, runs in sorted(report["backends"].items()):
            for workers, row in sorted(runs.items(), key=lambda kv: int(kv[0])):
                print(f"  backend={backend} @ {workers} worker(s): "
                      f"{row['rounds_per_sec']:.2f} rounds/s "
                      f"(speedup {row['speedup']:.2f}x)")
    else:
        report = run_wallclock_benchmark(**kwargs)
        e2e = report["end_to_end"]
        print(f"end-to-end speedup "
              f"{e2e['rounds_per_sec_speedup']:.2f}x "
              f"(trace identical: "
              f"{report['trace_equivalence']['identical']})")
        for name, row in report["kernels"].items():
            speedup = row.get("speedup") or row.get("encrypt_speedup")
            print(f"  kernel {name}: {speedup:.2f}x")
    if args.out:
        # No sort_keys: the parallel report keys sweep tables by integer
        # worker count, which does not sort against its string keys.
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, default=str)
            handle.write("\n")
        print(f"report -> {args.out}")
    return 0


def _run_serve(args) -> int:
    import asyncio

    from repro.core.datastore import WaffleDatastore
    from repro.errors import OverloadedError
    from repro.scaleout import PartitionedWaffle
    from repro.serve import (
        AsyncFrontend,
        AsyncServeClient,
        ServeServer,
        ShardedFrontend,
    )
    from repro.serve.policy import make_policy
    from repro.workloads.openloop import PoissonArrivals
    from repro.workloads.trace import Operation
    from repro.workloads.ycsb import YcsbWorkload, key_name

    if args.demo_load > 0 and args.duration <= 0:
        print("--demo-load requires a positive --duration", file=sys.stderr)
        return EXIT_USAGE
    if args.partitions < 1:
        print("--partitions must be >= 1", file=sys.stderr)
        return EXIT_USAGE

    config = WaffleConfig.paper_defaults(n=args.n, seed=args.seed)

    def build_policy():
        # Each partition needs its own policy instance (schedules are
        # stateful); the same seed keeps randomized grids identical
        # across partitions so the merged schedule stays single-proxy.
        return make_policy(args.policy, config.r, max_wait_s=args.max_wait,
                           interval_s=args.interval, jitter_s=args.jitter,
                           seed=args.seed)

    if args.partitions > 1:
        # --n keys per partition, hash-balanced by the shared router.
        candidates = (key_name(i)
                      for i in range(64 * args.n * args.partitions + 4096))
        keys = PartitionedWaffle.plan_partitions(
            candidates, args.n, args.partitions, master_seed=args.seed)
        items = {key: b"serve-" + key.encode() for key in keys}
        store = PartitionedWaffle(config, items, args.partitions,
                                  master_seed=args.seed)
        frontend = ShardedFrontend(store,
                                   policy_factory=lambda i: build_policy(),
                                   queue_cap=args.queue_cap,
                                   shard_workers=args.shard_workers)
        demo_keys = keys
    else:
        workload = YcsbWorkload(args.n, read_proportion=0.5, theta=0.99,
                                value_size=128, seed=args.seed)
        datastore = WaffleDatastore(config, dict(workload.initial_records()),
                                    record=False)
        frontend = AsyncFrontend(datastore, policy=build_policy(),
                                 queue_cap=args.queue_cap)
        demo_keys = [key_name(i) for i in range(args.n)]

    async def demo_client(host: str, port: int) -> dict:
        stream = PoissonArrivals(args.demo_load, len(demo_keys),
                                 seed=args.seed)
        arrivals = stream.generate(args.duration)
        key_map = {key_name(i): key for i, key in enumerate(demo_keys)}
        workers = 8
        shares = [arrivals[i::workers] for i in range(workers)]
        counts = {"completed": 0, "shed": 0}

        async def worker(share) -> None:
            async with AsyncServeClient(host, port) as client:
                for arrival in share:
                    key = key_map[arrival.key]
                    try:
                        if arrival.op is Operation.WRITE:
                            await client.put(key, b"demo-write")
                        else:
                            await client.get(key)
                    except OverloadedError:
                        counts["shed"] += 1
                    else:
                        counts["completed"] += 1

        await asyncio.gather(*(worker(share) for share in shares))
        return counts

    async def run_server() -> dict:
        async with ServeServer(frontend, args.host, args.port) as server:
            host, port = server.address
            sharding = (f", partitions={args.partitions}"
                        if args.partitions > 1 else "")
            print(f"serving on {host}:{port} "
                  f"(policy {args.policy.replace('-', '_')}, R={config.r}, "
                  f"queue cap {args.queue_cap}{sharding})")
            demo: dict = {}
            if args.demo_load > 0:
                demo = await demo_client(host, port)
            elif args.duration > 0:
                await asyncio.sleep(args.duration)
            else:  # pragma: no cover - interactive path
                try:
                    while True:
                        await asyncio.sleep(3600)
                except asyncio.CancelledError:
                    pass
            stats = frontend.stats()
            stats["connections_total"] = server.connections_total
            stats.update(demo)
            return stats

    try:
        stats = asyncio.run(run_server())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        stats = frontend.stats()
        print()
    for key, value in stats.items():
        print(f"  {key:18s}: {value}")
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2)
            handle.write("\n")
        print(f"stats -> {args.stats_json}")
    return 0


def _run_lint(args) -> int:
    from repro.lint import default_rules, run_lint

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  {rule.severity:7s} {rule.name}: "
                  f"{rule.description}")
        return 0
    report = run_lint(args.paths, allowlist=args.allowlist)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.describe())
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
    return 0 if report.ok else EXIT_LINT


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            func, _ = EXPERIMENTS[name]
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0
    if args.command == "run":
        return _run_experiment(args)
    if args.command == "audit":
        return _run_audit(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "lint":
        return _run_lint(args)
    return _show_bounds(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
