"""Paper-style rendering of experiment rows."""

from __future__ import annotations

from typing import Iterable

__all__ = ["format_table", "format_series"]


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: list[dict], columns: list[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    columns = columns if columns is not None else list(rows[0].keys())
    cells = [[_format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(" | ".join(cell.rjust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(rows: list[dict], x: str, y: str,
                  title: str | None = None, width: int = 50) -> str:
    """Render one (x, y) series as an ASCII bar chart."""
    if not rows:
        return "(no data)"
    peak = max(abs(float(row[y])) for row in rows) or 1.0
    lines = [title] if title else []
    for row in rows:
        value = float(row[y])
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"  {x}={_format_cell(row[x]):>8} | {bar} "
                     f"{_format_cell(value)}")
    return "\n".join(lines)


def print_rows(rows: Iterable[dict], **kwargs) -> None:  # pragma: no cover
    from repro.obs.export import emit_text
    emit_text(format_table(list(rows), **kwargs))
