"""One experiment definition per paper table/figure (DESIGN.md §3).

Every function runs the real systems over generated workloads at a scaled
N (the paper's parameter *ratios* are preserved; see DESIGN.md §1) and
returns structured rows that the benchmark scripts and examples print
next to the paper's reported numbers.

Scaling convention: the paper's defaults are N=2^20, B=2500, R=40% of B,
f_D=20% of B, C=2% of N, D balancing the two α ratios.  ``default_config``
re-derives them for any N.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

import numpy as np

from repro.analysis.attacks import cooccurrence_attack, frequency_analysis_attack
from repro.analysis.histograms import alpha_histogram, histogram_difference
from repro.analysis.uniformity import full_report, measure_alpha
from repro.bench.harness import (
    Measurement,
    run_insecure,
    run_pancake,
    run_taostore,
    run_waffle,
)
from repro.core.config import ALPHA_UNBOUNDED, SecurityLevel, WaffleConfig
from repro.sim.costmodel import CostModel
from repro.workloads.correlated import ClickstreamModel, CorrelatedWorkload
from repro.workloads.ycsb import YcsbWorkload, key_name, workload_a, workload_c
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "DEFAULT_N",
    "ablation_fake_policy",
    "attack_correlated",
    "default_config",
    "fig2ab_baselines",
    "fig2c_cores",
    "fig2d_cache",
    "fig3a_batch_size",
    "fig3b_real_fraction",
    "fig3c_fake_dummy",
    "fig3d_num_dummies",
    "fig4_alpha_histograms",
    "fig5_correlated",
    "fig6_tradeoff",
    "table2_security_levels",
]

#: Default scaled database size for the experiments (paper: 2^20).
DEFAULT_N = 2**14
#: Paper-equivalent batch size at DEFAULT_N (2500 * 2^14/2^20 ≈ 39).
_VALUE_SIZE = 1024


def default_config(n: int = DEFAULT_N, seed: int = 7, **overrides) -> WaffleConfig:
    """The §8.2 default configuration scaled to ``n``."""
    config = WaffleConfig.paper_defaults(n=n, seed=seed)
    if overrides:
        config = replace(config, **overrides)
    return config


def _items(workload: YcsbWorkload) -> dict[str, bytes]:
    return dict(workload.initial_records())


def _rebalance(config: WaffleConfig, b: int | None = None, r: int | None = None,
               f_d: int | None = None, d: int | None = None) -> WaffleConfig:
    """Adjust parameters, keeping D balanced unless given explicitly."""
    b = b if b is not None else config.b
    r = r if r is not None else config.r
    f_d = f_d if f_d is not None else config.f_d
    if d is None:
        d = WaffleConfig._balanced_dummies(config.n, b, r, f_d)
    return replace(config, b=b, r=r, f_d=f_d, d=d)


# ----------------------------------------------------------------------
# Figure 2a/2b — Waffle vs insecure, Pancake, TaoStore
# ----------------------------------------------------------------------
def fig2ab_baselines(n: int = DEFAULT_N, rounds: int = 150,
                     cost: CostModel | None = None,
                     taostore_requests: int = 200, seed: int = 11) -> list[dict]:
    """Throughput and latency of all four systems on YCSB A and C.

    Mirrors §8.1's setup: batch 2500-scaled; R = B/2 (Pancake's effective
    real fraction); f_D = 20% of B; single-core proxies (the paper could
    not run the multi-core proxy for this experiment).
    """
    cost = cost if cost is not None else CostModel(cores=1)
    rows = []
    for name, factory in (("YCSB-A", workload_a), ("YCSB-C", workload_c)):
        workload = factory(n, seed=seed, value_size=1000)
        items = _items(workload)
        base = default_config(n, seed=seed)
        config = _rebalance(base, r=round(base.b / 2), f_d=round(0.2 * base.b))
        trace = workload.trace(config.r * rounds)

        waffle, _ = run_waffle(config, items, trace, cost)
        insecure = run_insecure(items, trace[: config.r * 10], cost)
        pi = workload._sampler.probabilities_by_index()
        keys = [key_name(i) for i in range(n)]
        pancake, _ = run_pancake(keys, items, pi,
                                 trace[: config.r * max(20, rounds // 4)],
                                 cost, batch_size=config.b, seed=seed)
        taostore, _ = run_taostore(items, trace[:taostore_requests], cost,
                                   seed=seed)
        for m in (insecure, waffle, pancake, taostore):
            rows.append({
                "workload": name, "system": m.system,
                "throughput_ops": m.throughput_ops,
                "latency_ms": m.latency_s * 1e3,
            })
    return rows


# ----------------------------------------------------------------------
# Figure 2c — proxy cores
# ----------------------------------------------------------------------
def fig2c_cores(n: int = DEFAULT_N, rounds: int = 100,
                cores: tuple[int, ...] = (1, 2, 4, 6, 8, 12),
                seed: int = 13) -> list[dict]:
    """Waffle throughput/latency as proxy cores grow (peak at 4)."""
    workload = workload_a(n, seed=seed, value_size=1000)
    items = _items(workload)
    config = default_config(n, seed=seed)
    trace = workload.trace(config.r * rounds)
    rows = []
    for core_count in cores:
        cost = CostModel(cores=core_count)
        measurement, _ = run_waffle(config, items, trace, cost)
        rows.append({
            "cores": core_count,
            "throughput_ops": measurement.throughput_ops,
            "latency_ms": measurement.latency_s * 1e3,
            "efficiency": cost.core_efficiency(),
        })
    return rows


# ----------------------------------------------------------------------
# Figure 2d — cache size
# ----------------------------------------------------------------------
def fig2d_cache(n: int = DEFAULT_N, rounds: int = 100,
                fractions: tuple[float, ...] = (0.01, 0.02, 0.04, 0.08,
                                                0.16, 0.32),
                seed: int = 17) -> list[dict]:
    """Waffle performance vs cache size (1%..32% of N): mild decline."""
    workload = workload_a(n, seed=seed, value_size=1000)
    items = _items(workload)
    cost = CostModel(cores=4)
    rows = []
    for fraction in fractions:
        config = default_config(n, seed=seed, c=max(1, round(fraction * n)))
        trace = workload_a(n, seed=seed, value_size=1000).trace(config.r * rounds)
        measurement, _ = run_waffle(config, items, trace, cost)
        rows.append({
            "cache_pct": round(100 * fraction),
            "throughput_ops": measurement.throughput_ops,
            "latency_ms": measurement.latency_s * 1e3,
            "hit_rate": measurement.extra["cache_hit_rate"],
        })
    return rows


# ----------------------------------------------------------------------
# Figure 3a-3d — parameter sweeps
# ----------------------------------------------------------------------
def fig3a_batch_size(n: int = DEFAULT_N, rounds: int = 100,
                     batch_sizes: tuple[int, ...] = (10, 20, 39, 78, 156),
                     seed: int = 19) -> list[dict]:
    """Throughput vs B with R=40% and f_D=20% held proportional."""
    workload = workload_a(n, seed=seed, value_size=1000)
    items = _items(workload)
    cost = CostModel(cores=4)
    rows = []
    for b in batch_sizes:
        r = max(1, round(0.4 * b))
        f_d = max(1, round(0.2 * b))
        config = _rebalance(default_config(n, seed=seed), b=b, r=r, f_d=f_d)
        trace = workload_a(n, seed=seed, value_size=1000).trace(r * rounds)
        measurement, _ = run_waffle(config, items, trace, cost)
        rows.append({
            "batch_size": b,
            "throughput_ops": measurement.throughput_ops,
            "latency_ms": measurement.latency_s * 1e3,
        })
    return rows


def fig3b_real_fraction(n: int = DEFAULT_N, rounds: int = 100,
                        fractions: tuple[float, ...] = (0.1, 0.2, 0.4,
                                                        0.6, 0.79),
                        seed: int = 23) -> list[dict]:
    """Throughput vs R (fraction of B, f_D fixed at 20%): grows ~linearly."""
    workload = workload_a(n, seed=seed, value_size=1000)
    items = _items(workload)
    cost = CostModel(cores=4)
    base = default_config(n, seed=seed)
    rows = []
    for fraction in fractions:
        r = max(1, min(base.b - base.f_d - 1, round(fraction * base.b)))
        config = _rebalance(base, r=r)
        trace = workload_a(n, seed=seed, value_size=1000).trace(r * rounds)
        measurement, _ = run_waffle(config, items, trace, cost)
        rows.append({
            "real_pct": round(100 * fraction),
            "throughput_ops": measurement.throughput_ops,
            "latency_ms": measurement.latency_s * 1e3,
            "alpha_bound": config.alpha_bound(),
        })
    return rows


def fig3c_fake_dummy(n: int = DEFAULT_N, rounds: int = 100,
                     fractions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4,
                                                     0.5, 0.59),
                     seed: int = 29) -> list[dict]:
    """Throughput vs f_D (fraction of B, R fixed at 40%): improves."""
    workload = workload_a(n, seed=seed, value_size=1000)
    items = _items(workload)
    cost = CostModel(cores=4)
    base = default_config(n, seed=seed)
    rows = []
    for fraction in fractions:
        f_d = max(1, min(base.b - base.r - 1, round(fraction * base.b)))
        config = _rebalance(base, f_d=f_d)
        trace = workload_a(n, seed=seed, value_size=1000).trace(base.r * rounds)
        measurement, _ = run_waffle(config, items, trace, cost)
        rows.append({
            "fake_dummy_pct": round(100 * fraction),
            "throughput_ops": measurement.throughput_ops,
            "latency_ms": measurement.latency_s * 1e3,
            "alpha_bound": config.alpha_bound(),
        })
    return rows


def fig3d_num_dummies(n: int = DEFAULT_N, rounds: int = 100,
                      fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0),
                      seed: int = 31) -> list[dict]:
    """Throughput vs D (fraction of N): flat — D touches no hot path."""
    workload = workload_a(n, seed=seed, value_size=1000)
    items = _items(workload)
    cost = CostModel(cores=4)
    base = default_config(n, seed=seed)
    rows = []
    for fraction in fractions:
        config = _rebalance(base, d=max(base.f_d, round(fraction * n)))
        trace = workload_a(n, seed=seed, value_size=1000).trace(base.r * rounds)
        measurement, _ = run_waffle(config, items, trace, cost)
        rows.append({
            "dummies_pct_of_n": round(100 * fraction),
            "throughput_ops": measurement.throughput_ops,
            "latency_ms": measurement.latency_s * 1e3,
        })
    return rows


# ----------------------------------------------------------------------
# Table 2 + Figure 4 — security levels
# ----------------------------------------------------------------------
def _security_run(config: WaffleConfig, uniform: bool, rounds: int,
                  cost: CostModel, seed: int):
    workload = YcsbWorkload(config.n, read_proportion=1.0, uniform=uniform,
                            theta=0.99, value_size=1000, seed=seed)
    items = _items(workload)
    trace = workload.trace(config.r * rounds)
    measurement, datastore = run_waffle(config, items, trace, cost,
                                        record=True, log_ids=True)
    report = full_report(datastore.recorder.records, datastore.proxy.id_log)
    return measurement, report


def table2_security_levels(n: int = DEFAULT_N, rounds: int = 400,
                           cost: CostModel | None = None,
                           seed: int = 37,
                           levels: tuple[SecurityLevel, ...] = (
                               SecurityLevel.HIGH,
                               SecurityLevel.MEDIUM,
                               SecurityLevel.LOW,
                           )) -> list[dict]:
    """Table 2: α/β theory vs observation and throughput per level.

    The theoretical columns are also evaluated at the paper's N=10^6,
    where they must equal Table 2 exactly (165/161, 1000/5, 999999/4).
    """
    cost = cost if cost is not None else CostModel(cores=4)
    rows = []
    for level in levels:
        paper_cfg = WaffleConfig.security_preset(level, n=10**6)
        for uniform in (False, True):
            config = WaffleConfig.security_preset(level, n=n, seed=seed)
            level_rounds = rounds
            if level is SecurityLevel.HIGH:
                # High security keeps objects cached for ~beta rounds; run
                # past 2x the beta bound so evictions (and hence observed
                # beta values) actually occur.
                level_rounds = max(2 * config.beta_bound() + 60,
                                   rounds // 4)
            measurement, report = _security_run(config, uniform,
                                                level_rounds, cost, seed)
            measured_alpha = report.max_alpha
            measured_beta = report.min_beta
            if level is SecurityLevel.LOW:
                # The paper does not report α/β here: unpopular objects
                # stay unread for the whole run.
                measured_alpha = None
                measured_beta = None
            rows.append({
                "level": level.value,
                "distribution": "uniform" if uniform else "skewed",
                "alpha_theory_paper_n": paper_cfg.alpha_bound(),
                "alpha_theory": config.alpha_bound(),
                "alpha_effective": config.alpha_bound_effective(),
                "alpha_observed": measured_alpha,
                "beta_theory_paper_n": paper_cfg.beta_bound(),
                "beta_theory": config.beta_bound(),
                "beta_observed": measured_beta,
                "throughput_ops": measurement.throughput_ops,
                "unread_ids": report.unread_ids,
            })
    return rows


def fig4_alpha_histograms(n: int = DEFAULT_N, rounds: int = 400,
                          cost: CostModel | None = None,
                          seed: int = 41) -> dict:
    """Figure 4: α histograms for high/medium security × skewed/uniform.

    Obliviousness shows as near-identical histograms across the two input
    distributions at a given security level.
    """
    cost = cost if cost is not None else CostModel(cores=4)
    out: dict = {"histograms": {}, "comparisons": {}}
    for level in (SecurityLevel.HIGH, SecurityLevel.MEDIUM):
        histograms = {}
        for uniform in (False, True):
            config = WaffleConfig.security_preset(level, n=n, seed=seed)
            level_rounds = rounds if level is SecurityLevel.MEDIUM else max(
                40, rounds // 4)
            _, report = _security_run(config, uniform, level_rounds, cost,
                                      seed)
            name = "uniform" if uniform else "skewed"
            histograms[name] = alpha_histogram(report.alphas)
        out["histograms"][level.value] = histograms
        out["comparisons"][level.value] = histogram_difference(
            histograms["skewed"], histograms["uniform"])
    return out


# ----------------------------------------------------------------------
# Figure 5 — correlated queries (the IHOP setup)
# ----------------------------------------------------------------------
def fig5_correlated(n: int = 500, requests: int = 60_000,
                    r_fractions: tuple[float, ...] = (0.2, 0.4),
                    cost: CostModel | None = None, seed: int = 43) -> list[dict]:
    """Figure 5: α histograms under correlated vs independent queries.

    Paper parameters: N=500, B=100, f_D=20% of B, C=2% of N, D=200;
    correlated queries from the clickstream model, independent control by
    shuffling the same trace.
    """
    cost = cost if cost is not None else CostModel(cores=4)
    model = ClickstreamModel(n, seed=seed)
    workload = CorrelatedWorkload(model, seed=seed + 1)
    rows = []
    for fraction in r_fractions:
        b = 100
        config = WaffleConfig(
            n=n, b=b, r=round(fraction * b), f_d=round(0.2 * b), d=200,
            c=max(1, round(0.02 * n)), value_size=256, seed=seed,
        )
        histograms = {}
        throughputs = {}
        for correlated in (True, False):
            trace = (workload.correlated_trace(requests) if correlated
                     else workload.independent_trace(requests))
            values = {key_name(i): b"a" * 64 for i in range(n)}
            measurement, datastore = run_waffle(config, values, trace, cost,
                                                record=True)
            report = measure_alpha(datastore.recorder.records)
            name = "correlated" if correlated else "independent"
            histograms[name] = alpha_histogram(report.alphas)
            throughputs[name] = measurement.throughput_ops
        comparison = histogram_difference(histograms["correlated"],
                                          histograms["independent"])
        rows.append({
            "r_pct": round(100 * fraction),
            "differing_fraction": comparison.differing_fraction,
            "mean_bucket_difference": comparison.mean_bucket_difference,
            "throughput_ops": throughputs["correlated"],
            "histograms": histograms,
        })
    return rows


# ----------------------------------------------------------------------
# Figure 6 — security vs performance trade-off
# ----------------------------------------------------------------------
def fig6_tradeoff(n: int = DEFAULT_N, rounds: int = 60,
                  seed: int = 47, cost: CostModel | None = None) -> list[dict]:
    """Theoretical α (security) vs measured throughput over an R/f_D grid."""
    cost = cost if cost is not None else CostModel(cores=4)
    base = default_config(n, seed=seed)
    workload = workload_a(n, seed=seed, value_size=1000)
    items = _items(workload)
    rows = []
    grid = [
        (0.1, 0.2), (0.2, 0.2), (0.4, 0.2), (0.6, 0.2),
        (0.4, 0.1), (0.4, 0.3), (0.4, 0.4), (0.2, 0.4),
    ]
    for r_frac, fd_frac in grid:
        r = max(1, round(r_frac * base.b))
        f_d = max(1, round(fd_frac * base.b))
        if r + f_d >= base.b:
            continue
        config = _rebalance(base, r=r, f_d=f_d)
        trace = workload_a(n, seed=seed, value_size=1000).trace(r * rounds)
        measurement, _ = run_waffle(config, items, trace, cost)
        rows.append({
            "r_pct": round(100 * r_frac),
            "fd_pct": round(100 * fd_frac),
            "alpha_theory": config.alpha_bound(),
            "throughput_ops": measurement.throughput_ops,
        })
    rows.sort(key=lambda row: row["alpha_theory"])
    return rows


# ----------------------------------------------------------------------
# Attacks (§8.3.2 claim) and the fake-policy ablation
# ----------------------------------------------------------------------
def attack_correlated(n: int = 40, requests: int = 40_000,
                      seed: int = 5) -> dict:
    """Correlated known-query co-occurrence attack: Pancake vs Waffle.

    Reproduces the paper's qualitative §8.3.2 claim: with correlated
    queries and static storage ids, the attack recovers far more keys
    than chance against Pancake, while against Waffle — whose ids are
    read at most once — the co-occurrence signal does not exist and
    recovery stays at or below chance.
    """
    from repro.storage.recording import RecordingStore
    from repro.storage.redis_sim import RedisSim
    from repro.crypto.keys import KeyChain
    from repro.baselines.pancake import PancakeProxy

    model = ClickstreamModel(n, out_degree=5, alpha=1.6, seed=seed)
    workload = CorrelatedWorkload(model, seed=seed + 1)
    trace = workload.correlated_trace(requests)
    keys = [key_name(i) for i in range(n)]
    values = {key: b"v" * 32 for key in keys}
    transition = model.transition_matrix()

    # --- Pancake: static replica ids, observable co-occurrence ---------
    stationary_counts = Counter(req.key for req in trace)
    pi = np.array([stationary_counts.get(key, 0) for key in keys], float)
    pi /= pi.sum()
    recorder = RecordingStore(RedisSim())
    pancake = PancakeProxy(keys, dict(values), pi, recorder, batch_size=10,
                           seed=seed, keychain=KeyChain.from_seed(seed))
    for request in trace:
        pancake.submit(request)
    while pancake.pending():
        pancake.process_batch()
    truth = {}
    for key_index, key in enumerate(keys):
        for replica in range(pancake.smoothing.replica_count(key_index)):
            truth[pancake._replica_id(key_index, replica)] = key
    pancake_result = cooccurrence_attack(
        recorder.records, transition, keys, truth, seed=seed,
    )

    # --- Waffle: rotating ids, no co-occurrence signal ------------------
    config = WaffleConfig(n=n, b=20, r=8, f_d=4, d=60,
                          c=max(1, round(0.02 * n)), value_size=128,
                          seed=seed)
    cost = CostModel()
    waffle_trace = trace[: min(len(trace), 20_000)]
    _, datastore = run_waffle(config, values, waffle_trace, cost,
                              record=True, log_ids=True)
    waffle_truth = {
        sid: key for sid, key in datastore.proxy.id_log.items()
        if not key.startswith("\x00")
    }
    # min_occurrences=1 lets the attack *try* against Waffle (otherwise
    # every id is filtered out because none repeats).
    waffle_result = cooccurrence_attack(
        datastore.recorder.records, transition, keys, waffle_truth,
        seed=seed, min_occurrences=1,
    )
    return {
        "pancake_accuracy": pancake_result.accuracy,
        "pancake_targets": pancake_result.targets,
        "waffle_accuracy": waffle_result.accuracy,
        "waffle_targets": waffle_result.targets,
        "chance": 1.0 / n,
    }


def ablation_fake_policy(n: int = 4096, rounds: int = 1200,
                         seed: int = 59) -> dict:
    """Challenge-2 ablation: least-recently-accessed vs uniform-random
    fake-query selection.  Random selection loses the α guarantee — the
    observed tail stretches far beyond the least-recent policy's bound.
    """
    cost = CostModel(cores=4)
    out = {}
    for policy in ("least_recent", "uniform"):
        # No dummy objects: the dummy rotation has its own α dynamics that
        # would mask the fake-real policy difference under study.
        config = default_config(n, seed=seed, fake_real_policy=policy,
                                f_d=0, d=0)
        workload = workload_c(n, seed=seed, value_size=1000)
        items = _items(workload)
        trace = workload.trace(config.r * rounds)
        _, datastore = run_waffle(config, items, trace, cost, record=True)
        report = measure_alpha(datastore.recorder.records)
        out[policy] = {
            "max_alpha": report.max_alpha,
            "bound": config.alpha_bound_effective(),
            "unread_ids": report.unread_ids,
        }
    return out


def low_security_distinguisher(n: int = 2048, rounds: int = 100,
                               seed: int = 67) -> dict:
    """Table 2's "low security is not oblivious" claim, made measurable.

    With R close to B, only ``f_R ≈ 1`` guaranteed fake-real queries fire
    per round, so sweeping the initialization ids off the server is at
    the mercy of the *input*: a skewed workload (cache hits + duplicate
    dedup shrink r, freeing fake budget) sweeps them quickly, while a
    uniform workload keeps r pinned at R and leaves initialization ids
    unread for the whole run.  An adversary counting still-unread
    round-0 ids therefore distinguishes the two input distributions at
    the low-security setting — while at medium security (small R, ample
    f_R) both inputs sweep everything and the counts coincide at zero.
    """
    def stale_init_ids(records) -> int:
        written_at_zero = set()
        for record in records:
            if record.op == "write" and record.round == 0:
                written_at_zero.add(record.storage_id)
            elif record.op == "read":
                written_at_zero.discard(record.storage_id)
        return len(written_at_zero)

    # Explicit configs: the scaled Table 2 presets quantize R/B too
    # coarsely at reproduction sizes to show the contrast.
    shapes = {
        "low": dict(b=64, r=50, f_d=13),     # f_R floor = 1
        "medium": dict(b=64, r=26, f_d=13),  # f_R floor = 25
    }
    out: dict = {}
    for level, shape in shapes.items():
        counts = {}
        for uniform in (False, True):
            config = WaffleConfig(n=n, d=10 * shape["f_d"] * 4,
                                  c=max(1, round(0.02 * n)),
                                  value_size=256, seed=seed, **shape)
            workload = YcsbWorkload(n, read_proportion=1.0,
                                    uniform=uniform, theta=0.99,
                                    value_size=200, seed=seed)
            items = _items(workload)
            trace = workload.trace(config.r * rounds)
            _, datastore = run_waffle(config, items, trace,
                                      CostModel(), record=True)
            name = "uniform" if uniform else "skewed"
            counts[name] = stale_init_ids(datastore.recorder.records)
        out[level] = {
            "stale_init_skewed": counts["skewed"],
            "stale_init_uniform": counts["uniform"],
            "gap": abs(counts["skewed"] - counts["uniform"]),
        }
    return out


def frequency_attack_comparison(n: int = 256, requests: int = 20_000,
                                seed: int = 61) -> dict:
    """Frequency analysis (§2) against a deterministic static-id store vs
    Waffle: near-total recovery vs chance."""
    from repro.storage.recording import RecordingStore
    from repro.storage.redis_sim import RedisSim
    from repro.crypto.keys import KeyChain

    workload = workload_c(n, seed=seed, value_size=128)
    items = _items(workload)
    trace = workload.trace(requests)
    auxiliary = {
        key_name(i): p
        for i, p in enumerate(workload._sampler.probabilities_by_index())
    }

    # Deterministically encrypted baseline: static ids = PRF(key, 0).
    keychain = KeyChain.from_seed(seed)
    recorder = RecordingStore(RedisSim())
    det_ids = {key: keychain.prf.derive(key, 0) for key in items}
    truth = {sid: key for key, sid in det_ids.items()}
    recorder.multi_put((det_ids[k], v) for k, v in items.items())
    for request in trace:
        recorder.get(det_ids[request.key])
    det_result = frequency_analysis_attack(recorder.records, auxiliary, truth)

    config = WaffleConfig(n=n, b=24, r=10, f_d=4, d=100,
                          c=max(1, round(0.02 * n)), value_size=256,
                          seed=seed)
    _, datastore = run_waffle(config, items, trace, CostModel(),
                              record=True, log_ids=True)
    waffle_result = frequency_analysis_attack(
        datastore.recorder.records, auxiliary, dict(datastore.proxy.id_log))

    def top_k_accuracy(result, records, k=10):
        counts = Counter(r.storage_id for r in records if r.op == "read")
        top = [sid for sid, _ in counts.most_common(k)
               if sid in result.guesses]
        if not top:
            return 0.0
        truth_map = truth if result is det_result else datastore.proxy.id_log
        return sum(result.guesses[sid] == truth_map.get(sid)
                   for sid in top) / len(top)

    return {
        "deterministic_accuracy": det_result.accuracy,
        "deterministic_top10": top_k_accuracy(det_result, recorder.records),
        "waffle_accuracy": waffle_result.accuracy,
        "waffle_top10": top_k_accuracy(waffle_result,
                                       datastore.recorder.records),
        "chance": 1.0 / n,
    }
